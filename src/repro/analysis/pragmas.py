"""Inline suppressions: ``# hypertap: allow(<rule>) — <justification>``.

A pragma names one or more rules (comma-separated) and must carry a
justification — the point of the mechanism is that every sanctioned
trust-boundary crossing is *explained where it happens* (HRKD's guest
view, O-Ninja as the deliberate passive baseline).  A pragma applies to
findings on its own line, or — when it stands alone on a comment line —
to the line directly below it (so multi-line imports can be annotated
above the statement).

Pragmas are themselves audited: a malformed pragma (unknown rule, no
justification) and a pragma that suppresses nothing are both findings
under the ``pragma`` rule, so stale annotations cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding

#: Rule id used for findings about the pragmas themselves.
PRAGMA_RULE = "pragma"

_PRAGMA_RE = re.compile(
    r"#\s*hypertap:\s*allow\(\s*(?P<rules>[^)]*)\)\s*(?P<rest>.*)$"
)
#: Separators allowed between the pragma and its justification.
_SEP_RE = re.compile(r"^[\s:\-\u2013\u2014]+")


@dataclass
class Pragma:
    """One parsed ``hypertap: allow`` comment."""

    line: int  #: Line the pragma comment sits on (1-based).
    rules: Set[str] = field(default_factory=set)
    justification: str = ""
    standalone: bool = False  #: True when the line is comment-only.
    error: Optional[str] = None
    used: bool = False

    @property
    def applies_to(self) -> int:
        """Line whose findings this pragma suppresses."""
        return self.line + 1 if self.standalone else self.line


class PragmaSheet:
    """All pragmas of one source file, indexed by the line they cover."""

    def __init__(self, pragmas: List[Pragma]) -> None:
        self.pragmas = pragmas
        self._by_target: Dict[int, List[Pragma]] = {}
        for pragma in pragmas:
            self._by_target.setdefault(pragma.applies_to, []).append(pragma)

    def suppresses(self, finding: Finding) -> bool:
        """True (and marks the pragma used) if ``finding`` is allowed."""
        if finding.rule == PRAGMA_RULE:
            return False  # pragma findings cannot be self-suppressed
        for pragma in self._by_target.get(finding.line, ()):
            if pragma.error is None and finding.rule in pragma.rules:
                pragma.used = True
                return True
        return False

    def audit(self, path: str) -> Iterator[Finding]:
        """Findings about the pragmas themselves (malformed / unused)."""
        for pragma in self.pragmas:
            if pragma.error is not None:
                yield Finding(
                    path=path,
                    line=pragma.line,
                    rule=PRAGMA_RULE,
                    message=f"malformed suppression: {pragma.error}",
                )
            elif not pragma.used:
                rules = ",".join(sorted(pragma.rules))
                yield Finding(
                    path=path,
                    line=pragma.line,
                    rule=PRAGMA_RULE,
                    message=(
                        f"unused suppression for '{rules}': nothing on the "
                        "annotated line violates it (stale pragma?)"
                    ),
                )


def _comments(text: str) -> Iterator[Tuple[int, bool, str]]:
    """(line, standalone, comment text) for each real ``#`` comment.

    Tokenizing (rather than regex over raw lines) keeps docstrings and
    string literals that merely *mention* the pragma syntax — like this
    module's own documentation — from parsing as pragmas.
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            standalone = not token.line[: token.start[1]].strip()
            yield token.start[0], standalone, token.string
    except (tokenize.TokenError, IndentationError):
        return  # unparseable tail; the AST pass reports the syntax error


def scan_pragmas(text: str, known_rules: Set[str]) -> PragmaSheet:
    """Parse every ``hypertap: allow`` comment in ``text``."""
    pragmas: List[Pragma] = []
    for lineno, standalone, comment in _comments(text):
        match = _PRAGMA_RE.search(comment)
        if match is None:
            if "hypertap:" in comment:
                pragmas.append(
                    Pragma(
                        line=lineno,
                        standalone=standalone,
                        error=(
                            "expected '# hypertap: allow(<rule>) — "
                            "<justification>'"
                        ),
                    )
                )
            continue
        pragma = Pragma(line=lineno, standalone=standalone)
        names = [n.strip() for n in match.group("rules").split(",") if n.strip()]
        if not names:
            pragma.error = "allow() names no rule"
        else:
            unknown = [n for n in names if n not in known_rules]
            if unknown:
                pragma.error = (
                    f"unknown rule(s) {', '.join(sorted(unknown))}; known: "
                    f"{', '.join(sorted(known_rules))}"
                )
            pragma.rules = set(names)
        justification = _SEP_RE.sub("", match.group("rest")).strip()
        if pragma.error is None and not justification:
            pragma.error = "missing justification after allow(...)"
        pragma.justification = justification
        pragmas.append(pragma)
    return PragmaSheet(pragmas)
