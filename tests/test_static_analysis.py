"""Tier-1 tests for the invariant-aware static analysis (repro.analysis).

The pass must (a) hold the line on this repo — zero unsuppressed
findings — and (b) demonstrably fail on seeded violations, including a
replica of the pre-PR-1 codec gap where event classes existed that the
trace codec could not round-trip.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis.__main__ import main
from repro.analysis.runner import run_analysis
from repro.errors import ConfigurationError

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_ROOT = REPO_ROOT / "src"


def write_tree(base: Path, files: dict) -> Path:
    """Materialize a repro-shaped source tree under ``base``."""
    root = base / "src"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return root


# ======================================================================
# The repo itself
# ======================================================================
class TestRepoIsClean:
    def test_no_findings_on_this_tree(self):
        report = run_analysis(SRC_ROOT)
        assert report.findings == [], "\n".join(
            f"{f.location()}: [{f.rule}] {f.message}" for f in report.findings
        )
        assert report.files_scanned > 50

    def test_sanctioned_crossings_are_annotated_not_absent(self):
        # The deliberate baselines (O-Ninja, H-Ninja) and HRKD's
        # cross-validation input exist and are justified inline — the
        # suppression count proves the rule actually sees them.
        report = run_analysis(SRC_ROOT)
        assert report.suppressed >= 10

    def test_exit_code_via_main(self, capsys):
        assert main(["--root", str(SRC_ROOT)]) == 0
        out = capsys.readouterr().out
        assert "OK: hardware-invariant trust boundary holds" in out


# ======================================================================
# trust-boundary
# ======================================================================
class TestTrustBoundary:
    def test_guest_import_in_auditor_fails(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/evil.py": """
                from repro.guest.kernel import GuestKernel
                """,
            },
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["trust-boundary"]
        assert "repro.guest.kernel" in report.findings[0].message
        assert report.exit_code == 1

    def test_hw_machine_and_vmi_also_forbidden(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/evil.py": """
                import repro.hw.machine
                from repro.vmi.introspection import OsInvariantView
                """,
            },
        )
        rules = sorted(f.rule for f in run_analysis(root).findings)
        assert rules == ["trust-boundary", "trust-boundary"]

    def test_non_auditor_modules_may_import_guest(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/core/fine.py": """
                from repro.guest.kernel import GuestKernel
                """,
            },
        )
        assert run_analysis(root).findings == []

    def test_function_level_import_is_caught(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/sneaky.py": """
                def peek():
                    from repro.guest.task import Task
                    return Task
                """,
            },
        )
        assert [f.rule for f in run_analysis(root).findings] == ["trust-boundary"]


# ======================================================================
# event-coverage (the pre-PR-1 codec gap, as a static failure)
# ======================================================================
#: repro.core.events as it effectively was before PR 1: seven event
#: types and classes, but a codec registry covering only four — the
#: TSS_INTEGRITY / MEM_ACCESS / RAW_EXIT payloads fell on the floor.
PRE_PR1_EVENTS = """
import enum


class EventType(enum.Enum):
    PROCESS_SWITCH = "process_switch"
    THREAD_SWITCH = "thread_switch"
    SYSCALL = "syscall"
    IO = "io"
    MEM_ACCESS = "mem_access"
    TSS_INTEGRITY = "tss_integrity"
    RAW_EXIT = "raw_exit"


REQUIRED_EXIT_REASONS = {
    EventType.PROCESS_SWITCH: frozenset(),
    EventType.THREAD_SWITCH: frozenset(),
    EventType.SYSCALL: frozenset(),
    EventType.IO: frozenset(),
    EventType.MEM_ACCESS: frozenset(),
    EventType.TSS_INTEGRITY: frozenset(),
    EventType.RAW_EXIT: frozenset(),
}


class GuestEvent:
    pass


class ProcessSwitchEvent(GuestEvent):
    pass


class ThreadSwitchEvent(GuestEvent):
    pass


class SyscallEvent(GuestEvent):
    pass


class IOEvent(GuestEvent):
    pass


class MemoryAccessEvent(GuestEvent):
    pass


class TssIntegrityAlert(GuestEvent):
    pass


class RawExitEvent(GuestEvent):
    pass


EVENT_CLASSES = {
    EventType.PROCESS_SWITCH.value: ProcessSwitchEvent,
    EventType.THREAD_SWITCH.value: ThreadSwitchEvent,
    EventType.SYSCALL.value: SyscallEvent,
    EventType.IO.value: IOEvent,
}
"""


class TestEventCoverage:
    def test_pre_pr1_codec_gap_is_a_static_failure(self, tmp_path):
        root = write_tree(tmp_path, {"repro/core/events.py": PRE_PR1_EVENTS})
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert report.exit_code == 1
        messages = "\n".join(f.message for f in report.findings)
        # The three dropped classes are called out by name...
        for cls in ("MemoryAccessEvent", "TssIntegrityAlert", "RawExitEvent"):
            assert cls in messages
        # ...and so are the unregistered type keys.
        for member in ("MEM_ACCESS", "TSS_INTEGRITY", "RAW_EXIT"):
            assert f"EventType.{member}" in messages
        assert len(report.findings) == 6

    def test_fully_registered_codec_is_clean(self, tmp_path):
        fixed = PRE_PR1_EVENTS.replace(
            "    EventType.IO.value: IOEvent,\n}",
            "    EventType.IO.value: IOEvent,\n"
            "    EventType.MEM_ACCESS.value: MemoryAccessEvent,\n"
            "    EventType.TSS_INTEGRITY.value: TssIntegrityAlert,\n"
            "    EventType.RAW_EXIT.value: RawExitEvent,\n}",
        )
        root = write_tree(tmp_path, {"repro/core/events.py": fixed})
        assert run_analysis(root, selected_rules=["event-coverage"]).findings == []

    def _full_events(self):
        return PRE_PR1_EVENTS.replace(
            "    EventType.IO.value: IOEvent,\n}",
            "    EventType.IO.value: IOEvent,\n"
            "    EventType.MEM_ACCESS.value: MemoryAccessEvent,\n"
            "    EventType.TSS_INTEGRITY.value: TssIntegrityAlert,\n"
            "    EventType.RAW_EXIT.value: RawExitEvent,\n}",
        )

    _BTRACE_TABLES = """
    TYPE_CODES = {
        "process_switch": 1,
        "thread_switch": 2,
        "syscall": 3,
        "io": 4,
        "mem_access": 5,
        "tss_integrity": 6,
        "raw_exit": 7,
    }

    BTRACE_LAYOUTS = {
        "process_switch": ("<QQ", ()),
        "thread_switch": ("<Q", ()),
        "syscall": ("<QII", ()),
        "io": ("<II", ()),
        "mem_access": ("<QQI", ()),
        "tss_integrity": ("<QQ", ()),
        "raw_exit": ("<II", ()),
    }
    """

    def test_complete_btrace_layouts_are_clean(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/core/events.py": self._full_events(),
                "repro/replay/btrace.py": self._BTRACE_TABLES,
            },
        )
        assert run_analysis(root, selected_rules=["event-coverage"]).findings == []

    def test_event_type_without_btrace_layout_is_flagged(self, tmp_path):
        # An EventType the binary codec cannot fixed-layout-encode
        # silently demotes to the JSON-escape path — the rule makes the
        # gap a commit-time failure instead of a decode-rate regression.
        gapped = self._BTRACE_TABLES.replace(
            '        "raw_exit": ("<II", ()),\n', ""
        )
        assert gapped != self._BTRACE_TABLES
        root = write_tree(
            tmp_path,
            {
                "repro/core/events.py": self._full_events(),
                "repro/replay/btrace.py": gapped,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert report.exit_code == 1
        assert len(report.findings) == 1
        finding = report.findings[0]
        assert finding.path.endswith("btrace.py")
        assert "EventType.RAW_EXIT" in finding.message
        assert "BTRACE_LAYOUTS" in finding.message
        assert "JSON-escape" in finding.message

    def test_missing_btrace_table_is_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/core/events.py": self._full_events(),
                "repro/replay/btrace.py": """
                TYPE_CODES = {
                    "process_switch": 1,
                    "thread_switch": 2,
                    "syscall": 3,
                    "io": 4,
                    "mem_access": 5,
                    "tss_integrity": 6,
                    "raw_exit": 7,
                }
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        messages = "\n".join(f.message for f in report.findings)
        assert "BTRACE_LAYOUTS" in messages
        assert "not found" in messages

    def test_missing_required_exit_reasons_entry(self, tmp_path):
        gapped = PRE_PR1_EVENTS.replace(
            "    EventType.RAW_EXIT: frozenset(),\n", ""
        )
        root = write_tree(tmp_path, {"repro/core/events.py": gapped})
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert any(
            "REQUIRED_EXIT_REASONS" in f.message and "RAW_EXIT" in f.message
            for f in report.findings
        )

    def test_undispatched_exit_reason(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/hw/exits.py": """
                import enum


                class ExitReason(enum.Enum):
                    CR_ACCESS = "CR_ACCESS"
                    HLT = "HLT"
                """,
                "repro/core/interception.py": """
                from repro.hw.exits import ExitReason


                class OnlyCr:
                    reasons = frozenset({ExitReason.CR_ACCESS})
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert len(report.findings) == 1
        assert "ExitReason.HLT" in report.findings[0].message

    def test_iterating_the_enum_covers_everything(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/hw/exits.py": """
                import enum


                class ExitReason(enum.Enum):
                    CR_ACCESS = "CR_ACCESS"
                    HLT = "HLT"
                """,
                "repro/core/interception.py": """
                from repro.hw.exits import ExitReason


                class Firehose:
                    reasons = frozenset(set(ExitReason))
                """,
            },
        )
        assert run_analysis(root, selected_rules=["event-coverage"]).findings == []

    def test_shadow_registry_outside_events_module(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/replay/shadow.py": """
                from repro.core.events import EventType, IOEvent, SyscallEvent

                MY_CODECS = {
                    EventType.SYSCALL.value: SyscallEvent,
                    EventType.IO.value: IOEvent,
                }
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert [f.rule for f in report.findings] == ["event-coverage"]
        assert "shadow event-type registry" in report.findings[0].message

    def test_event_type_without_stage_counter_label(self, tmp_path):
        # Dropping an EventType from STAGE_COUNTER_LABELS would make its
        # events invisible to flow accounting — a static failure.
        root = write_tree(
            tmp_path,
            {
                "repro/core/events.py": PRE_PR1_EVENTS,
                "repro/obs/metrics.py": """
                from repro.core.events import EventType

                STAGE_COUNTER_LABELS = {
                    EventType.SYSCALL: "flow.published",
                    EventType.IO: "flow.published",
                }
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        stage = [f for f in report.findings if f.path.endswith("metrics.py")]
        messages = "\n".join(f.message for f in stage)
        for member in ("PROCESS_SWITCH", "THREAD_SWITCH", "RAW_EXIT"):
            assert member in messages
        assert "SYSCALL" not in messages

    def test_missing_stage_counter_table(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/core/events.py": PRE_PR1_EVENTS,
                "repro/obs/metrics.py": "counters = {}\n",
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert any(
            "STAGE_COUNTER_LABELS" in f.message and f.path.endswith("metrics.py")
            for f in report.findings
        )

    def test_ad_hoc_drop_reason_flagged(self, tmp_path):
        # A shedding path minting its own reason would fragment triage
        # queries and dodge the serve accounting identity.
        root = write_tree(
            tmp_path,
            {
                "repro/obs/metrics.py": """
                DROP_REASONS = frozenset({"crash", "overflow"})
                """,
                "repro/serve/shedder.py": """
                def shed(registry, vm):
                    registry.inc("flow.dropped", vm=vm, reason="mystery")
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        assert [f.rule for f in report.findings] == ["event-coverage"]
        assert "mystery" in report.findings[0].message
        assert "DROP_REASONS" in report.findings[0].message
        assert report.findings[0].path.endswith("shedder.py")

    def test_listed_literal_drop_reasons_pass(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/obs/metrics.py": """
                DROP_REASONS = frozenset({"crash", "overflow"})
                """,
                "repro/serve/shedder.py": """
                def shed(registry, vm):
                    registry.inc("flow.dropped", vm=vm, reason="overflow")
                    cell = registry.counter("flow.dropped", reason="crash")
                    cell.inc()
                """,
            },
        )
        assert run_analysis(root, selected_rules=["event-coverage"]).findings == []

    def test_computed_or_missing_drop_reason_flagged(self, tmp_path):
        # The rule audits reasons from the AST, so a computed reason is
        # as much a finding as a missing one.
        root = write_tree(
            tmp_path,
            {
                "repro/obs/metrics.py": """
                DROP_REASONS = frozenset({"crash"})
                """,
                "repro/serve/shedder.py": """
                def shed(registry, vm, why):
                    registry.inc("flow.dropped", vm=vm, reason=why)
                    registry.inc("flow.dropped", vm=vm)
                """,
            },
        )
        report = run_analysis(root, selected_rules=["event-coverage"])
        messages = "\n".join(f.message for f in report.findings)
        assert len(report.findings) == 2
        assert "not a string literal" in messages
        assert "without a reason= label" in messages


# ======================================================================
# determinism
# ======================================================================
class TestDeterminism:
    def test_wall_clock_and_entropy_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/hypervisor/leaky.py": """
                import random
                import time


                def stamp():
                    return time.time()
                """,
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 3
        assert {"import random", "import time", "time.time()"} <= {
            m for f in report.findings for m in [f.message.split("'")[1]]
        }

    def test_sanctioned_rng_modules_are_exempt(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/sim/rng.py": "import random\n",
                "repro/replay/mutate.py": "import random\n",
            },
        )
        assert run_analysis(root, selected_rules=["determinism"]).findings == []

    def test_from_imports_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/workloads/leaky.py": """
                from os import urandom
                from time import time_ns
                """,
            },
        )
        assert len(run_analysis(root, selected_rules=["determinism"]).findings) == 2

    def test_wall_clock_confined_to_repro_prof(self, tmp_path):
        # `import time` anywhere outside repro.prof is a finding now —
        # even for perf_counter-grade throughput timing.  Consumers
        # import the accessor from repro.prof instead, so one grep
        # enumerates every wall-clock read in the tree.
        root = write_tree(
            tmp_path,
            {
                "repro/replay/bench.py": """
                import time


                def measure():
                    return time.perf_counter()
                """,
                "repro/prof/__init__.py": """
                import time

                perf_counter = time.perf_counter
                """,
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 1
        assert report.findings[0].path.endswith("bench.py")
        assert "repro.prof" in report.findings[0].message

    def test_wall_clock_import_suppressible_with_pragma(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/replay/bench.py": """
                import time  # hypertap: allow(determinism) — test fixture
                """,
            },
        )
        assert run_analysis(root, selected_rules=["determinism"]).findings == []

    def test_prof_accessor_import_is_clean(self, tmp_path):
        # The sanctioned route: import the accessor, not the module.
        root = write_tree(
            tmp_path,
            {
                "repro/replay/bench.py": """
                from repro.prof import perf_counter


                def measure():
                    return perf_counter()
                """,
            },
        )
        assert run_analysis(root, selected_rules=["determinism"]).findings == []

    def test_wall_clock_banned_inside_repro_obs(self, tmp_path):
        # Inside repro.obs even perf_counter-grade imports are off
        # limits: exports must be byte-identical live vs replay, so the
        # whole module family is flagged at the import, not the call —
        # and with the stricter repro.obs message, not the repro.prof
        # confinement one a non-obs module gets.
        root = write_tree(
            tmp_path,
            {
                "repro/obs/sampler.py": """
                import time
                from datetime import datetime
                """,
                "repro/bench/timer.py": "import time\n",
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 3
        obs = [f for f in report.findings if f.path.endswith("sampler.py")]
        other = [f for f in report.findings if f.path.endswith("timer.py")]
        assert len(obs) == 2 and len(other) == 1
        assert all("repro.obs" in f.message for f in obs)
        assert "repro.prof" in other[0].message

    def test_scheduling_imports_confined_to_repro_parallel(self, tmp_path):
        # Worker completion order is ambient entropy; only the indexed
        # merge in repro.parallel may touch process pools.
        root = write_tree(
            tmp_path,
            {
                "repro/faults/sneaky.py": """
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor
                """,
                "repro/parallel/executor.py": """
                import multiprocessing
                from concurrent.futures import ProcessPoolExecutor
                """,
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 2
        assert all(f.path.endswith("sneaky.py") for f in report.findings)
        assert all("repro.parallel" in f.message for f in report.findings)

    def test_scheduling_import_suppressible_with_pragma(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/hypervisor/pool.py": """
                import multiprocessing  # hypertap: allow(determinism) — test fixture
                """,
            },
        )
        assert run_analysis(root, selected_rules=["determinism"]).findings == []

    def test_async_imports_confined_to_repro_serve(self, tmp_path):
        # Socket readiness order is kernel-scheduled entropy; only the
        # serving layer (virtual arrival stamps, id-ordered results)
        # may run an event loop.
        root = write_tree(
            tmp_path,
            {
                "repro/obs/pusher.py": """
                import asyncio
                from socket import socketpair
                """,
                "repro/serve/service.py": """
                import asyncio
                import socket
                import selectors
                """,
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 2
        assert all(f.path.endswith("pusher.py") for f in report.findings)
        assert all("repro.serve" in f.message for f in report.findings)

    def test_binary_layout_imports_confined_to_btrace(self, tmp_path):
        # A second struct-packing site is how codec drift starts; only
        # the btrace module may define byte-level record layouts.
        root = write_tree(
            tmp_path,
            {
                "repro/obs/packer.py": """
                import struct
                import mmap
                from array import array
                """,
                "repro/replay/btrace.py": """
                import mmap
                import struct
                from array import array
                """,
            },
        )
        report = run_analysis(root, selected_rules=["determinism"])
        assert len(report.findings) == 3
        assert all(f.path.endswith("packer.py") for f in report.findings)
        assert all(
            "repro.replay.btrace" in f.message for f in report.findings
        )

    def test_binary_layout_import_suppressible_with_pragma(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/hw/checksum.py": """
                import struct  # hypertap: allow(determinism) — test fixture
                """,
            },
        )
        assert run_analysis(root, selected_rules=["determinism"]).findings == []


# ======================================================================
# auditor-purity
# ======================================================================
class TestAuditorPurity:
    def test_direct_machine_mutation_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/impure.py": """
                class Impure:
                    def audit(self, event):
                        self.hypertap.machine.vm_paused = True
                """,
            },
        )
        report = run_analysis(root, selected_rules=["auditor-purity"])
        assert [f.rule for f in report.findings] == ["auditor-purity"]
        assert "vm_paused" in report.findings[0].message

    def test_mutating_call_flagged(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/impure.py": """
                class Impure:
                    def audit(self, event):
                        self.machine.ept.set_permissions(0x1000, write=False)
                """,
            },
        )
        assert len(run_analysis(root, selected_rules=["auditor-purity"]).findings) == 1

    def test_sanctioned_api_and_reference_storage_allowed(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/pure.py": """
                class Pure:
                    def __init__(self, machine):
                        self.machine = machine

                    def audit(self, event):
                        self.hypertap.pause_vm()
                        self.seen = event
                """,
            },
        )
        assert run_analysis(root, selected_rules=["auditor-purity"]).findings == []


# ======================================================================
# pragmas
# ======================================================================
class TestPragmas:
    def test_same_line_suppression(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/allowed.py": """
                from repro.vmi.introspection import OsInvariantView  # hypertap: allow(trust-boundary) — cross-validation input
                """,
            },
        )
        report = run_analysis(root)
        assert report.findings == []
        assert report.suppressed == 1

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/allowed.py": """
                # hypertap: allow(trust-boundary) — deliberate baseline for the ablation
                from repro.guest.kernel import GuestKernel
                """,
            },
        )
        report = run_analysis(root)
        assert report.findings == []
        assert report.suppressed == 1

    def test_pragma_without_justification_is_a_finding(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/lazy.py": """
                from repro.guest.kernel import GuestKernel  # hypertap: allow(trust-boundary)
                """,
            },
        )
        report = run_analysis(root)
        rules = sorted(f.rule for f in report.findings)
        # The malformed pragma does not suppress, so both fire.
        assert rules == ["pragma", "trust-boundary"]
        assert "justification" in next(
            f.message for f in report.findings if f.rule == "pragma"
        )

    def test_unknown_rule_in_pragma_is_a_finding(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/typo.py": """
                from repro.guest.kernel import GuestKernel  # hypertap: allow(trust-boundry) — oops
                """,
            },
        )
        report = run_analysis(root)
        assert any(
            f.rule == "pragma" and "unknown rule" in f.message
            for f in report.findings
        )

    def test_unused_pragma_is_a_finding(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/stale.py": """
                from repro.core.auditor import Auditor  # hypertap: allow(trust-boundary) — left over after a refactor
                """,
            },
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["pragma"]
        assert "unused suppression" in report.findings[0].message

    def test_docstring_mentioning_pragmas_is_not_a_pragma(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/doc.py": '''
                """Docs may say '# hypertap: allow(trust-boundary)' freely."""
                ''',
            },
        )
        assert run_analysis(root).findings == []


# ======================================================================
# baseline
# ======================================================================
class TestBaseline:
    def test_baseline_roundtrip(self, tmp_path, capsys):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/debt.py": """
                from repro.guest.kernel import GuestKernel
                """,
            },
        )
        baseline = tmp_path / "baseline.json"
        assert (
            main(["--root", str(root), "--write-baseline", str(baseline)]) == 0
        )
        capsys.readouterr()
        # Baselined: the known violation no longer fails the run...
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 0
        capsys.readouterr()
        # ...but a *new* violation still does.
        (root / "repro/auditors/debt2.py").write_text(
            "from repro.guest.task import Task\n", encoding="utf-8"
        )
        assert main(["--root", str(root), "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_missing_baseline_is_a_usage_error(self, tmp_path, capsys):
        root = write_tree(tmp_path, {"repro/ok.py": "X = 1\n"})
        code = main(
            ["--root", str(root), "--baseline", str(tmp_path / "nope.json")]
        )
        capsys.readouterr()
        assert code == 2


# ======================================================================
# CLI behavior
# ======================================================================
class TestCli:
    def _run(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC_ROOT) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.analysis", *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
        )

    def test_json_output_is_deterministic_across_runs(self):
        first = self._run("--json")
        second = self._run("--json")
        assert first.returncode == 0, first.stdout + first.stderr
        assert second.returncode == 0
        assert first.stdout == second.stdout
        payload = json.loads(first.stdout)
        assert payload["clean"] is True
        assert payload["findings"] == []
        assert payload["suppressed"] >= 10

    def test_seeded_violation_fails_through_the_cli(self, tmp_path):
        root = write_tree(
            tmp_path,
            {
                "repro/auditors/evil.py": """
                from repro.guest.kernel import GuestKernel
                """,
            },
        )
        proc = self._run("--root", str(root))
        assert proc.returncode == 1
        assert "trust-boundary" in proc.stdout

    def test_unknown_rule_selection_is_exit_2(self):
        proc = self._run("--rules", "no-such-rule")
        assert proc.returncode == 2
        assert "unknown rule" in proc.stderr

    def test_list_rules(self):
        proc = self._run("--list-rules")
        assert proc.returncode == 0
        for rule in (
            "trust-boundary",
            "event-coverage",
            "determinism",
            "auditor-purity",
        ):
            assert rule in proc.stdout


# ======================================================================
# API
# ======================================================================
class TestApi:
    def test_unknown_selected_rule_raises(self):
        with pytest.raises(ConfigurationError):
            run_analysis(SRC_ROOT, selected_rules=["bogus"])

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        root = write_tree(
            tmp_path, {"repro/broken.py": "def nope(:\n    pass\n"}
        )
        report = run_analysis(root)
        assert [f.rule for f in report.findings] == ["parse"]
