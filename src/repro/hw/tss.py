"""Task-State Segment.

The x86 architecture requires TR to point at the running task's TSS and
loads the ring-0 stack pointer from ``TSS.RSP0`` on each user-to-kernel
transition.  The paper's thread-switch interception (Fig 3B) rests on
two facts modelled here:

* the TSS lives in ordinary guest memory, so writes to it can be
  trapped by write-protecting its frame in the EPT, and
* ``TSS.RSP0`` is unique per thread (it is the top of that thread's
  kernel stack), so its value identifies the scheduled-in thread.
"""

from __future__ import annotations

from repro.hw.memory import PhysicalMemory

#: Offset of the RSP0 field inside the 64-bit TSS (matches hardware).
RSP0_OFFSET = 4
#: Size of the 64-bit TSS in bytes (without IO bitmap).
TSS_SIZE = 104


class TssView:
    """Typed accessor over a TSS stored at a guest-physical address.

    Host-side components (the hypervisor and HyperTap) use this to read
    the structure; the *guest* writes it through normal memory writes so
    that EPT protection applies.
    """

    def __init__(self, memory: PhysicalMemory, base_gpa: int) -> None:
        self.memory = memory
        self.base_gpa = base_gpa

    @property
    def rsp0_gpa(self) -> int:
        """Guest-physical address of the RSP0 field."""
        return self.base_gpa + RSP0_OFFSET

    def read_rsp0(self) -> int:
        return self.memory.read_u64(self.rsp0_gpa)

    def host_write_rsp0(self, value: int) -> None:
        """Hypervisor-side write (EPT is not consulted)."""
        self.memory.write_u64(self.rsp0_gpa, value)
