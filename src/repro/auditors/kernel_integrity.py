"""Kernel data-structure integrity watching via fine-grained
interception (§VI-D + §VII-D).

Fine-grained EPT interception can watch *individual kernel objects*.
This auditor write-protects the pages holding selected kernel data —
the task-list linkage is the default, since DKOM rootkits attack it —
and audits every trapped write: a write to a watched object coming
from a context the policy doesn't expect (here: any write reaching
``tasks_next``/``tasks_prev`` fields from outside the kernel's own
scheduler/fork paths is suspicious when it *unlinks* an entry) raises
an alert with the writing task's architecturally-derived identity.

The paper marks this class of checker as future work enabled by
HyperTap ("detectors for silent data corruption, buffer overflow, and
code injection"); it also illustrates the §VI-D warning that
fine-grained interception costs real overhead and should be used for
selective critical protection.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.auditor import Auditor
from repro.core.derive import TASK_STRUCT
from repro.core.events import EventType, GuestEvent, MemoryAccessEvent
from repro.hw.memory import page_base


class KernelDataWatch(Auditor):
    """Watches the task-list linkage for in-guest pointer surgery."""

    name = "kernel-data-watch"
    subscriptions = {EventType.MEM_ACCESS}
    blocking = True  # integrity checks gate the write

    def __init__(self, pause_on_tamper: bool = False) -> None:
        super().__init__()
        self.pause_on_tamper = pause_on_tamper
        #: GVA of every watched link field -> owning pid (at watch time).
        self._link_fields: Dict[int, int] = {}
        self._watched_pages: Set[int] = set()
        self.writes_audited = 0

    # ------------------------------------------------------------------
    def watch_task(self, kernel, task) -> None:
        """Protect the page(s) holding one task's own link fields.

        Note the DKOM geometry: unlinking task X rewrites the link
        fields of X's *neighbours* — so protecting a single task only
        catches tampering that writes *its* fields (e.g. X is the
        neighbour of the real victim).  Full protection watches the
        whole list (:meth:`watch_all_tasks`).

        The guest kernel's own linkage updates (fork/exit) go through
        its trusted internal paths and are not trapped; any CPU-level
        write reaching these fields is tampering by definition.
        """
        self._watch_linkage(kernel, task.task_struct_gva, task.pid)

    def _watch_linkage(self, kernel, task_struct_gva: int, pid: int) -> None:
        tracer = self.hypertap.channel.tracer
        if tracer is None:
            raise RuntimeError("fine-grained tracer not enabled")
        for fieldname in ("tasks_next", "tasks_prev"):
            gva = task_struct_gva + TASK_STRUCT.offset(fieldname)
            self._link_fields[gva] = pid
            gpa = kernel.machine.page_registry.gva_to_gpa(
                kernel.kernel_pdba, gva
            )
            page = page_base(gpa)
            if page not in self._watched_pages:
                self._watched_pages.add(page)
                tracer.watch_gpa(gpa, write=True)

    def watch_all_tasks(self, kernel) -> None:
        """Protect the linkage of every task on the list, including the
        list head (``init_task``) — DKOM against the newest task writes
        the head's ``tasks_prev``."""
        self._watch_linkage(kernel, kernel.init_task_gva, 0)
        for task in kernel.tasks.values():
            self.watch_task(kernel, task)

    # ------------------------------------------------------------------
    def audit(self, event: GuestEvent) -> None:
        if not isinstance(event, MemoryAccessEvent) or event.access != "w":
            return
        self.writes_audited += 1
        owner_pid = self._link_fields.get(event.gva)
        if owner_pid is None:
            return  # a write elsewhere on a shared page
        # Who performed the write?  Derived from hardware state.
        writer = self.hypertap.deriver.current_task_info(event.vcpu_index)
        self.raise_alert(
            "task_list_tamper",
            victim_pid=owner_pid,
            field_gva=event.gva,
            writer_pid=writer.pid if writer else -1,
            writer_comm=writer.comm if writer else "?",
        )
        if self.pause_on_tamper:
            self.hypertap.pause_vm()

    @property
    def tamper_alerts(self):
        return [a for a in self.alerts if a["kind"] == "task_list_tamper"]
