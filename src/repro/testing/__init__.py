"""Coverage-guided adversarial conformance harness.

IRIS (arXiv:2303.12817) demonstrated that record/replay plus
coverage-guided fuzzing is how you explore a hypervisor's exit-event
space; Heckler (arXiv:2404.03387) demonstrated that adversarially
*timed* event streams break guarantees that hold under benign
schedules.  ``repro.testing`` combines both against HyperTap's
auditors:

* :mod:`repro.testing.coverage` — event-type / transition / timing-gap
  coverage of a replayed stream, the fuzzer's feedback signal;
* :mod:`repro.testing.oracle` — the differential oracle: expected
  verdicts recomputed from trace ground truth the auditors never parse,
  compared against what the auditors actually raised;
* :mod:`repro.testing.fuzzer` — the coverage-guided loop over trace
  mutations (:class:`~repro.replay.mutate.TraceMutator`) and schedule
  perturbations (:mod:`repro.sim.perturb`);
* :mod:`repro.testing.shrink` — ddmin-style reducer from a failing
  trace to a minimal reproducer;
* :mod:`repro.testing.corpus` — checked-in regression traces under
  ``tests/corpus/`` (every shrunk finding becomes one);
* :mod:`repro.testing.seeds` — deterministic base traces, including
  the seeded known-miss used by acceptance tests and the nightly job;
* :mod:`repro.testing.hut` — the fuzzer turned around: the hypervisor
  and hardware emulation as the system under test, checked against an
  independent reference model, perturbed schedules, and the stack's own
  redundant accounting (``hut-fuzz`` / ``hut-shrink``).

Everything is seeded through :class:`repro.sim.rng.RandomStreams`, so a
``(seed, budget)`` pair names a byte-reproducible fuzzing campaign.
"""

from repro.testing.coverage import CoverageAuditor, CoverageMap
from repro.testing.fuzzer import FuzzConfig, Fuzzer, FuzzResult
from repro.testing.oracle import Discrepancy, DifferentialOracle, finding_key
from repro.testing.shrink import ddmin, shrink_trace

__all__ = [
    "CoverageAuditor",
    "CoverageMap",
    "DifferentialOracle",
    "Discrepancy",
    "FuzzConfig",
    "Fuzzer",
    "FuzzResult",
    "ddmin",
    "finding_key",
    "shrink_trace",
]
