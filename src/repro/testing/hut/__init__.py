"""``repro.testing.hut`` — the fuzzer turned around.

Where the rest of ``repro.testing`` fuzzes the *monitoring* stack
(auditors consuming a recorded trace), this package fuzzes the
*monitored* stack: the hypervisor and hardware emulation themselves
become the system under test, IRIS-style (arXiv:2303.12817).  Seeded
op programs drive the real machine through its trap-and-emulate doors;
a dict-flat reference model recomputes what should have happened; a
three-way oracle (reference differential, schedule differential,
self-consistency) turns disagreement into stable findings that shrink
with the generalized ddmin and land in ``tests/corpus/hut-*.jsonl``.

CLI: ``python -m repro.testing hut-fuzz|hut-shrink``.  See DESIGN.md
§5i and the hut-triage recipe in TESTING.md.
"""

from repro.testing.hut.bugs import BUG_TARGETS, SEEDED_BUGS
from repro.testing.hut.corpus import (
    hut_corpus_entries,
    hut_corpus_keys,
    save_hut_finding,
    verify_hut_entry,
)
from repro.testing.hut.fuzzer import (
    HUT_SHARDS,
    HutFindingPredicate,
    HutFuzzConfig,
    HutFuzzResult,
    fuzz_hut,
    run_candidate,
    shrink_finding,
)
from repro.testing.hut.harness import HutHarness, INTEREST_REASONS
from repro.testing.hut.oracle import (
    consistency_findings,
    differential_findings,
    evaluate,
)
from repro.testing.hut.program import (
    TARGETS,
    HutOp,
    HutProgram,
    generate_program,
    load_program,
    save_program,
)
from repro.testing.hut.reference import ReferenceModel

__all__ = [
    "BUG_TARGETS",
    "SEEDED_BUGS",
    "HUT_SHARDS",
    "HutFindingPredicate",
    "HutFuzzConfig",
    "HutFuzzResult",
    "HutHarness",
    "HutOp",
    "HutProgram",
    "INTEREST_REASONS",
    "ReferenceModel",
    "TARGETS",
    "consistency_findings",
    "differential_findings",
    "evaluate",
    "fuzz_hut",
    "generate_program",
    "hut_corpus_entries",
    "hut_corpus_keys",
    "load_program",
    "run_candidate",
    "save_hut_finding",
    "save_program",
    "shrink_finding",
    "verify_hut_entry",
]
