"""Tests for the discrete-event engine and clock."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import MILLISECOND, SECOND, VirtualClock, format_ns
from repro.sim.engine import Engine


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0

    def test_advance(self):
        clock = VirtualClock()
        clock.advance_to(500)
        assert clock.now == 500

    def test_cannot_move_backwards(self):
        clock = VirtualClock(1000)
        with pytest.raises(SimulationError):
            clock.advance_to(999)

    def test_cannot_start_negative(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1)

    def test_now_seconds(self):
        clock = VirtualClock(2 * SECOND)
        assert clock.now_seconds == pytest.approx(2.0)

    def test_format_ns(self):
        assert format_ns(5) == "5ns"
        assert format_ns(5_000) == "5.000us"
        assert format_ns(5_000_000) == "5.000ms"
        assert "s" in format_ns(5 * SECOND)


class TestEngine:
    def test_schedule_and_run(self):
        engine = Engine()
        fired = []
        engine.schedule(100, fired.append, 1)
        engine.schedule(50, fired.append, 2)
        engine.run_until(200)
        assert fired == [2, 1]
        assert engine.clock.now == 200

    def test_same_time_fifo_order(self):
        engine = Engine()
        fired = []
        for i in range(10):
            engine.schedule(100, fired.append, i)
        engine.run_until(100)
        assert fired == list(range(10))

    def test_cancel(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(10, fired.append, "x")
        handle.cancel()
        engine.run_until(100)
        assert fired == []

    def test_cannot_schedule_in_past(self):
        engine = Engine()
        engine.clock.advance_to(100)
        with pytest.raises(SimulationError):
            engine.schedule_at(50, lambda: None)

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_run_until_lands_on_horizon(self):
        engine = Engine()
        engine.schedule(30, lambda: None)
        engine.run_until(1000)
        assert engine.clock.now == 1000

    def test_events_scheduled_during_run(self):
        engine = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 5:
                engine.schedule(10, chain, n + 1)

        engine.schedule(0, chain, 0)
        engine.run_until(100)
        assert fired == [0, 1, 2, 3, 4, 5]

    def test_run_for_is_relative(self):
        engine = Engine()
        engine.run_for(5 * MILLISECOND)
        engine.run_for(5 * MILLISECOND)
        assert engine.clock.now == 10 * MILLISECOND

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_max_events_bound(self):
        engine = Engine()

        def rearm():
            engine.schedule(1, rearm)

        engine.schedule(0, rearm)
        fired = engine.run_until(10**9, max_events=100)
        assert fired == 100

    def test_stop_during_run(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, 1)
        engine.schedule(20, lambda: engine.stop())
        engine.schedule(30, fired.append, 2)
        engine.run_until(100)
        assert fired == [1]

    def test_drain(self):
        engine = Engine()
        fired = []
        for i in range(5):
            engine.schedule(i * 10, fired.append, i)
        assert engine.drain() == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_pending_counts_uncancelled(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        assert engine.pending == 1


class TestStopContract:
    """stop() requests are consumed exactly once (see Engine.stop)."""

    def test_stop_between_tilings_aborts_next_run(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, 1)
        engine.schedule(30, fired.append, 2)
        assert engine.run_until(20) == 1
        engine.stop()
        # The pending request is consumed by the next tiling: nothing
        # fires and the clock does not advance to the horizon.
        assert engine.run_until(40) == 0
        assert fired == [1]
        assert engine.clock.now == 20
        # Consumed means consumed: the tiling after that runs normally.
        assert engine.run_until(40) == 1
        assert fired == [1, 2]
        assert engine.clock.now == 40

    def test_stop_does_not_leak_into_run_for(self):
        engine = Engine()
        fired = []
        engine.schedule(5, fired.append, "a")
        engine.stop()
        assert engine.run_for(10) == 0
        assert engine.run_for(10) == 1
        assert fired == ["a"]


class TestCancellationCompaction:
    """pending is O(1) and mass-cancellation cannot bloat the heap."""

    def test_pending_tracks_schedule_fire_cancel(self):
        engine = Engine()
        handles = [engine.schedule(10 * (i + 1), lambda: None) for i in range(4)]
        assert engine.pending == 4
        handles[3].cancel()
        assert engine.pending == 3
        engine.run_until(20)
        assert engine.pending == 1

    def test_double_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(10, lambda: None)
        engine.schedule(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert engine.pending == 1

    def test_mass_cancel_compacts_heap(self):
        engine = Engine()
        handles = [engine.schedule(10 + i, lambda: None) for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        assert engine.pending == 50
        # Compaction is lazy (it triggers on a cancelled majority), so
        # some tombstones may remain — but never again a majority, and
        # never the 150 a naive heap would carry to their pop times.
        tombstones = sum(1 for event in engine._queue if event.cancelled)
        assert len(engine._queue) < 200
        assert tombstones * 2 <= len(engine._queue)

    def test_compaction_preserves_firing_order(self):
        engine = Engine()
        fired = []
        handles = []
        for i in range(300):
            handles.append(engine.schedule(10 + (i % 7) * 5, fired.append, i))
        for i, handle in enumerate(handles):
            if i % 3 != 0:
                handle.cancel()
        engine.run_until(1_000)
        expected = sorted(
            (i for i in range(300) if i % 3 == 0),
            key=lambda i: (10 + (i % 7) * 5, i),
        )
        assert fired == expected

    def test_compaction_is_in_place(self):
        # ReplaySource.run hoists engine._queue into a local alias; the
        # compacted heap must stay the *same list object*.
        engine = Engine()
        alias = engine._queue
        handles = [engine.schedule(10 + i, lambda: None) for i in range(128)]
        for handle in handles[:100]:
            handle.cancel()
        assert engine._queue is alias
        assert len(alias) < 128
