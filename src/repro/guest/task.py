"""Task objects: the Python-side handle onto guest-memory task structs.

The *authoritative* task data (pid, uid, euid, comm, list linkage...)
lives in guest physical memory in ``TASK_STRUCT`` layout; this class
caches addresses and holds pure scheduling state (generator frames,
runqueue membership) that a real kernel would keep in registers and on
the kernel stack.  Monitors never read this Python object — they read
hardware state and guest memory.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.guest.layouts import THREAD_SIZE

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.programs import KernelOp
    from repro.hw.paging import AddressSpace


class TaskState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    UNINTERRUPTIBLE = "uninterruptible"
    SPINNING = "spinning"  # busy-waiting on a contended spinlock
    ZOMBIE = "zombie"

    @property
    def proc_char(self) -> str:
        """State character as /proc/<pid>/stat reports it."""
        return {
            TaskState.RUNNING: "R",
            TaskState.RUNNABLE: "R",
            TaskState.SPINNING: "R",
            TaskState.SLEEPING: "S",
            TaskState.UNINTERRUPTIBLE: "D",
            TaskState.ZOMBIE: "Z",
        }[self]


class MmHandle:
    """Python handle over a guest mm_struct + its address space."""

    def __init__(self, gva: int, address_space: "AddressSpace") -> None:
        self.gva = gva
        self.address_space = address_space

    @property
    def pgd(self) -> int:
        return self.address_space.pdba


class Task:
    """One schedulable entity (process main thread or kernel thread)."""

    def __init__(
        self,
        pid: int,
        comm: str,
        task_struct_gva: int,
        thread_info_gva: int,
        kernel_stack_gva: int,
        mm: Optional[MmHandle],
        is_kthread: bool = False,
    ) -> None:
        self.pid = pid
        self.comm = comm
        self.task_struct_gva = task_struct_gva
        self.thread_info_gva = thread_info_gva
        self.kernel_stack_gva = kernel_stack_gva
        self.mm = mm
        self.is_kthread = is_kthread

        self.state = TaskState.RUNNABLE
        self.cpu = 0
        #: Remaining timeslice in ns (reset at dispatch).
        self.slice_remaining_ns = 0
        #: Generator frames: [program] + nested kernel handlers.
        self.frames: List[Generator] = []
        #: Kind of each frame: "user", "syscall", or "kops".
        self.frame_kinds: List[str] = []
        #: Value to send into the top frame on the next advance.
        self.send_value: Any = None
        #: Kernel op to retry (contended spinlock).
        self.retry_op: Optional["KernelOp"] = None
        #: Locks currently held (names), for diagnostics and fault logic.
        self.held_locks: List[str] = []
        #: >0 means preemption disabled (spinlocks held / explicit).
        self.preempt_count = 0
        #: True while executing kernel code (syscall/irq context).
        self.in_kernel = False
        #: Exit code once ZOMBIE.
        self.exit_code: Optional[int] = None
        #: Wait channel name while SLEEPING.
        self.wait_channel: Optional[str] = None
        self.start_time_ns = 0
        #: Set by attacks: this task's /proc visibility (rootkits flip
        #: guest memory, not this; see repro.attacks.rootkits).
        self.user_ns_note = ""

    # ------------------------------------------------------------------
    @property
    def rsp0(self) -> int:
        """Top of this task's kernel stack — the thread identifier the
        architecture exposes through TSS.RSP0 (Fig 3B)."""
        return self.kernel_stack_gva + THREAD_SIZE

    @property
    def pdba(self) -> int:
        """The CR3 value while this task runs (0 for kernel threads,
        which borrow the previous mm)."""
        return self.mm.pgd if self.mm is not None else 0

    def push_frame(self, gen: Generator, kind: str = "user") -> None:
        self.frames.append(gen)
        self.frame_kinds.append(kind)

    def pop_frame(self) -> None:
        self.frames.pop()
        if self.frame_kinds:
            self.frame_kinds.pop()

    @property
    def current_frame(self) -> Optional[Generator]:
        return self.frames[-1] if self.frames else None

    def runnable(self) -> bool:
        return self.state in (TaskState.RUNNABLE, TaskState.RUNNING, TaskState.SPINNING)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(pid={self.pid}, comm={self.comm!r}, "
            f"state={self.state.value}, cpu={self.cpu})"
        )
