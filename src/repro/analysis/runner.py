"""Orchestration: discover → rule sweep → suppress → baseline → render.

The output is deterministic by construction — files discovered in
sorted order, rules run in sorted-id order, findings sorted before
rendering, no timestamps — so two runs over the same tree are
byte-identical (a property the test suite asserts; diffable CI logs
and stable baselines depend on it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_RULE
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import all_rules, rule_ids
from repro.errors import ConfigurationError

#: Schema version of the ``--json`` output.
REPORT_VERSION = 1


@dataclass
class Report:
    """Outcome of one analysis run."""

    root: str
    rules: List[str]
    files_scanned: int
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def run_analysis(
    root: Path,
    selected_rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
) -> Report:
    """Run the pass over the tree rooted at ``root``."""
    known = set(rule_ids())
    if selected_rules is not None:
        unknown = sorted(set(selected_rules) - known)
        if unknown:
            raise ConfigurationError(
                f"unknown rule(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(known))})"
            )
    ctx = AnalysisContext(root, known_rules=known)

    rules = [
        rule
        for rule in all_rules()
        if selected_rules is None or rule.id in selected_rules
    ]
    raw: List[Finding] = list(ctx.parse_errors)
    for rule in rules:
        raw.extend(rule.check(ctx))

    # Inline suppressions (marks pragmas used as a side effect).
    sheets = {source.rel: source.pragmas for source in ctx.files}
    active: List[Finding] = []
    suppressed = 0
    for finding in raw:
        sheet = sheets.get(finding.path)
        if sheet is not None and sheet.suppresses(finding):
            suppressed += 1
        else:
            active.append(finding)

    # Pragma hygiene is only meaningful on a full-rule run: a filtered
    # run would misreport pragmas for unselected rules as unused.
    if selected_rules is None:
        for source in ctx.files:
            active.extend(source.pragmas.audit(source.rel))

    baselined = 0
    if baseline is not None:
        active, baselined = apply_baseline(active, load_baseline(baseline))

    return Report(
        root=str(root),
        rules=[rule.id for rule in rules] + ([PRAGMA_RULE] if selected_rules is None else []),
        files_scanned=len(ctx.files),
        findings=sorted(
            active, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        ),
        suppressed=suppressed,
        baselined=baselined,
    )


# ======================================================================
# Rendering
# ======================================================================
def render_text(report: Report) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: [{finding.rule}] {finding.message}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    if report.clean:
        lines.append("OK: hardware-invariant trust boundary holds")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "version": REPORT_VERSION,
        "rules": report.rules,
        "files_scanned": report.files_scanned,
        "findings": [f.to_json() for f in report.findings],
        "counts_by_rule": report.counts_by_rule(),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
