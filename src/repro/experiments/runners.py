"""Experiment implementations shared by the CLI and the benchmarks."""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.figures import ascii_cdf
from repro.analysis.tables import format_table
from repro.attacks.exploits import ExploitPlan
from repro.attacks.rootkits import ROOTKIT_ZOO, build_rootkit
from repro.attacks.sidechannel import ProcSideChannel
from repro.attacks.strategies import RootkitCombinedAttack, SpammingAttack
from repro.auditors.goshd import GuestOSHangDetector
from repro.auditors.h_ninja import HNinja
from repro.auditors.hrkd import HiddenRootkitDetector
from repro.auditors.ht_ninja import HTNinja
from repro.auditors.o_ninja import ONinja
from repro.faults.campaign import Outcome, TrialConfig, run_campaign
from repro.faults.injector import InjectionMode
from repro.faults.sites import build_site_catalog
from repro.harness import Testbed, TestbedConfig
from repro.parallel import parallel_map
from repro.sim.clock import MILLISECOND, SECOND
from repro.sim.rng import RandomStreams
from repro.vmi.introspection import KernelSymbolMap, OsInvariantView
from repro.workloads.common import start_workload
from repro.workloads.unixbench import run_microbench


def _scaled(n: int, scale: float, minimum: int = 1) -> int:
    return max(minimum, int(round(n * scale)))


# Experiment grids fan out through repro.parallel: every cell below is
# a pure function of its argument tuple (each boots a private testbed,
# all seeds travel in the tuple), and results merge by grid index — so
# REPRO_JOBS changes wall time, never a table.


# ======================================================================
# Fig 4 + Fig 5 — fault-injection campaign
# ======================================================================
def run_fig4_fig5(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    catalog = build_site_catalog()
    if full:
        base = 0 if seed is None else seed
        sites, seeds = catalog, (base, base + 1, base + 2)
    else:
        first_pass = [s for s in catalog if s.activation_pass == 1]
        count = _scaled(8, scale)
        sites = first_pass[:: max(1, len(first_pass) // count)][:count]
        seeds = (0 if seed is None else seed,)
    summary = run_campaign(
        sites,
        seeds=seeds,
        base_config=TrialConfig(
            warmup_ns=1 * SECOND,
            detect_window_ns=12 * SECOND,
            classify_window_ns=20 * SECOND,
        ),
    )
    rows = []
    for workload in ("hanoi", "make-j1", "make-j2", "http"):
        for mode in (InjectionMode.TRANSIENT, InjectionMode.PERSISTENT):
            for preemptible in (False, True):
                counts = summary.outcome_counts(
                    workload=workload, mode=mode, preemptible=preemptible
                )
                if sum(counts.values()) == 0:
                    continue
                rows.append(
                    [
                        workload,
                        mode.value,
                        "preempt" if preemptible else "no-preempt",
                        counts[Outcome.NOT_ACTIVATED],
                        counts[Outcome.NOT_MANIFESTED],
                        counts[Outcome.PARTIAL_HANG],
                        counts[Outcome.FULL_HANG],
                        counts[Outcome.NOT_DETECTED],
                    ]
                )
    fig4 = format_table(
        ["workload", "fault", "kernel", "not-act", "not-manif", "PARTIAL",
         "FULL", "not-det"],
        rows,
        title=f"Fig 4 — GOSHD coverage ({len(summary.results)} injections)",
    )
    fig4 += (
        f"\ncoverage={summary.coverage() * 100:.2f}% (paper 99.8%)  "
        f"manifestation={summary.manifestation_rate() * 100:.1f}% (paper ~82%)"
        f"\npartial: no-preempt {summary.partial_hang_fraction(False) * 100:.1f}%"
        f" / preempt {summary.partial_hang_fraction(True) * 100:.1f}%"
        " (paper 18% / 26%)"
    )
    first = summary.detection_latencies_s()
    full_lat = summary.full_hang_latencies_s()
    fig5 = ascii_cdf(
        [("first hang detected", first or [float("inf")]),
         ("full hang reached", full_lat or [float("inf")])],
        points=[4, 6, 8, 12, 16, 24, 32],
        unit="s",
        title="\nFig 5 — detection latency CDF",
    )
    return fig4 + "\n" + fig5


# ======================================================================
# Table II — HRKD vs the rootkit zoo
# ======================================================================
def run_table2(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    testbed = Testbed(
        TestbedConfig(num_vcpus=2, seed=17 if seed is None else seed)
    )
    testbed.boot()
    hrkd = HiddenRootkitDetector()
    testbed.monitor([hrkd])
    hrkd.set_vmi_view(
        OsInvariantView(
            testbed.machine, KernelSymbolMap.from_kernel(testbed.kernel)
        )
    )

    def malware(ctx):
        while True:
            yield ctx.compute(300_000)
            yield ctx.sys_write(1, 16)

    victim = testbed.kernel.spawn_process(
        malware, "malware", uid=0, exe="/tmp/.hidden"
    )
    testbed.run_s(1.5)
    rows = []
    for spec in ROOTKIT_ZOO:
        rootkit = build_rootkit(spec.name, testbed.kernel)
        rootkit.hide_process(victim.pid)
        testbed.run_s(0.8)
        guest_view = testbed.kernel.guest_view_pids()
        report = hrkd.scan_against(guest_view, "guest-ps")
        rows.append(
            [
                spec.name,
                spec.target_os,
                " + ".join(t.value for t in spec.techniques),
                "yes" if victim.pid not in guest_view else "NO",
                "DETECTED" if report.rootkit_detected else "MISSED",
            ]
        )
        rootkit.unhide_all()
        testbed.run_s(0.3)
    return format_table(
        ["rootkit", "target OS", "technique(s)", "hidden", "HRKD"],
        rows,
        title="Table II — real-world rootkits evaluated with HRKD",
    )


# ======================================================================
# Table III — /proc side channel
# ======================================================================
def _table3_idle(ctx):
    while True:
        yield ctx.sys_nanosleep(400 * MILLISECOND)


def _table3_cell(args):
    interval_s, trial_seed, samples = args
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=trial_seed))
    testbed.boot()
    oninja = ONinja(testbed.kernel, interval_ns=interval_s * SECOND)
    oninja.install()
    for i in range(25):
        testbed.kernel.spawn_process(_table3_idle, f"svc{i}", uid=1000)
    testbed.run_s(0.5)
    channel = ProcSideChannel(
        testbed.kernel, oninja.pid, poll_period_ns=300_000
    )
    channel.launch()
    testbed.run_s((samples + 2) * (interval_s + 0.2))
    estimate = channel.estimate(max_samples=samples)
    return [
        interval_s,
        f"{estimate.mean:.5f}",
        f"{estimate.minimum:.5f}",
        f"{estimate.maximum:.5f}",
        f"{estimate.stdev:.5f}",
    ]


def run_table3(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    samples = 30 if full else _scaled(8, scale)
    cells = [
        (interval_s, interval_s if seed is None else seed + interval_s, samples)
        for interval_s in (1, 2, 4, 8)
    ]
    rows = parallel_map(_table3_cell, cells)
    return format_table(
        ["Ninja interval (s)", "predicted mean", "min", "max", "SD"],
        rows,
        title="Table III — predicting Ninja's monitoring interval",
    )


# ======================================================================
# §VIII-C2 — the three Ninjas
# ======================================================================
def _ninja_trial(seed, spam, o_interval_ns, h_interval_ns, jitter_ns):
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=seed))
    testbed.boot()

    def idle(ctx):
        while True:
            yield ctx.sys_nanosleep(500_000_000)

    for i in range(23):
        testbed.kernel.spawn_process(idle, f"svc{i}", uid=100 + i)
    ht_ninja = HTNinja()
    testbed.monitor([ht_ninja])
    o_ninja = ONinja(testbed.kernel, interval_ns=o_interval_ns)
    o_ninja.install()
    h_ninja = HNinja(
        testbed.machine,
        KernelSymbolMap.from_kernel(testbed.kernel),
        interval_ns=h_interval_ns,
    )
    h_ninja.start()
    attack = SpammingAttack(
        testbed.kernel,
        idle_processes=spam,
        inner=RootkitCombinedAttack(
            testbed.kernel,
            plan=ExploitPlan(
                pre_escalation_ns=200_000,
                post_escalation_ns=3_000_000,
                io_actions=2,
                exit_after=True,
            ),
            install_delay_ns=3_200_000,
        ),
    )
    attack.spam()
    testbed.run_s(0.15)
    testbed.engine.run_for(jitter_ns)
    attack.launch()
    testbed.run_s(0.12)
    return o_ninja.detected, h_ninja.detected, ht_ninja.detected


def _ninja_cell(args):
    return _ninja_trial(*args)


def run_ninja_curves(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    trials = 300 if full else _scaled(12, scale)
    rng = RandomStreams(1234 if seed is None else seed)

    # Every (point, trial) cell of both curves, jitters drawn up front
    # in trial order from the same named streams the serial loop used —
    # the flat task list then fans out without touching any RNG.
    points = [("spam", spam, 50 * MILLISECOND) for spam in (0, 100, 200)]
    points += [
        ("interval", 50, interval_ms * MILLISECOND)
        for interval_ms in (4, 8, 20, 40)
    ]
    tasks = []
    for _kind, spam, h_interval_ns in points:
        jitter_stream = rng.stream(f"j-{spam}-{h_interval_ns}")
        for trial in range(trials):
            jitter = int(
                jitter_stream.uniform(0, max(h_interval_ns, 20 * MILLISECOND))
            )
            tasks.append((trial, spam, 0, h_interval_ns, jitter))
    results = parallel_map(_ninja_cell, tasks)

    def rates(point_index):
        hits = [0, 0, 0]
        for result in results[point_index * trials : (point_index + 1) * trials]:
            for i, detected in enumerate(result):
                hits[i] += bool(detected)
        return [h / trials for h in hits]

    spam_rows = []
    for point_index, spam in enumerate((0, 100, 200)):
        o, _h, ht = rates(point_index)
        spam_rows.append(
            [f"+{spam} idle procs", f"{o * 100:.1f}%", f"{ht * 100:.1f}%"]
        )
    interval_rows = []
    for point_index, interval_ms in enumerate((4, 8, 20, 40)):
        _o, h, ht = rates(3 + point_index)
        interval_rows.append(
            [f"{interval_ms} ms", f"{h * 100:.1f}%", f"{ht * 100:.1f}%"]
        )
    out = format_table(
        ["spamming level", "O-Ninja (0s)", "HT-Ninja"],
        spam_rows,
        title=f"§VIII-C2 — O-Ninja under spamming ({trials} trials/point)",
    )
    out += "\n\n" + format_table(
        ["H-Ninja interval", "H-Ninja", "HT-Ninja"],
        interval_rows,
        title=f"§VIII-C2 — H-Ninja interval race ({trials} trials/point)",
    )
    return out


# ======================================================================
# Fig 7 — overhead grid
# ======================================================================
#: Fig 7 monitoring configurations: name -> auditor classes.
_FIG7_CONFIGS = (
    ("baseline", ()),
    ("GOSHD", (GuestOSHangDetector,)),
    ("HRKD", (HiddenRootkitDetector,)),
    ("HT-Ninja", (HTNinja,)),
    ("all", (GuestOSHangDetector, HiddenRootkitDetector, HTNinja)),
)


def _fig7_cell(args):
    classes, workload, trial_seed = args
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=trial_seed))
    testbed.boot()
    if classes:
        testbed.monitor([cls() for cls in classes])
    return run_microbench(testbed, workload)


def run_fig7(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    workloads = [
        "file-copy-1024", "disk-io", "dhrystone", "context-switch",
        "pipe-throughput", "syscall",
    ]
    if full:
        workloads = list(
            __import__(
                "repro.workloads.unixbench", fromlist=["MICROBENCHES"]
            ).MICROBENCHES
        )
    trial_seed = 42 if seed is None else seed
    keys = [
        (config_name, workload)
        for config_name, _classes in _FIG7_CONFIGS
        for workload in workloads
    ]
    cells = [
        (classes, workload, trial_seed)
        for _config_name, classes in _FIG7_CONFIGS
        for workload in workloads
    ]
    grid = dict(zip(keys, parallel_map(_fig7_cell, cells)))
    rows = []
    for workload in workloads:
        base = grid[("baseline", workload)]
        row = [workload, f"{base / 1e6:9.2f}"]
        for config_name, _classes in _FIG7_CONFIGS[1:]:
            pct = (grid[(config_name, workload)] - base) / base * 100
            row.append(f"{pct:6.1f}%")
        rows.append(row)
    return format_table(
        ["workload", "baseline(ms)", "GOSHD", "HRKD", "HT-Ninja", "ALL"],
        rows,
        title="Fig 7 — monitoring overhead",
    )


# ======================================================================
# Ablation + RHC
# ======================================================================
def run_unified_ablation(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    rows = []
    for workload in ("context-switch", "syscall"):
        timings = {}
        for mode in (None, "unified", "separate"):
            testbed = Testbed(
                TestbedConfig(
                    num_vcpus=2, seed=42 if seed is None else seed,
                    monitoring_mode=mode or "unified",
                )
            )
            testbed.boot()
            if mode is not None:
                testbed.monitor(
                    [GuestOSHangDetector(), HiddenRootkitDetector(), HTNinja()]
                )
            timings[mode] = run_microbench(testbed, workload)
        base = timings[None]
        rows.append(
            [
                workload,
                f"{(timings['unified'] - base) / base * 100:6.1f}%",
                f"{(timings['separate'] - base) / base * 100:6.1f}%",
            ]
        )
    return format_table(
        ["workload", "unified overhead", "separate overhead"],
        rows,
        title="Ablation — unified logging vs per-monitor pipelines",
    )


def run_rhc(
    scale: float = 1.0, full: bool = False, seed: Optional[int] = None
) -> str:
    rows = []
    for sample_every in (16, 64, 256):
        testbed = Testbed(
            TestbedConfig(
                num_vcpus=2, seed=5 if seed is None else seed,
                with_rhc=True, rhc_timeout_s=3,
            )
        )
        testbed.boot()
        testbed.multiplexer.rhc_sample_every = sample_every
        testbed.monitor([GuestOSHangDetector()])
        start_workload(testbed.kernel, "make-j2")
        testbed.run_s(5.0)
        false_alarm = testbed.rhc.alarmed
        kill_time = testbed.engine.clock.now
        testbed.kvm.detach_forwarder()
        while not testbed.rhc.alarmed and testbed.now_s < 60:
            testbed.run_ms(100)
        latency = (testbed.rhc.alerts[-1] - kill_time) / SECOND
        rows.append(
            [f"1/{sample_every}", "no" if not false_alarm else "YES",
             f"{latency:.1f}s"]
        )
    return format_table(
        ["EM sampling", "false alarm", "alarm latency"],
        rows,
        title="RHC liveness detection",
    )


#: name -> (runner, description)
EXPERIMENTS: Dict[str, tuple] = {
    "fig4": (run_fig4_fig5, "GOSHD coverage + latency (Figs 4 and 5)"),
    "fig5": (run_fig4_fig5, "alias of fig4 (same campaign)"),
    "table2": (run_table2, "HRKD vs the Table II rootkit zoo"),
    "table3": (run_table3, "/proc side channel on Ninja's interval"),
    "ninjas": (run_ninja_curves, "O/H/HT-Ninja detection probabilities"),
    "fig7": (run_fig7, "monitoring overhead grid"),
    "ablation": (run_unified_ablation, "unified vs separate logging"),
    "rhc": (run_rhc, "Remote Health Checker liveness"),
}


def run_experiment(
    name: str,
    scale: float = 1.0,
    full: bool = False,
    seed: Optional[int] = None,
) -> str:
    if name not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        )
    runner, _description = EXPERIMENTS[name]
    return runner(scale=scale, full=full, seed=seed)
