"""Seeded load generation: deterministic burst profiles + the client.

The generator answers "what does the monitoring service do under
heavy traffic?" reproducibly.  A *plan* is built offline: each stream
gets a recorded scenario trace as its event source and a seeded
arrival schedule — virtual timestamps produced by
:class:`~repro.sim.rng.RandomStreams`, so the same ``(profile, seed,
streams, rate)`` always stamps the same arrivals.  The client then
pushes the plan over the socket at whatever pace the wall clock and
credit window allow; pacing affects only *when* frames move, never
what the service computes, because every SLO figure keys on the
stamped arrivals.

Profiles
--------
* ``sustained`` — steady ``rate`` events/s with ±10 % jitter;
* ``ramp``     — rate climbing linearly from 0.25× to 2× ``rate``;
* ``spike``    — 0.5× ``rate`` background with a 40× burst through the
  middle fifth of the stream (the p99-under-burst workload the
  performance ledger tracks).
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.replay.format import Trace
from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    expect,
)
from repro.sim.rng import RandomStreams

PROFILES = ("sustained", "ramp", "spike")

DEFAULT_RATE = 2000.0
DEFAULT_SCENARIOS = ("exploit",)

#: How long a producer backs off after a ``slowdown`` frame (wall
#: seconds; transport-side only).
SLOWDOWN_SLEEP_S = 0.002


# ======================================================================
# Seeded arrival schedules
# ======================================================================
def _profile_rate(profile: str, rate: float, i: int, count: int) -> float:
    frac = i / max(1, count - 1)
    if profile == "sustained":
        return rate
    if profile == "ramp":
        return rate * (0.25 + 1.75 * frac)
    if profile == "spike":
        return rate * (40.0 if 0.4 <= frac < 0.6 else 0.5)
    raise ValueError(f"unknown profile {profile!r} (want one of {PROFILES})")


def arrival_offsets(
    profile: str, seed: int, stream_id: str, count: int, rate: float
) -> List[int]:
    """``count`` non-decreasing virtual arrival offsets (ns from 0)."""
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate!r}")
    streams = RandomStreams(seed)
    name = f"serve-load:{profile}:{stream_id}"
    offsets: List[int] = []
    t = 0
    for i in range(count):
        gap_ns = int(1e9 / _profile_rate(profile, rate, i, count))
        t += streams.jitter_ns(name, gap_ns, 0.1)
        offsets.append(t)
    return offsets


def build_plan(
    profile: str,
    seed: int,
    streams: int,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    rate: float = DEFAULT_RATE,
    config: Optional[Dict[str, Any]] = None,
    traces: Optional[Sequence[str]] = None,
) -> List[Dict[str, Any]]:
    """Build the per-stream specs a load run will push.

    Each spec is exactly the :func:`repro.serve.pipeline.run_stream_spec`
    input, so benchmarks can run a plan socket-free through the same
    code path the service drives.

    ``traces`` switches the event source from freshly-recorded
    scenarios to trace *files* — JSONL or btrace, sniffed per file and
    cycled across streams — so recorded (or converted) corpora can be
    replayed straight into the service.
    """
    from repro.replay.recorder import record_scenario

    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r} (want one of {PROFILES})")
    if streams < 1:
        raise ValueError(f"streams must be >= 1, got {streams}")
    sources: List[Trace] = []
    if traces:
        from repro.replay.btrace import load_any_trace

        sources = [load_any_trace(path) for path in traces]
    cache: Dict[str, Trace] = {}
    plan: List[Dict[str, Any]] = []
    for k in range(streams):
        if sources:
            trace = sources[k % len(sources)]
            scenario = trace.header.scenario
        else:
            scenario = scenarios[k % len(scenarios)]
            if scenario not in cache:
                cache[scenario] = record_scenario(scenario, seed=0).trace
            trace = cache[scenario]
        stream_id = f"{profile}-s{seed}-{k:03d}-{scenario}"
        offsets = arrival_offsets(
            profile, seed, stream_id, len(trace.records), rate
        )
        start_ns = trace.header.start_ns
        plan.append(
            {
                "stream": stream_id,
                "header": trace.header.to_record(),
                "records": trace.records,
                "arrivals": [start_ns + off for off in offsets],
                "end_ns": trace.header.end_ns,
                "config": dict(config) if config else None,
            }
        )
    return plan


# ======================================================================
# Result checking (the serve-smoke gate)
# ======================================================================
def check_payloads(payloads: List[Dict[str, Any]]) -> List[str]:
    """Assert the accounting identity on verdict payloads.

    Every offered event must be accounted for — admitted or dropped
    under a named reason (``offered == admitted + sum(dropped)``); a
    lossless stream must have reproduced its recorded live verdicts;
    and the latency summary must be populated.  Returns problems
    (empty = pass).
    """
    problems: List[str] = []
    for payload in payloads:
        stream = payload.get("stream", "?")
        offered = payload.get("offered", 0)
        admitted = payload.get("admitted", 0)
        dropped = payload.get("dropped") or {}
        explained = admitted + sum(dropped.values())
        if offered != explained:
            problems.append(
                f"{stream}: {offered - explained} unexplained drop(s) "
                f"(offered={offered} admitted={admitted} dropped={dropped})"
            )
        if payload.get("reproduced") is False:
            problems.append(
                f"{stream}: verdicts diverged from the recorded live run "
                f"with no drops to explain it"
            )
        latency = payload.get("latency") or {}
        if admitted > 0 and latency.get("p99_ns") is None:
            problems.append(f"{stream}: missing p99 latency")
    return problems


# ======================================================================
# The asyncio client
# ======================================================================
class _ClientStream:
    __slots__ = ("sem", "acked", "slow")

    def __init__(self) -> None:
        self.sem = asyncio.Semaphore(0)
        self.acked = asyncio.Event()
        self.slow = False

    def grant(self, n: int) -> None:
        # asyncio.Semaphore.release() takes no count argument.
        for _ in range(max(0, int(n))):
            self.sem.release()


async def run_load(
    socket_path: str,
    plan: List[Dict[str, Any]],
    export_scope: Optional[str] = None,
    shutdown: bool = False,
    honor_slowdown: bool = True,
) -> Dict[str, Any]:
    """Push a plan to a running service; gather verdicts (and export).

    Returns ``{"verdicts": [...sorted by stream id...],
    "export": [...] or None, "slowdowns": n}``.
    """
    reader, writer = await asyncio.open_unix_connection(
        socket_path, limit=MAX_FRAME_BYTES
    )
    write_lock = asyncio.Lock()

    async def send(frame: Dict[str, Any]) -> None:
        async with write_lock:
            writer.write(encode_frame(frame))
            await writer.drain()

    states: Dict[str, _ClientStream] = {
        spec["stream"]: _ClientStream() for spec in plan
    }
    verdicts: Dict[str, Dict[str, Any]] = {}
    export_result: List[Optional[List[str]]] = [None]
    slowdowns_seen = [0]
    error: List[str] = []
    all_verdicts = asyncio.Event()
    export_done = asyncio.Event()
    bye = asyncio.Event()

    await send({"kind": "hello", "version": PROTOCOL_VERSION})
    expect(decode_frame(await reader.readline()), "welcome")

    async def route() -> None:
        while True:
            line = await reader.readline()
            if not line:
                break
            frame = decode_frame(line)
            kind = frame.get("kind")
            if kind == "stream-ack":
                state = states[frame["stream"]]
                state.grant(frame.get("credit", 1))
                state.acked.set()
            elif kind == "credit":
                states[frame["stream"]].grant(frame.get("n", 1))
            elif kind == "slowdown":
                slowdowns_seen[0] += 1
                states[frame["stream"]].slow = True
            elif kind == "verdict":
                payload = {k: v for k, v in frame.items() if k != "kind"}
                verdicts[frame["stream"]] = payload
                if len(verdicts) == len(plan):
                    all_verdicts.set()
            elif kind == "export-result":
                export_result[0] = list(frame.get("lines") or [])
                export_done.set()
            elif kind == "bye":
                bye.set()
                break
            elif kind == "error":
                error.append(str(frame.get("message")))
                break
            else:
                error.append(f"unexpected frame kind {kind!r}")
                break
        # Unblock any waiter; errors are re-raised below.
        all_verdicts.set()
        export_done.set()
        bye.set()
        for state in states.values():
            state.acked.set()
            state.grant(1 << 16)

    async def produce(spec: Dict[str, Any]) -> None:
        stream_id = spec["stream"]
        state = states[stream_id]
        open_frame: Dict[str, Any] = {
            "kind": "stream-open",
            "stream": stream_id,
            "header": spec["header"],
        }
        if spec.get("config"):
            open_frame["config"] = spec["config"]
        await send(open_frame)
        await state.acked.wait()
        arrivals = spec.get("arrivals")
        for i, record in enumerate(spec["records"]):
            if error:
                return
            await state.sem.acquire()
            if honor_slowdown and state.slow:
                state.slow = False
                await asyncio.sleep(SLOWDOWN_SLEEP_S)
            frame: Dict[str, Any] = {
                "kind": "rec",
                "stream": stream_id,
                "body": record,
            }
            if arrivals is not None and i < len(arrivals):
                frame["arrival_ns"] = arrivals[i]
            await send(frame)
        close_frame: Dict[str, Any] = {
            "kind": "stream-close",
            "stream": stream_id,
            "sent": len(spec["records"]),
        }
        if spec.get("end_ns") is not None:
            close_frame["end_ns"] = spec["end_ns"]
        await send(close_frame)

    router = asyncio.ensure_future(route())
    try:
        await asyncio.gather(*(produce(spec) for spec in plan))
        await all_verdicts.wait()
        if not error and export_scope is not None:
            await send({"kind": "export", "scope": export_scope})
            await export_done.wait()
        if not error and shutdown:
            await send({"kind": "shutdown"})
            await bye.wait()
    except ConnectionError:
        # A peer hangup mid-load falls through to the accounting below:
        # either the router captured an error frame, or the unreported
        # stream count says what was lost.
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass
        router.cancel()
        try:
            await router
        except (asyncio.CancelledError, Exception):  # noqa: BLE001
            pass
    if error:
        raise ProtocolError(error[0])
    if len(verdicts) != len(plan):
        raise ProtocolError(
            f"connection closed with {len(plan) - len(verdicts)} "
            f"stream(s) unreported"
        )
    return {
        "verdicts": [verdicts[s] for s in sorted(verdicts)],
        "export": export_result[0],
        "slowdowns": slowdowns_seen[0],
    }
