"""Integer-nanosecond virtual clock.

All simulated time in this project is expressed in integer nanoseconds.
Floats are never used for time: integer arithmetic keeps long campaigns
deterministic and free of accumulation error.
"""

from __future__ import annotations

from repro.errors import SimulationError

#: Convenience unit constants (nanoseconds).
MICROSECOND = 1_000
MILLISECOND = 1_000_000
SECOND = 1_000_000_000


class VirtualClock:
    """Monotonic simulated clock.

    Only the simulation :class:`~repro.sim.engine.Engine` is expected to
    advance the clock; everything else reads ``now``.
    """

    def __init__(self, start_ns: int = 0) -> None:
        if start_ns < 0:
            raise SimulationError("clock cannot start before t=0")
        self._now_ns = int(start_ns)

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds (for reporting only)."""
        return self._now_ns / SECOND

    def advance_to(self, t_ns: int) -> None:
        """Move the clock forward to ``t_ns``.

        Raises :class:`SimulationError` on any attempt to move backwards,
        which would indicate a broken event queue.
        """
        if t_ns < self._now_ns:
            raise SimulationError(
                f"clock moved backwards: {self._now_ns} -> {t_ns}"
            )
        self._now_ns = int(t_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now_ns}ns)"


def format_ns(t_ns: int) -> str:
    """Render a nanosecond timestamp as a human-friendly string."""
    if t_ns >= SECOND:
        return f"{t_ns / SECOND:.6f}s"
    if t_ns >= MILLISECOND:
        return f"{t_ns / MILLISECOND:.3f}ms"
    if t_ns >= MICROSECOND:
        return f"{t_ns / MICROSECOND:.3f}us"
    return f"{t_ns}ns"
