#!/usr/bin/env python3
"""Quickstart: boot a monitored VM and watch HyperTap's event stream.

Builds the full stack — simulated HAV machine, KVM-like hypervisor,
guest kernel — attaches the paper's three auditors over one unified
logging channel, runs a mixed workload, and prints what the monitors
saw.

Run:  python examples/quickstart.py
"""

from repro import Testbed, TestbedConfig
from repro.analysis.tables import format_table
from repro.auditors import GuestOSHangDetector, HiddenRootkitDetector, HTNinja
from repro.vmi import KernelSymbolMap, OsInvariantView
from repro.workloads import start_workload


def main() -> None:
    print("== HyperTap quickstart ==")
    print("booting a 2-vCPU / 1 GiB guest ...")
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=2014))
    testbed.boot()

    goshd = GuestOSHangDetector()
    hrkd = HiddenRootkitDetector()
    ninja = HTNinja()
    hypertap = testbed.monitor([goshd, hrkd, ninja])
    hrkd.set_vmi_view(
        OsInvariantView(
            testbed.machine, KernelSymbolMap.from_kernel(testbed.kernel)
        )
    )
    print("HyperTap attached: GOSHD + HRKD + HT-Ninja on one channel\n")

    print("running `make -j2` and an HTTP server for 10 simulated seconds ...")
    start_workload(testbed.kernel, "make-j2")
    start_workload(testbed.kernel, "http")
    testbed.run_s(10.0)

    stats = hypertap.stats()
    rows = [[key, value] for key, value in sorted(stats.items())]
    print(format_table(["metric", "count"], rows, title="\nmonitoring stats"))

    print(
        format_table(
            ["vCPU", "context switches", "hung?"],
            [
                [cpu.index, cpu.context_switches, cpu.index in goshd.hung_vcpus]
                for cpu in testbed.kernel.cpus
            ],
            title="\nguest scheduler health (GOSHD view)",
        )
    )

    report = hrkd.scan_against(testbed.kernel.guest_view_pids(), "guest-ps")
    print(
        f"\nHRKD cross-view scan: trusted={len(report.trusted_pids)} pids, "
        f"guest reports {len(report.untrusted_pids)}, "
        f"hidden={sorted(report.hidden_pids) or 'none'}"
    )
    print(f"HT-Ninja checks performed: {ninja.checks_performed}, "
          f"escalations detected: {len(ninja.detections)}")
    print(f"\nguest executed {testbed.kernel.syscall_count} syscalls; "
          f"hypervisor handled {testbed.kvm.handled_exits} VM exits")
    print("done.")


if __name__ == "__main__":
    main()
