"""Event Forwarder (EF): the in-KVM half of the unified logging channel.

The EF forwards VM Exit events plus the saved guest hardware state to
the Event Multiplexer.  Forwarding is non-blocking by default — the
vCPU pays a small enqueue cost and resumes — but subscribed *blocking*
auditors make the logging phase synchronous for the events they watch
(the paper's "an auditor may pause its target VM during analysis").

Cost accounting implements the ablation of DESIGN.md §5: in
``unified`` mode a shared event is paid for once regardless of how many
monitors consume it; in ``separate`` mode (modelling one trap pipeline
per monitor) every interested monitor charges its own exit-sized cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hw.cpu import VCPU
from repro.hw.exits import VMExit
from repro.obs.metrics import Counter

if TYPE_CHECKING:  # pragma: no cover
    from repro.hypervisor.event_multiplexer import EventMultiplexer


class EventForwarder:
    """Forwards relevant exits from the hypervisor to the EM."""

    def __init__(self, multiplexer: "EventMultiplexer", mode: str = "unified"):
        if mode not in ("unified", "separate"):
            raise ConfigurationError(f"unknown forwarding mode {mode!r}")
        self.multiplexer = multiplexer
        self.mode = mode
        self.forwarded = 0
        self.suppressed = 0
        #: Per-(vm, reason) accounting rides the multiplexer's registry;
        #: handles are cached here (forwarders are recreated per attach,
        #: so the cache cannot outlive its rows).
        self._cells: dict = {}

    @property
    def seen(self) -> int:
        """Exits observed by the EF: ``forwarded + suppressed``.

        Conservation invariant: every exit the hypervisor handles while
        this forwarder is attached shows up in exactly one of the two
        counters, so ``seen`` must equal the hypervisor's handled-exit
        count — the check the hut self-consistency oracle enforces.
        """
        return self.forwarded + self.suppressed

    def _cell(self, name: str, vm_id: str, reason) -> Counter:
        key = (name, vm_id, reason)
        cell = self._cells.get(key)
        if cell is None:
            cell = self.multiplexer.metrics.counter(
                name, vm=vm_id, reason=reason.value
            )
            self._cells[key] = cell
        return cell

    def on_vm_exit(self, vm_id: str, vcpu: VCPU, exit_event: VMExit) -> None:
        costs = vcpu.machine.costs
        interested = self.multiplexer.interest_count(vm_id, exit_event.reason)
        if interested == 0:
            self.suppressed += 1
            self._cell("ef.suppressed", vm_id, exit_event.reason).value += 1
            return
        if self.mode == "unified":
            vcpu.charge(costs.ef_forward_ns + costs.em_enqueue_ns)
        else:
            # Separate pipelines: each monitor traps the event itself,
            # paying a full exit roundtrip + forward per monitor beyond
            # the first (whose exit already happened).
            extra = interested - 1
            vcpu.charge(
                interested * (costs.ef_forward_ns + costs.em_enqueue_ns)
                + extra * costs.vm_exit_roundtrip_ns
            )
        self.forwarded += 1
        self._cell("ef.forwarded", vm_id, exit_event.reason).value += 1
        self.multiplexer.metrics.host_hop("ef", exit_event.time_ns)
        self.multiplexer.submit(vm_id, vcpu, exit_event)
