"""Tests for the extended page tables."""

import pytest

from repro.hw.ept import EptViolationSignal, ExtendedPageTable
from repro.hw.exits import MemAccess
from repro.hw.memory import PAGE_SIZE


@pytest.fixture
def ept():
    return ExtendedPageTable()


class TestEpt:
    def test_identity_default(self, ept):
        assert ept.translate(0x5123, MemAccess.READ) == 0x5123

    def test_write_protection(self, ept):
        ept.set_permissions(0x5000, write=False)
        with pytest.raises(EptViolationSignal) as exc:
            ept.translate(0x5010, MemAccess.WRITE)
        assert exc.value.gpa == 0x5010
        assert exc.value.access is MemAccess.WRITE

    def test_write_protection_still_readable(self, ept):
        ept.set_permissions(0x5000, write=False)
        assert ept.translate(0x5010, MemAccess.READ) == 0x5010

    def test_execute_protection(self, ept):
        ept.set_permissions(0x8000, execute=False)
        with pytest.raises(EptViolationSignal):
            ept.translate(0x8000, MemAccess.EXECUTE)
        assert ept.translate(0x8000, MemAccess.WRITE) == 0x8000

    def test_protection_is_page_granular(self, ept):
        ept.set_permissions(0x5000, write=False)
        with pytest.raises(EptViolationSignal):
            ept.translate(0x5000 + PAGE_SIZE - 1, MemAccess.WRITE)
        # next page untouched
        assert ept.translate(0x5000 + PAGE_SIZE, MemAccess.WRITE)

    def test_restore_permissions(self, ept):
        ept.set_permissions(0x5000, write=False)
        ept.set_permissions(0x5000, write=True)
        assert ept.translate(0x5000, MemAccess.WRITE) == 0x5000

    def test_nofault_bypasses_permissions(self, ept):
        """The hypervisor's emulation path ignores narrowed perms."""
        ept.set_permissions(0x5000, write=False, read=False, execute=False)
        assert ept.translate_nofault(0x5042) == 0x5042

    def test_violation_counter(self, ept):
        ept.set_permissions(0, write=False)
        for _ in range(3):
            with pytest.raises(EptViolationSignal):
                ept.translate(0, MemAccess.WRITE)
        assert ept.violations == 3

    def test_remap(self, ept):
        ept.remap(0x1000, 0x99)
        assert ept.translate(0x1008, MemAccess.READ) == (0x99 << 12) | 8

    def test_permissions_query(self, ept):
        ept.set_permissions(0x3000, write=False)
        assert ept.permissions(0x3000) == (True, False, True)
