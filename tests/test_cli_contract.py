"""The repo-wide CLI error contract, enforced as a regression test.

Every user-facing CLI (``repro.obs``, ``repro.replay``, ``repro.serve``)
must turn bad input — missing files, malformed traces, dead sockets,
unknown names — into a **one-line** ``error:`` message on stderr and
exit code 2.  Tracebacks are for bugs, not for typos.

Also covers the stdin conveniences: ``obs report``/``top``/``diff``
accept ``-`` (plain or gzipped), so serve and replay output pipes
straight into triage without temp files.
"""

from __future__ import annotations

import gzip
import io
import sys

import pytest

from repro.obs.__main__ import main as obs_main
from repro.replay.__main__ import main as replay_main
from repro.serve.__main__ import main as serve_main

MAINS = {"obs": obs_main, "replay": replay_main, "serve": serve_main}

BAD_INVOCATIONS = [
    ("obs", ["report", "no/such/trace.jsonl"]),
    ("obs", ["top", "no/such/export.jsonl"]),
    ("obs", ["diff", "no/such/a.jsonl", "no/such/b.jsonl"]),
    ("obs", ["trace", "export", "no/such/trace.jsonl"]),
    ("obs", ["trace", "critical-path", "no/such/trace.jsonl"]),
    ("obs", ["trace", "slice", "no/such/trace.jsonl", "--vm", "vm0"]),
    ("replay", ["replay", "no/such/trace.jsonl"]),
    ("replay", ["replay", "--profile", "no/such/trace.jsonl"]),
    ("serve", ["load", "--socket", "no/such/serve.sock"]),
    ("serve", ["load", "--scenarios", "not-a-scenario"]),
    # NB: the wall-profiler flag on `serve load` is --prof (--profile
    # selects the burst shape there); both spellings must honor the
    # error contract.
    ("serve", ["load", "--prof", "--socket", "no/such/serve.sock"]),
]


def run_cli(which, argv, capsys):
    code = MAINS[which](argv)
    captured = capsys.readouterr()
    return code, captured


def feed_stdin(monkeypatch, data: bytes) -> None:
    stream = io.TextIOWrapper(io.BytesIO(data), encoding="utf-8")
    monkeypatch.setattr(sys, "stdin", stream)


@pytest.fixture(scope="module")
def golden_trace_text():
    with open("tests/data/golden_exploit.jsonl", encoding="utf-8") as fh:
        return fh.read()


class TestErrorContract:
    @pytest.mark.parametrize("which,argv", BAD_INVOCATIONS)
    def test_bad_input_is_one_line_and_exit_2(self, which, argv, capsys):
        code, captured = run_cli(which, argv, capsys)
        assert code == 2
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")
        assert "Traceback" not in captured.err

    def test_malformed_trace_not_just_missing_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("this is not a trace\n", encoding="utf-8")
        for which, argv in (
            ("replay", ["replay", str(bogus)]),
            ("obs", ["report", str(bogus)]),
        ):
            code, captured = run_cli(which, argv, capsys)
            assert code == 2, f"{which} {argv}"
            assert captured.err.startswith("error:")
            assert "Traceback" not in captured.err

    def test_malformed_stdin_honors_the_same_contract(self, monkeypatch, capsys):
        feed_stdin(monkeypatch, b"not a trace, not an export\n")
        code, captured = run_cli("obs", ["top", "-"], capsys)
        assert code == 2
        assert captured.err.startswith("error:")


class TestStdinSupport:
    def test_report_from_stdin_matches_report_from_path(
        self, monkeypatch, capsys, golden_trace_text
    ):
        _, from_path = run_cli(
            "obs", ["report", "tests/data/golden_exploit.jsonl"], capsys
        )
        feed_stdin(monkeypatch, golden_trace_text.encode("utf-8"))
        code, from_stdin = run_cli("obs", ["report", "-"], capsys)
        assert code == 0
        assert from_stdin.out == from_path.out

    def test_gzipped_stdin_is_sniffed(
        self, monkeypatch, capsys, golden_trace_text
    ):
        _, from_path = run_cli(
            "obs", ["report", "tests/data/golden_exploit.jsonl"], capsys
        )
        feed_stdin(monkeypatch, gzip.compress(golden_trace_text.encode("utf-8")))
        code, from_stdin = run_cli("obs", ["report", "-"], capsys)
        assert code == 0
        assert from_stdin.out == from_path.out

    def test_top_reads_an_export_from_stdin(self, monkeypatch, capsys):
        with open("tests/data/golden_exploit_obs.jsonl", "rb") as fh:
            feed_stdin(monkeypatch, fh.read())
        code, captured = run_cli("obs", ["top", "-"], capsys)
        assert code == 0
        assert "flow.published" in captured.out

    def test_top_reads_a_trace_from_stdin(
        self, monkeypatch, capsys, golden_trace_text
    ):
        # First-line sniffing: a trace header means "replay it first".
        feed_stdin(monkeypatch, golden_trace_text.encode("utf-8"))
        code, captured = run_cli("obs", ["top", "-"], capsys)
        assert code == 0
        assert "flow.published" in captured.out

    def test_diff_accepts_stdin_for_one_side(self, monkeypatch, capsys):
        with open("tests/data/golden_exploit_obs.jsonl", "rb") as fh:
            feed_stdin(monkeypatch, fh.read())
        code, captured = run_cli(
            "obs", ["diff", "tests/data/golden_exploit_obs.jsonl", "-"], capsys
        )
        assert code == 0
        assert "identical" in captured.out


@pytest.fixture(scope="module")
def golden_btrace(tmp_path_factory):
    """The golden exploit trace, converted to a btrace container."""
    path = str(tmp_path_factory.mktemp("btr") / "golden_exploit.btr")
    code = replay_main(["convert", "tests/data/golden_exploit.jsonl", path])
    assert code == 0
    return path


class TestBtraceSupport:
    """Both trace formats must be interchangeable at every CLI mouth:
    the magic bytes decide, never the extension or the flag soup."""

    def test_convert_round_trip_via_cli(self, tmp_path, capsys, golden_btrace):
        back = str(tmp_path / "back.jsonl")
        code, captured = run_cli("replay", ["convert", golden_btrace, back], capsys)
        assert code == 0
        assert "jsonl" in captured.out
        with open("tests/data/golden_exploit.jsonl", encoding="utf-8") as fh:
            original = fh.read()
        with open(back, encoding="utf-8") as fh:
            assert fh.read() == original

    def test_replay_accepts_btrace(self, capsys, golden_btrace):
        _, from_jsonl = run_cli(
            "replay", ["replay", "tests/data/golden_exploit.jsonl"], capsys
        )
        code, from_btrace = run_cli("replay", ["replay", golden_btrace], capsys)
        assert code == 0
        # Wall-clock and path lines differ; the verdict block must not.
        verdicts = lambda text: text[text.index("replay verdicts:"):]  # noqa: E731
        assert verdicts(from_btrace.out) == verdicts(from_jsonl.out)
        assert "REPRODUCED" in from_btrace.out

    def test_fuzz_accepts_btrace(self, capsys, golden_btrace):
        code, captured = run_cli(
            "replay",
            ["fuzz", golden_btrace, "--n", "2", "--mutations", "1"],
            capsys,
        )
        assert code == 0
        assert "auditor crashes:      0" in captured.out

    def test_obs_report_btrace_matches_jsonl(self, capsys, golden_btrace):
        _, from_jsonl = run_cli(
            "obs", ["report", "tests/data/golden_exploit.jsonl"], capsys
        )
        code, from_btrace = run_cli("obs", ["report", golden_btrace], capsys)
        assert code == 0
        assert from_btrace.out == from_jsonl.out

    def test_obs_report_btrace_on_stdin(
        self, monkeypatch, capsys, golden_btrace
    ):
        _, from_path = run_cli("obs", ["report", golden_btrace], capsys)
        with open(golden_btrace, "rb") as fh:
            feed_stdin(monkeypatch, fh.read())
        code, from_stdin = run_cli("obs", ["report", "-"], capsys)
        assert code == 0
        assert from_stdin.out == from_path.out

    def test_obs_top_btrace_on_stdin(self, monkeypatch, capsys, golden_btrace):
        with open(golden_btrace, "rb") as fh:
            feed_stdin(monkeypatch, fh.read())
        code, captured = run_cli("obs", ["top", "-"], capsys)
        assert code == 0
        assert "flow.published" in captured.out

    def test_obs_diff_across_formats_is_identical(self, capsys, golden_btrace):
        code, captured = run_cli(
            "obs",
            ["diff", "tests/data/golden_exploit.jsonl", golden_btrace],
            capsys,
        )
        assert code == 0
        assert "identical" in captured.out

    def test_convert_missing_source_honors_error_contract(self, capsys):
        code, captured = run_cli(
            "replay", ["convert", "no/such/trace.btr", "out.jsonl"], capsys
        )
        assert code == 2
        err_lines = [ln for ln in captured.err.splitlines() if ln.strip()]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")

    def test_truncated_btrace_honors_error_contract(
        self, tmp_path, capsys, golden_btrace
    ):
        with open(golden_btrace, "rb") as fh:
            data = fh.read()
        broken = tmp_path / "broken.btr"
        broken.write_bytes(data[: len(data) // 2])
        for which, argv in (
            ("replay", ["replay", str(broken)]),
            ("obs", ["report", str(broken)]),
        ):
            code, captured = run_cli(which, argv, capsys)
            assert code == 2, f"{which} {argv}"
            assert captured.err.startswith("error:")
            assert "Traceback" not in captured.err


class TestTraceAndProfileEntryPoints:
    """The PR-10 mouths: ``obs trace`` and the wall-profiler flags."""

    def test_trace_export_btrace_matches_jsonl(self, capsys, golden_btrace):
        _, from_jsonl = run_cli(
            "obs", ["trace", "export", "tests/data/golden_exploit.jsonl"], capsys
        )
        code, from_btrace = run_cli(
            "obs", ["trace", "export", golden_btrace], capsys
        )
        assert code == 0
        assert from_btrace.out == from_jsonl.out

    def test_trace_export_perfetto_is_json(self, capsys):
        import json

        code, captured = run_cli(
            "obs",
            ["trace", "export", "tests/data/golden_exploit.jsonl",
             "--format", "perfetto"],
            capsys,
        )
        assert code == 0
        doc = json.loads(captured.out)
        assert doc["displayTimeUnit"] == "ns"
        assert doc["traceEvents"]

    def test_trace_critical_path_attributes_stages(self, capsys):
        code, captured = run_cli(
            "obs",
            ["trace", "critical-path", "tests/data/golden_exploit.jsonl"],
            capsys,
        )
        assert code == 0
        assert "per-stage attribution" in captured.out
        assert "deliver" in captured.out

    def test_trace_slice_filters_by_trace_id(self, capsys):
        code, captured = run_cli(
            "obs",
            ["trace", "slice", "tests/data/golden_exploit.jsonl",
             "--trace-id", "vm0:0"],
            capsys,
        )
        assert code == 0
        lines = [ln for ln in captured.out.splitlines() if ln.strip()]
        assert len(lines) == 1
        assert '"trace": "vm0:0"' in lines[0]

    def test_replay_profile_keeps_stdout_contract(self, capsys):
        # --profile writes its breakdown to stderr only: the stdout
        # verdict block must stay byte-identical to an unprofiled run.
        _, plain = run_cli(
            "replay", ["replay", "tests/data/golden_exploit.jsonl"], capsys
        )
        code, profiled = run_cli(
            "replay",
            ["replay", "--profile", "tests/data/golden_exploit.jsonl"],
            capsys,
        )
        assert code == 0
        verdicts = lambda text: text[text.index("replay verdicts:"):]  # noqa: E731
        assert verdicts(profiled.out) == verdicts(plain.out)
        assert "profile (wall breakdown):" in profiled.err
        assert "profile (collapsed stacks):" in profiled.err
        assert "replay;run" in profiled.err
