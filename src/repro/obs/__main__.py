"""``python -m repro.obs`` — report, top and diff over pipeline metrics.

Typical uses::

    # Replay a trace and export its pipeline metrics as JSONL
    python -m repro.obs report tests/data/golden_exploit.jsonl

    # Same (scenario, seed) measured live vs from its trace — these
    # two commands emit byte-identical output:
    python -m repro.obs report --scenario exploit --seed 0 --source live
    python -m repro.obs report --scenario exploit --seed 0 --source replay

    # Merge several seeds (fans across REPRO_JOBS, merged in seed order)
    python -m repro.obs report --scenario hang --seeds 0,1,2 --jobs 4

    # Largest counters; differences between two exports (or traces)
    python -m repro.obs top tests/data/golden_exploit.jsonl
    python -m repro.obs diff baseline_obs.jsonl mutated_obs.jsonl

    # ``-`` reads stdin (trace or export, plain or gzipped), so serve
    # output pipes straight into triage without temp files:
    python -m repro.serve load ... --export | python -m repro.obs top -

``diff`` exits 1 when the exports differ — fuzz triage keys on that.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import TraceFormatError
from repro.obs.metrics import SCOPES
from repro.obs.report import (
    collect_seeds,
    collect_trace,
    diff_rows,
    export_lines,
    rows_for_path,
    top_rows,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Deterministic pipeline telemetry: report, top, diff.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="export pipeline metrics as deterministic JSONL"
    )
    report.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace file to replay ('-' reads the trace from stdin)",
    )
    report.add_argument("--scenario", default=None, help="named scenario")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seeds, merged in order (overrides --seed)",
    )
    report.add_argument(
        "--source",
        choices=("live", "replay"),
        default="replay",
        help="measure the live pipeline or a replay of its trace",
    )
    report.add_argument(
        "--scope",
        choices=SCOPES,
        default="pipeline",
        help="metric scope to export (default: pipeline)",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --seeds (default: REPRO_JOBS)",
    )

    top = sub.add_parser("top", help="largest counters in an export/trace")
    top.add_argument(
        "path", help="metrics export (JSONL) or trace file ('-' for stdin)"
    )
    top.add_argument("-n", "--limit", type=int, default=10)
    top.add_argument("--scope", choices=SCOPES, default="pipeline")

    diff = sub.add_parser(
        "diff", help="compare two exports (or traces); exit 1 on differences"
    )
    diff.add_argument("a", help="first export or trace ('-' for stdin)")
    diff.add_argument("b", help="second export or trace ('-' for stdin)")
    diff.add_argument("--scope", choices=SCOPES, default="pipeline")
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace is not None:
        snapshot = collect_trace(args.trace)
    elif args.scenario is not None:
        seeds = (
            [int(s) for s in args.seeds.split(",") if s.strip()]
            if args.seeds is not None
            else [args.seed]
        )
        snapshot = collect_seeds(
            args.scenario, seeds, source=args.source, jobs=args.jobs
        )
    else:
        print(
            "report: pass a trace path or --scenario NAME", file=sys.stderr
        )
        return 2
    for line in export_lines(snapshot, scope=args.scope):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    rows = rows_for_path(args.path, scope=args.scope)
    for value, label in top_rows(rows, limit=args.limit):
        print(f"{value:>12,}  {label}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = rows_for_path(args.a, scope=args.scope)
    b = rows_for_path(args.b, scope=args.scope)
    differences = diff_rows(a, b)
    for line in differences:
        print(line)
    if differences:
        print(f"{len(differences)} difference(s)", file=sys.stderr)
        return 1
    print("exports are identical")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "top":
            return _cmd_top(args)
        return _cmd_diff(args)
    except BrokenPipeError:
        # Downstream consumer (head, grep -q) closed the pipe early.
        sys.stderr.close()
        return 0
    except (TraceFormatError, OSError) as exc:
        # Same graceful contract as python -m repro.replay: bad input
        # is a one-line error and exit 2, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
