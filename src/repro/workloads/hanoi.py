"""Tower of Hanoi: the CPU-bound single-task workload.

The solver is genuine (it computes the actual move sequence); each move
costs simulated CPU time, and every 32 moves the program prints a
progress line — the syscall mix a terminal Hanoi program has.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.guest.programs import GuestContext

#: Simulated CPU cost per move.
MOVE_COST_NS = 40_000


def hanoi_moves(n: int, src: int = 0, dst: int = 2, via: int = 1
                ) -> Iterator[Tuple[int, int]]:
    """The classic recursion, yielded iteratively (explicit stack)."""
    stack = [(n, src, dst, via, False)]
    while stack:
        disks, s, d, v, expanded = stack.pop()
        if disks == 0:
            continue
        if disks == 1:
            yield (s, d)
            continue
        if expanded:
            yield (s, d)
            continue
        # post-order: solve n-1 to via, move largest, solve n-1 to dst
        stack.append((disks - 1, v, d, s, False))
        stack.append((disks, s, d, v, True))
        stack.append((disks - 1, s, v, d, False))


def make_hanoi(disks: int = 14, forever: bool = True):
    """Program factory; 14 disks = 16383 moves per round (~0.7 s)."""

    def _program(ctx: GuestContext):
        while True:
            moves = 0
            batch = 0
            for _src, _dst in hanoi_moves(disks):
                moves += 1
                batch += 1
                if batch == 8:  # charge CPU in 8-move batches
                    yield ctx.compute(MOVE_COST_NS * batch)
                    batch = 0
                if moves % 32 == 0:
                    yield ctx.sys_write(1, 24)
            if batch:
                yield ctx.compute(MOVE_COST_NS * batch)
            yield ctx.sys_write(1, 64)  # "solved in N moves"
            if not forever:
                yield ctx.exit(0)

    return _program
