"""Tests for the HyperTap facade: modes, lifecycle, control interface."""

import pytest

from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.errors import ConfigurationError, SimulationError
from repro.harness import Testbed, TestbedConfig


class SwitchWatcher(Auditor):
    name = "switch-watcher"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        pass


class SyscallWatcher(Auditor):
    name = "syscall-watcher"
    subscriptions = {EventType.SYSCALL}

    def audit(self, event):
        pass


def busy(ctx):
    while True:
        yield ctx.compute(200_000)
        yield ctx.sys_write(1, 8)


class TestLifecycle:
    def test_attach_requires_auditors(self, testbed):
        from repro.core.hypertap import HyperTap

        hypertap = HyperTap(testbed.machine, testbed.kvm)
        with pytest.raises(ConfigurationError):
            hypertap.attach()

    def test_double_attach_rejected(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        with pytest.raises(SimulationError):
            hypertap.attach()

    def test_register_after_attach_rejected(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        with pytest.raises(SimulationError):
            hypertap.register_auditor(SyscallWatcher())

    def test_detach_stops_events(self, testbed):
        watcher = SwitchWatcher()
        hypertap = testbed.monitor([watcher])
        testbed.kernel.spawn_process(busy, "b", uid=1000)
        testbed.run_s(0.5)
        seen = sum(watcher.events_seen.values())
        assert seen > 0
        hypertap.detach()
        testbed.run_s(1.0)
        assert sum(watcher.events_seen.values()) == seen

    def test_detach_disables_trapping(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        testbed.run_s(0.2)
        hypertap.detach()
        for vcpu in testbed.machine.vcpus:
            assert not vcpu.vmcs.controls.cr3_load_exiting

    def test_stats(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        testbed.run_s(1.0)
        stats = hypertap.stats()
        assert stats["exits_handled"] > 0
        assert stats["events_delivered"] > 0
        assert stats.get("published_thread_switch", 0) > 0


class TestPauseResume:
    def test_pause_freezes_guest(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        testbed.kernel.spawn_process(busy, "b", uid=1000)
        testbed.run_s(0.5)
        hypertap.pause_vm()
        switches = [c.context_switches for c in testbed.kernel.cpus]
        syscalls = testbed.kernel.syscall_count
        testbed.run_s(2.0)
        assert [c.context_switches for c in testbed.kernel.cpus] == switches
        assert testbed.kernel.syscall_count == syscalls

    def test_resume_continues(self, testbed):
        hypertap = testbed.monitor([SwitchWatcher()])
        testbed.kernel.spawn_process(busy, "b", uid=1000)
        testbed.run_s(0.5)
        hypertap.pause_vm()
        testbed.run_s(1.0)
        hypertap.resume_vm()
        syscalls = testbed.kernel.syscall_count
        testbed.run_s(1.0)
        assert testbed.kernel.syscall_count > syscalls


class TestUnifiedVsSeparate:
    """The DESIGN.md §5 ablation at unit scale: shared events cost the
    guest once in unified mode, once *per monitor* in separate mode."""

    def _run(self, mode):
        testbed = Testbed(
            TestbedConfig(num_vcpus=2, seed=7, monitoring_mode=mode)
        )
        testbed.boot()
        # Two auditors sharing the THREAD_SWITCH event stream.
        testbed.monitor([SwitchWatcher(), SwitchWatcher()])
        from repro.workloads.unixbench import run_microbench

        return run_microbench(
            testbed, "context-switch", overrides={"iterations": 300}
        )

    def test_separate_mode_slower(self):
        unified = self._run("unified")
        separate = self._run("separate")
        assert separate > unified

    def test_bad_mode_rejected(self, testbed):
        from repro.core.hypertap import HyperTap

        with pytest.raises(ConfigurationError):
            HyperTap(testbed.machine, testbed.kvm, mode="psychic")

    def test_separate_mode_still_delivers_to_all(self):
        testbed = Testbed(
            TestbedConfig(num_vcpus=2, seed=7, monitoring_mode="separate")
        )
        testbed.boot()
        a, b = SwitchWatcher(), SwitchWatcher()
        testbed.monitor([a, b])
        testbed.kernel.spawn_process(busy, "b", uid=1000)
        testbed.run_s(0.5)
        assert sum(a.events_seen.values()) > 0
        assert sum(b.events_seen.values()) > 0
