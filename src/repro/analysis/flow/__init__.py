"""Flow-sensitive analysis layer (``repro.analysis.flow``).

PR 2's rules are syntactic: they can say *who imports whom* but not
*where a value travels*.  The paper's trust argument is a dataflow
property — guest-controlled event payloads flow one way, into isolated
auditors, never back into hypervisor control decisions — so this
package adds the machinery to check flows:

* :mod:`~repro.analysis.flow.callgraph` — a repo-wide index of every
  def/method with import-, alias- and re-export-aware call resolution;
* :mod:`~repro.analysis.flow.cfg` — small per-function control-flow
  graphs with distinct normal-exit and explicit-raise exits;
* :mod:`~repro.analysis.flow.lattice` — a generic forward worklist
  dataflow driver over those CFGs;
* :mod:`~repro.analysis.flow.taint` — the taint engine: sources,
  propagation, interprocedural summaries, sink matching;
* :mod:`~repro.analysis.flow.sanitizers` — the declared-sanitizer
  registry harvested from ``repro.core.derive.TAINT_SANITIZERS``.

Four rule families ride on it (all pragma-suppressible with
``# hypertap: allow(flow.<family>) — why`` and baseline-compatible):

* ``flow.guest-taint``      (:mod:`~repro.analysis.flow.guest_taint`)
* ``flow.async-blocking``   (:mod:`~repro.analysis.flow.async_blocking`)
* ``flow.pool-picklability``(:mod:`~repro.analysis.flow.pool_pickle`)
* ``flow.span-pairing``     (:mod:`~repro.analysis.flow.span_pairing`)

The expensive shared state (call graph, harvested registries, CFG
cache) is built once per :class:`~repro.analysis.repo.AnalysisContext`
and memoized on it, so the four rules — and any future flow rule —
pay for one index regardless of how many of them run.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Optional

from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.sanitizers import harvest_sanitizers
from repro.analysis.repo import AnalysisContext

#: Event classes whose instances carry guest-controlled payloads even
#: when the tree under analysis does not define them (synthetic test
#: fixtures); real trees extend this from ``repro.core.events``.
BASE_EVENT_TYPES = frozenset({"GuestEvent", "VMExit"})


def harvest_event_types(ctx: AnalysisContext) -> FrozenSet[str]:
    """``GuestEvent`` + every subclass defined in ``repro.core.events``
    (+ ``VMExit``): annotating a parameter with one of these marks it a
    taint source."""
    names = set(BASE_EVENT_TYPES)
    source = ctx.module("repro.core.events")
    if source is None:
        return frozenset(names)
    # Two passes so chains (A(GuestEvent), B(A)) resolve without
    # caring about definition order.
    for _ in range(2):
        for node in source.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for base in node.bases:
                base_name = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if base_name in names:
                    names.add(node.name)
    return frozenset(names)


class FlowIndex:
    """Shared, lazily built state for every flow rule."""

    def __init__(self, ctx: AnalysisContext) -> None:
        self.ctx = ctx
        self.callgraph = CallGraph(ctx)
        self.event_types = harvest_event_types(ctx)
        self.sanitizers = harvest_sanitizers(ctx)
        self._cfgs: Dict[int, CFG] = {}

    def cfg(self, func: ast.AST) -> CFG:
        """Memoized CFG for one function node."""
        key = id(func)
        cached = self._cfgs.get(key)
        if cached is None:
            cached = build_cfg(func)
            self._cfgs[key] = cached
        return cached

    @classmethod
    def for_context(cls, ctx: AnalysisContext) -> "FlowIndex":
        """The one index per context (built on first use)."""
        index: Optional[FlowIndex] = getattr(ctx, "_flow_index", None)
        if index is None:
            index = cls(ctx)
            ctx._flow_index = index  # type: ignore[attr-defined]
        return index
