"""``python -m repro.obs`` — report, top and diff over pipeline metrics.

Typical uses::

    # Replay a trace and export its pipeline metrics as JSONL
    python -m repro.obs report tests/data/golden_exploit.jsonl

    # Same (scenario, seed) measured live vs from its trace — these
    # two commands emit byte-identical output:
    python -m repro.obs report --scenario exploit --seed 0 --source live
    python -m repro.obs report --scenario exploit --seed 0 --source replay

    # Merge several seeds (fans across REPRO_JOBS, merged in seed order)
    python -m repro.obs report --scenario hang --seeds 0,1,2 --jobs 4

    # Largest counters; differences between two exports (or traces)
    python -m repro.obs top tests/data/golden_exploit.jsonl
    python -m repro.obs diff baseline_obs.jsonl mutated_obs.jsonl

    # ``-`` reads stdin (trace or export, plain or gzipped), so serve
    # output pipes straight into triage without temp files:
    python -m repro.serve load ... --export | python -m repro.obs top -

    # Causal traces: full span capture from a trace replay
    python -m repro.obs trace export golden.jsonl --format perfetto
    python -m repro.obs trace critical-path golden.jsonl -n 5
    python -m repro.obs trace slice golden.jsonl --vm vm0 --reason hang

``diff`` exits 1 when the exports differ — fuzz triage keys on that.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import TraceFormatError
from repro.obs.metrics import SCOPES
from repro.obs.report import (
    collect_seeds,
    collect_trace,
    diff_rows,
    export_lines,
    rows_for_path,
    top_rows,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Deterministic pipeline telemetry: report, top, diff.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="export pipeline metrics as deterministic JSONL"
    )
    report.add_argument(
        "trace",
        nargs="?",
        default=None,
        help="trace file to replay ('-' reads the trace from stdin)",
    )
    report.add_argument("--scenario", default=None, help="named scenario")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--seeds",
        default=None,
        help="comma-separated seeds, merged in order (overrides --seed)",
    )
    report.add_argument(
        "--source",
        choices=("live", "replay"),
        default="replay",
        help="measure the live pipeline or a replay of its trace",
    )
    report.add_argument(
        "--scope",
        choices=SCOPES,
        default="pipeline",
        help="metric scope to export (default: pipeline)",
    )
    report.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --seeds (default: REPRO_JOBS)",
    )

    top = sub.add_parser("top", help="largest counters in an export/trace")
    top.add_argument(
        "path", help="metrics export (JSONL) or trace file ('-' for stdin)"
    )
    top.add_argument("-n", "--limit", type=int, default=10)
    top.add_argument("--scope", choices=SCOPES, default="pipeline")

    diff = sub.add_parser(
        "diff", help="compare two exports (or traces); exit 1 on differences"
    )
    diff.add_argument("a", help="first export or trace ('-' for stdin)")
    diff.add_argument("b", help="second export or trace ('-' for stdin)")
    diff.add_argument("--scope", choices=SCOPES, default="pipeline")

    trace = sub.add_parser(
        "trace", help="causal spans: export, critical-path, slice"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)

    def add_trace_input(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "trace",
            help="trace file to replay — JSONL, gzip or btrace "
            "('-' reads stdin)",
        )

    export = trace_sub.add_parser(
        "export", help="full span stream as JSONL or Perfetto JSON"
    )
    add_trace_input(export)
    export.add_argument(
        "--format",
        choices=("jsonl", "perfetto"),
        default="jsonl",
        help="compact span JSONL or Chrome trace-event JSON",
    )
    export.add_argument(
        "-o", "--output", default="-", help="output path ('-' = stdout)"
    )

    critical = trace_sub.add_parser(
        "critical-path",
        help="per-hop exit-to-verdict latency attribution, worst-N first",
    )
    add_trace_input(critical)
    critical.add_argument("-n", "--worst", type=int, default=10)

    sliced = trace_sub.add_parser(
        "slice", help="filter spans by trace id / vm / hop reason"
    )
    add_trace_input(sliced)
    sliced.add_argument("--trace-id", default=None, help="exact vm:seq id")
    sliced.add_argument("--vm", default=None, help="exact VM id")
    sliced.add_argument(
        "--reason",
        default=None,
        help="match a hop stage or detail string (auditor, verdict kind)",
    )
    return parser


def _cmd_report(args: argparse.Namespace) -> int:
    if args.trace is not None:
        snapshot = collect_trace(args.trace)
    elif args.scenario is not None:
        seeds = (
            [int(s) for s in args.seeds.split(",") if s.strip()]
            if args.seeds is not None
            else [args.seed]
        )
        snapshot = collect_seeds(
            args.scenario, seeds, source=args.source, jobs=args.jobs
        )
    else:
        print(
            "report: pass a trace path or --scenario NAME", file=sys.stderr
        )
        return 2
    for line in export_lines(snapshot, scope=args.scope):
        print(line)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    rows = rows_for_path(args.path, scope=args.scope)
    for value, label in top_rows(rows, limit=args.limit):
        print(f"{value:>12,}  {label}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import (
        collect_spans,
        critical_path_lines,
        perfetto_text,
        slice_spans,
        spans_to_jsonl_lines,
    )

    spans, _snapshot = collect_spans(args.trace)
    if args.trace_command == "export":
        if args.format == "perfetto":
            text = perfetto_text(spans)
        else:
            lines = spans_to_jsonl_lines(spans)
            text = "\n".join(lines) + ("\n" if lines else "")
        if args.output == "-":
            sys.stdout.write(text)
        else:
            with open(args.output, "w", encoding="utf-8") as fh:
                fh.write(text)
            print(
                f"wrote {len(spans)} span(s) ({args.format}) to {args.output}"
            )
        return 0
    if args.trace_command == "critical-path":
        for line in critical_path_lines(spans, worst=args.worst):
            print(line)
        return 0
    selected = slice_spans(
        spans, trace_id=args.trace_id, vm=args.vm, reason=args.reason
    )
    for line in spans_to_jsonl_lines(selected):
        print(line)
    print(f"{len(selected)} of {len(spans)} span(s)", file=sys.stderr)
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    a = rows_for_path(args.a, scope=args.scope)
    b = rows_for_path(args.b, scope=args.scope)
    differences = diff_rows(a, b)
    for line in differences:
        print(line)
    if differences:
        print(f"{len(differences)} difference(s)", file=sys.stderr)
        return 1
    print("exports are identical")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "top":
            return _cmd_top(args)
        if args.command == "trace":
            return _cmd_trace(args)
        return _cmd_diff(args)
    except BrokenPipeError:
        # Downstream consumer (head, grep -q) closed the pipe early.
        sys.stderr.close()
        return 0
    except (TraceFormatError, OSError) as exc:
        # Same graceful contract as python -m repro.replay: bad input
        # is a one-line error and exit 2, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
