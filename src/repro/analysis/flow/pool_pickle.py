"""``flow.pool-picklability`` — pool tasks must survive pickling.

``repro.parallel.parallel_map`` ships its callable to worker processes,
so the callable must be importable by reference: a module-level ``def``
with picklable defaults.  A lambda, a nested def (closure), or a bound
method of a local object dies at submission time — but only when
``REPRO_JOBS > 1``, which is exactly when CI isn't looking.  PR 4
maintained this as a written convention; this rule makes it a
commit-time failure.

Checked call sites (resolved through the call graph, so aliases and
package re-exports count):

* ``parallel_map(task, …)`` — the first positional (or ``fn=``)
  argument;
* ``asyncio.to_thread(parallel_map, task, …)`` — the serve layer's
  off-loop fan-out pattern: the task is the *second* positional;
* ``<pool>.submit(task, …)`` inside modules that import
  ``concurrent.futures`` (the executor internals themselves).

A task expression the resolver cannot pin to a module-level def is a
finding too: "probably fine at jobs=1" is not a contract.  The one
legitimate unresolvable shape — forwarding a function *parameter*, as
``parallel_map`` itself does into ``pool.submit`` — is recognized and
skipped when the parameter is visibly the enclosing function's own
argument.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import FlowIndex
from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionScope,
    iter_function_scopes,
)
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import Rule, register


def _is_parallel_map(call: ast.Call, graph: CallGraph, scope: FunctionScope
                     ) -> bool:
    resolved = graph.resolve_call(
        call, scope.source, scope.class_name, scope.local_defs(graph),
        scope.local_types(graph), scope.local_aliases(),
    )
    return (
        resolved is not None
        and resolved.name == "parallel_map"
        and resolved.module.startswith("repro.parallel")
    )


def _task_expr(call: ast.Call, graph: CallGraph, scope: FunctionScope
               ) -> Optional[Tuple[ast.expr, str]]:
    """(task expression, site description) when this is a submit site."""
    func = call.func
    # parallel_map(task, items, ...)
    if _is_parallel_map(call, graph, scope):
        for kw in call.keywords:
            if kw.arg == "fn":
                return kw.value, "parallel_map()"
        if call.args:
            return call.args[0], "parallel_map()"
        return None
    # asyncio.to_thread(parallel_map, task, items, ...)
    if isinstance(func, ast.Attribute) and func.attr == "to_thread":
        if call.args and isinstance(call.args[0], (ast.Name, ast.Attribute)):
            probe = ast.Call(func=call.args[0], args=[], keywords=[])
            ast.copy_location(probe, call)
            if _is_parallel_map(probe, graph, scope) and len(call.args) >= 2:
                return call.args[1], "asyncio.to_thread(parallel_map, ...)"
        return None
    # pool.submit(task, ...) inside the executor implementation.
    if isinstance(func, ast.Attribute) and func.attr == "submit":
        if _imports_concurrent(scope.source.tree) and call.args:
            return call.args[0], "executor submit()"
    return None


def _imports_concurrent(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(a.name.startswith("concurrent") for a in node.names):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").startswith("concurrent"):
                return True
    return False


_PICKLABLE_DEFAULT = (
    ast.Constant, ast.Name, ast.Attribute, ast.Tuple, ast.UnaryOp,
)


def _unpicklable_defaults(node: ast.AST) -> List[str]:
    args = node.args
    bad: List[str] = []
    defaults = list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]
    for default in defaults:
        if isinstance(default, ast.Lambda):
            bad.append("a lambda default")
        elif not isinstance(default, _PICKLABLE_DEFAULT):
            bad.append(
                f"a computed default ({default.__class__.__name__})"
            )
    return bad


@register
class PoolPicklabilityRule(Rule):
    id = "flow.pool-picklability"
    summary = (
        "callables handed to parallel_map/executor submit must resolve "
        "to module-level defs with picklable defaults"
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        index = FlowIndex.for_context(ctx)
        graph = index.callgraph
        for source in ctx.files:
            for scope in iter_function_scopes(source):
                yield from self._check_scope(graph, scope)
            # Module-level submit sites (rare but possible).
            module_scope = FunctionScope(source, source.tree, "<module>", None)
            yield from self._check_scope(graph, module_scope)

    def _check_scope(self, graph: CallGraph, scope: FunctionScope
                     ) -> Iterator[Finding]:
        own_params = _param_name_set(scope.node)
        for node in scope.walk_own():
            if not isinstance(node, ast.Call):
                continue
            site = _task_expr(node, graph, scope)
            if site is None:
                continue
            task, where = site
            yield from self._check_task(graph, scope, node, task, where,
                                        own_params)

    def _check_task(self, graph, scope, call, task, where, own_params
                    ) -> Iterator[Finding]:
        rel = scope.source.rel
        if isinstance(task, ast.Lambda):
            yield self.finding(
                rel, call.lineno,
                f"lambda passed to {where}: lambdas cannot be pickled to "
                f"worker processes; use a module-level def",
            )
            return
        # functools.partial(fn, ...) — check the wrapped callable.
        if isinstance(task, ast.Call):
            attr = (
                task.func.attr if isinstance(task.func, ast.Attribute)
                else task.func.id if isinstance(task.func, ast.Name)
                else None
            )
            if attr == "partial" and task.args:
                yield from self._check_task(
                    graph, scope, call, task.args[0], where, own_params
                )
                return
            yield self.finding(
                rel, call.lineno,
                f"computed callable passed to {where}: the task must "
                f"resolve statically to a module-level def",
            )
            return
        if isinstance(task, ast.Name) and task.id in own_params:
            # Forwarding the enclosing function's own callable parameter
            # (the executor internals): the contract holds at the outer
            # call site, which this rule checks separately.
            return
        resolved = None
        if isinstance(task, (ast.Name, ast.Attribute)):
            probe = ast.Call(func=task, args=[], keywords=[])
            ast.copy_location(probe, call)
            resolved = graph.resolve_call(
                probe, scope.source, scope.class_name,
                scope.local_defs(graph), scope.local_types(graph),
                scope.local_aliases(),
            )
        if resolved is None:
            yield self.finding(
                rel, call.lineno,
                f"cannot statically resolve the callable passed to "
                f"{where}; pool tasks must be module-level defs "
                f"(closures and bound locals break pickling)",
            )
            return
        if resolved.is_nested:
            yield self.finding(
                rel, call.lineno,
                f"nested def {resolved.name}() passed to {where}: "
                f"closures cannot be pickled to worker processes; hoist "
                f"it to module level",
            )
            return
        if resolved.is_method:
            yield self.finding(
                rel, call.lineno,
                f"bound method {resolved.class_name}.{resolved.name} "
                f"passed to {where}: instance state does not ship to "
                f"workers reliably; use a module-level def",
            )
            return
        for problem in _unpicklable_defaults(resolved.node):
            yield self.finding(
                rel, call.lineno,
                f"task {resolved.name}() passed to {where} has "
                f"{problem}; defaults must be picklable literals",
            )


def _param_name_set(node: ast.AST) -> Set[str]:
    args = getattr(node, "args", None)
    if args is None or not hasattr(args, "args"):
        return set()
    return {
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
    }
