"""Replay every checked-in corpus entry; its finding must reproduce.

Each file under ``tests/corpus/`` is a shrunk finding from one of the
two adversarial harnesses (``python -m repro.testing``):

* trace entries — conformance findings against the auditors, with the
  finding key (and, for schedule findings, the perturbation parameters)
  stored in the trace header;
* ``hut-*`` entries — hypervisor-under-test divergence witnesses in the
  hut program format, replayed through the real emulation stack with
  their recorded seeded bug re-injected (or, for ``fixed`` entries,
  asserting the differential stays silent on the clean emulator).

These are the harnesses' regression anchors: if a change makes one stop
reproducing, either the discrepancy was fixed (delete the entry and say
so) or the replay path regressed.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.testing.corpus import corpus_entries, verify_entry
from repro.testing.hut import hut_corpus_entries, verify_hut_entry

CORPUS_DIR = str(pathlib.Path(__file__).parent / "corpus")

ENTRIES = corpus_entries(CORPUS_DIR)
HUT_ENTRIES = hut_corpus_entries(CORPUS_DIR)


def test_corpus_is_populated():
    # The harness's acceptance floor: at least three distinct shrunk
    # findings are checked in.
    assert len(ENTRIES) >= 3


def test_hut_corpus_is_populated():
    # At least two bug witnesses and one clean (fixed) witness.
    assert len(HUT_ENTRIES) >= 3


def test_corpus_listings_are_disjoint():
    # hut entries are a different format; the trace loader must skip
    # them or `corpus verify` would report them as unreadable.
    assert not set(ENTRIES) & set(HUT_ENTRIES)
    assert all("hut-" not in pathlib.Path(p).name for p in ENTRIES)


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[pathlib.Path(p).stem for p in ENTRIES]
)
def test_corpus_entry_reproduces(path):
    ok, detail = verify_entry(path)
    assert ok, f"{path}: {detail}"


@pytest.mark.parametrize(
    "path", HUT_ENTRIES, ids=[pathlib.Path(p).stem for p in HUT_ENTRIES]
)
def test_hut_corpus_entry_reproduces(path):
    ok, detail = verify_hut_entry(path)
    assert ok, f"{path}: {detail}"
