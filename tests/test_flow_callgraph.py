"""Units for the flow layer's shared machinery (repro.analysis.flow):
call-graph resolution through methods, aliased imports and package
re-exports; CFG exits (return / explicit raise / finally); and the
taint engine's sanitizer + summary behaviour in isolation."""

from __future__ import annotations

import ast
import textwrap
from pathlib import Path

from repro.analysis.flow import FlowIndex
from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionScope,
    iter_function_scopes,
)
from repro.analysis.flow.cfg import build_cfg
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import rule_ids


def make_ctx(base: Path, files: dict) -> AnalysisContext:
    root = base / "src"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content), encoding="utf-8")
    return AnalysisContext(root, known_rules=set(rule_ids()))


def scope_named(ctx: AnalysisContext, module: str, qualname: str
                ) -> FunctionScope:
    source = ctx.module(module)
    assert source is not None, module
    for scope in iter_function_scopes(source):
        if scope.qualname == qualname:
            return scope
    raise AssertionError(f"no scope {qualname!r} in {module}")


def calls_in(scope: FunctionScope):
    return [n for n in scope.walk_own() if isinstance(n, ast.Call)]


def resolve_first_call(graph: CallGraph, scope: FunctionScope):
    call = calls_in(scope)[0]
    return graph.resolve_call(
        call, scope.source, scope.class_name, scope.local_defs(graph),
        scope.local_types(graph), scope.local_aliases(),
    )


# ======================================================================
# Call-graph resolution
# ======================================================================
class TestCallGraph:
    def test_module_level_def_and_self_method(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/mod.py": """
                def helper():
                    return 1

                class Engine:
                    def _inner(self):
                        return 2

                    def run(self):
                        return helper()

                    def run2(self):
                        return self._inner()
                """,
            },
        )
        graph = CallGraph(ctx)
        run = scope_named(ctx, "repro.mod", "Engine.run")
        resolved = resolve_first_call(graph, run)
        assert resolved is not None and resolved.qualname == "helper"
        run2 = scope_named(ctx, "repro.mod", "Engine.run2")
        resolved = resolve_first_call(graph, run2)
        assert resolved is not None
        assert resolved.qualname == "Engine._inner"
        assert resolved.is_method and resolved.class_name == "Engine"

    def test_inherited_method_resolves_through_base(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/base.py": """
                class Base:
                    def shared(self):
                        return 1
                """,
                "repro/child.py": """
                from repro.base import Base

                class Child(Base):
                    def go(self):
                        return self.shared()
                """,
            },
        )
        graph = CallGraph(ctx)
        go = scope_named(ctx, "repro.child", "Child.go")
        resolved = resolve_first_call(graph, go)
        assert resolved is not None and resolved.qualname == "Base.shared"
        assert resolved.module == "repro.base"

    def test_aliased_import_forms(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/util.py": """
                def crunch():
                    return 1
                """,
                "repro/a.py": """
                from repro.util import crunch as c

                def go():
                    return c()
                """,
                "repro/b.py": """
                import repro.util as u

                def go():
                    return u.crunch()
                """,
                "repro/c.py": """
                from repro import util

                def go():
                    return util.crunch()
                """,
            },
        )
        graph = CallGraph(ctx)
        for module in ("repro.a", "repro.b", "repro.c"):
            scope = scope_named(ctx, module, "go")
            resolved = resolve_first_call(graph, scope)
            assert resolved is not None, module
            assert (resolved.module, resolved.name) == ("repro.util", "crunch")

    def test_package_reexport_chases_to_definition(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/pkg/__init__.py": """
                from repro.pkg.impl import work
                """,
                "repro/pkg/impl.py": """
                def work():
                    return 1
                """,
                "repro/user.py": """
                from repro.pkg import work

                def go():
                    return work()
                """,
            },
        )
        graph = CallGraph(ctx)
        scope = scope_named(ctx, "repro.user", "go")
        resolved = resolve_first_call(graph, scope)
        assert resolved is not None
        assert (resolved.module, resolved.name) == ("repro.pkg.impl", "work")

    def test_relative_import_in_package(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/pkg/__init__.py": "",
                "repro/pkg/impl.py": """
                def work():
                    return 1
                """,
                "repro/pkg/use.py": """
                from .impl import work

                def go():
                    return work()
                """,
            },
        )
        graph = CallGraph(ctx)
        scope = scope_named(ctx, "repro.pkg.use", "go")
        resolved = resolve_first_call(graph, scope)
        assert resolved is not None and resolved.module == "repro.pkg.impl"

    def test_local_alias_and_constructor_type(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/mod.py": """
                class Engine:
                    def step(self):
                        return 1

                def alias_user(self_obj):
                    e = Engine()
                    return e.step()

                class Holder:
                    def _reject(self, reason):
                        return reason

                    def run(self):
                        reject = self._reject
                        return reject("x")
                """,
            },
        )
        graph = CallGraph(ctx)
        scope = scope_named(ctx, "repro.mod", "alias_user")
        resolved = resolve_first_call(graph, scope)
        assert resolved is not None and resolved.qualname == "Engine.step"
        run = scope_named(ctx, "repro.mod", "Holder.run")
        # First call lexically is reject("x") or self._reject capture;
        # find the Name-call explicitly.
        target = graph.functions[("repro.mod", "Holder._reject")]
        sites = graph.call_sites_of(target)
        assert any(s[1].qualname == "Holder.run" for s in sites)
        del run

    def test_nested_def_is_flagged_nested(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/mod.py": """
                def outer():
                    def inner(x):
                        return x
                    return inner(1)
                """,
            },
        )
        graph = CallGraph(ctx)
        scope = scope_named(ctx, "repro.mod", "outer")
        resolved = resolve_first_call(graph, scope)
        assert resolved is not None and resolved.is_nested
        assert resolved.qualname == "outer.<locals>.inner"

    def test_unresolvable_duck_typed_call_is_none(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/mod.py": """
                def go(transport):
                    return transport.send(b"x")
                """,
            },
        )
        graph = CallGraph(ctx)
        scope = scope_named(ctx, "repro.mod", "go")
        assert resolve_first_call(graph, scope) is None


# ======================================================================
# CFG construction
# ======================================================================
def _cfg_for(code: str):
    tree = ast.parse(textwrap.dedent(code))
    func = tree.body[0]
    return build_cfg(func)


class TestCfg:
    def test_raise_has_its_own_exit(self):
        cfg = _cfg_for(
            """
            def f(x):
                if x:
                    raise ValueError(x)
                return 1
            """
        )
        raise_preds = cfg.predecessors()[cfg.raise_exit]
        exit_preds = cfg.predecessors()[cfg.exit]
        assert raise_preds and exit_preds
        assert set(raise_preds).isdisjoint(set(exit_preds)) or True

    def test_finally_body_runs_on_both_exits(self):
        cfg = _cfg_for(
            """
            def f(x):
                try:
                    if x:
                        raise ValueError(x)
                finally:
                    cleanup()
                return 1
            """
        )
        # The finally body is duplicated: cleanup() must appear in more
        # than one block (normal lowering + abrupt-exit copy).
        cleanup_blocks = [
            b.id
            for b in cfg.blocks.values()
            for stmt in b.stmts
            if isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Call)
            and getattr(stmt.value.func, "id", None) == "cleanup"
        ]
        assert len(cleanup_blocks) >= 2

    def test_loop_back_edge_exists(self):
        cfg = _cfg_for(
            """
            def f(items):
                total = 0
                for item in items:
                    total += item
                return total
            """
        )
        # Some block must have a successor with a smaller-or-equal id
        # (the back edge to the loop head).
        assert any(
            succ <= block.id
            for block in cfg.blocks.values()
            for succ in block.succs
        )


# ======================================================================
# FlowIndex memoization
# ======================================================================
class TestFlowIndex:
    def test_index_is_shared_per_context(self, tmp_path):
        ctx = make_ctx(tmp_path, {"repro/mod.py": "def f():\n    return 1\n"})
        a = FlowIndex.for_context(ctx)
        b = FlowIndex.for_context(ctx)
        assert a is b

    def test_default_event_types_without_events_module(self, tmp_path):
        ctx = make_ctx(tmp_path, {"repro/mod.py": ""})
        index = FlowIndex.for_context(ctx)
        assert {"GuestEvent", "VMExit"} <= set(index.event_types)

    def test_event_subclasses_harvested(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/core/events.py": """
                class GuestEvent:
                    pass

                class SyscallEvent(GuestEvent):
                    pass

                class FancySyscallEvent(SyscallEvent):
                    pass
                """,
            },
        )
        index = FlowIndex.for_context(ctx)
        assert "SyscallEvent" in index.event_types
        assert "FancySyscallEvent" in index.event_types

    def test_sanitizers_harvested_from_declared_table(self, tmp_path):
        ctx = make_ctx(
            tmp_path,
            {
                "repro/core/derive.py": """
                TAINT_SANITIZERS = ("Cleaner.scrub",)

                class Cleaner:
                    def scrub(self, value):
                        return 0
                """,
            },
        )
        index = FlowIndex.for_context(ctx)
        assert index.sanitizers.names == frozenset({"scrub"})

    def test_sanitizer_fallback_matches_shipped_derive_chain(self, tmp_path):
        ctx = make_ctx(tmp_path, {"repro/mod.py": ""})
        index = FlowIndex.for_context(ctx)
        assert "task_info_from_rsp0" in index.sanitizers.names
