"""Hut program mutators: seeded edits over the guest-visible input.

Each mutator is a named pure function ``(ops, rng, program) -> ops`` —
the registry keys double as the classes the mutation-kill audit
enumerates (``tests/test_hut_fuzzer.py``): for every mutator class
there must exist a seeded bug + budget under which ``hut-fuzz`` finds a
divergence, or the class is dead weight.

Soundness constraint for the ``interleave`` target: mutations must
preserve the per-vCPU partitioning of the arena (a mutation that makes
two vCPUs write one page would make correct emulators *legitimately*
order-dependent, turning the schedule differential into a false-alarm
generator).  Mutators that move an op across vCPUs or re-aim an address
therefore re-base page-addressed arguments into the owning vCPU's
partition when the program is an interleave program.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.hw.memory import PAGE_SIZE
from repro.testing.hut.program import (
    ARENA_BASE,
    ARENA_PAGES,
    NUM_SPACES,
    REMAP_FRAMES,
    UNCLAIMED_PORTS,
    VMCS_FIELDS,
    HutOp,
    HutProgram,
    _TARGET_MENUS,
    _draw_op,
    arena_pages_for,
)

#: Outside every mapped region: GVAs here fault in guest paging, the
#: rejection path both sides of the differential must agree on.
_UNMAPPED_BASE = 0x0030_0000

_INTERESTING_VALUES = (
    0,
    1,
    0x80,
    0x7FFF_FFFF,
    0x8000_0000,
    0xFFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
    0x5555_5555_5555_5555,
)


def _copy(op: HutOp) -> HutOp:
    return HutOp(op=op.op, vcpu=op.vcpu, args=dict(op.args))


def _partitioned(program: HutProgram) -> bool:
    return program.target == "interleave" and program.num_vcpus > 1


def _pages_for(program: HutProgram, vcpu: int) -> List[int]:
    if _partitioned(program):
        return arena_pages_for(vcpu % program.num_vcpus, program.num_vcpus)
    return list(range(ARENA_PAGES))


def _rebase_addr(
    addr: int, pages: List[int]
) -> int:
    """Re-aim an arena address at one of ``pages``, keeping its offset."""
    page_index = (addr - ARENA_BASE) // PAGE_SIZE
    page = pages[page_index % len(pages)]
    return ARENA_BASE + page * PAGE_SIZE + (addr % PAGE_SIZE)


def _rebase_op(op: HutOp, program: HutProgram) -> HutOp:
    """Pull an op's page-addressed args into its vCPU's partition."""
    if not _partitioned(program):
        return op
    pages = _pages_for(program, op.vcpu)
    for key in ("gva", "gpa"):
        addr = op.args.get(key)
        if isinstance(addr, int) and (
            ARENA_BASE <= addr < ARENA_BASE + ARENA_PAGES * PAGE_SIZE
        ):
            op.args[key] = _rebase_addr(addr, pages)
    return op


# ======================================================================
# Mutator classes
# ======================================================================
def _mutate_dup(ops, rng, program):
    if not ops:
        return None
    i = rng.randrange(len(ops))
    return ops[: i + 1] + [_copy(ops[i])] + ops[i + 1:]


def _mutate_del(ops, rng, program):
    if len(ops) < 2:
        return None
    i = rng.randrange(len(ops))
    return ops[:i] + ops[i + 1:]


def _mutate_swap(ops, rng, program):
    if len(ops) < 2:
        return None
    i = rng.randrange(len(ops) - 1)
    j = i + 1 + rng.randrange(len(ops) - i - 1)
    out = list(ops)
    out[i], out[j] = out[j], out[i]
    return out


def _mutate_retarget_vcpu(ops, rng, program):
    if program.num_vcpus < 2 or not ops:
        return None
    i = rng.randrange(len(ops))
    op = _copy(ops[i])
    op.vcpu = (op.vcpu + 1 + rng.randrange(program.num_vcpus - 1)) % (
        program.num_vcpus
    )
    out = list(ops)
    out[i] = _rebase_op(op, program)
    return out


def _mutate_value(ops, rng, program):
    """Bit-flip or interesting-replace a numeric payload argument."""
    candidates = [
        i for i, op in enumerate(ops)
        if any(k in op.args for k in ("value", "index", "hfn"))
    ]
    if not candidates:
        return None
    i = candidates[rng.randrange(len(candidates))]
    op = _copy(ops[i])
    keys = [k for k in ("value", "index", "hfn") if k in op.args]
    key = keys[rng.randrange(len(keys))]
    if rng.randrange(2):
        op.args[key] = int(op.args[key]) ^ (1 << rng.randrange(64))
    else:
        op.args[key] = _INTERESTING_VALUES[
            rng.randrange(len(_INTERESTING_VALUES))
        ]
    out = list(ops)
    out[i] = op
    return out


def _mutate_perm(ops, rng, program):
    """Flip one permission bit on an ``ept_set``, or inject one."""
    candidates = [i for i, op in enumerate(ops) if op.op == "ept_set"]
    out = list(ops)
    if candidates:
        i = candidates[rng.randrange(len(candidates))]
        op = _copy(ops[i])
        bit = ("r", "w", "x")[rng.randrange(3)]
        op.args[bit] = 0 if op.args.get(bit) else 1
        out[i] = op
        return out
    vcpu = rng.randrange(program.num_vcpus)
    pages = _pages_for(program, vcpu)
    fresh = HutOp("ept_set", vcpu, {
        "gpa": ARENA_BASE + pages[rng.randrange(len(pages))] * PAGE_SIZE,
        "r": rng.randrange(2), "w": rng.randrange(2), "x": rng.randrange(2),
    })
    i = rng.randrange(len(ops) + 1)
    return out[:i] + [fresh] + out[i:]


def _mutate_control(ops, rng, program):
    """Toggle a VMCS control somewhere in the program."""
    vcpu = rng.randrange(program.num_vcpus)
    fresh = HutOp("vmcs", vcpu, {
        "field": VMCS_FIELDS[rng.randrange(len(VMCS_FIELDS))],
        "value": rng.randrange(2),
    })
    i = rng.randrange(len(ops) + 1)
    return ops[:i] + [fresh] + ops[i:]


def _mutate_insert(ops, rng, program):
    """Insert a fresh op drawn from the program's own target menu."""
    menu = _TARGET_MENUS[program.target]
    vcpu = rng.randrange(program.num_vcpus)
    fresh = _draw_op(rng, menu, vcpu, _pages_for(program, vcpu))
    i = rng.randrange(len(ops) + 1)
    return ops[:i] + [fresh] + ops[i:]


def _mutate_gva(ops, rng, program):
    """Re-aim a memory op: another partition page, a page-crossing
    offset, or (non-interleave) an unmapped GVA for the fault path."""
    candidates = [i for i, op in enumerate(ops) if "gva" in op.args]
    if not candidates:
        return None
    i = candidates[rng.randrange(len(candidates))]
    op = _copy(ops[i])
    pages = _pages_for(program, op.vcpu)
    choice = rng.randrange(3)
    if choice == 0 and not _partitioned(program):
        op.args["gva"] = _UNMAPPED_BASE + 8 * rng.randrange(512)
    elif choice == 1:
        # Misaligned tail slot: a u64 here spans the frame boundary,
        # exercising the chunked (partial-effect) physical path.
        page = pages[rng.randrange(len(pages))]
        op.args["gva"] = ARENA_BASE + page * PAGE_SIZE + (PAGE_SIZE - 4)
    else:
        page = pages[rng.randrange(len(pages))]
        op.args["gva"] = (
            ARENA_BASE + page * PAGE_SIZE + 8 * rng.randrange(PAGE_SIZE // 8)
        )
    out = list(ops)
    out[i] = op
    return out


def _mutate_remap(ops, rng, program):
    """Insert an ``ept_remap`` aliasing a partition page onto the
    remap frame pool (including other swept pages — aliasing is the
    interesting case for the memory digest)."""
    vcpu = rng.randrange(program.num_vcpus)
    pages = _pages_for(program, vcpu)
    fresh = HutOp("ept_remap", vcpu, {
        "gpa": ARENA_BASE + pages[rng.randrange(len(pages))] * PAGE_SIZE,
        "hfn": REMAP_FRAMES[rng.randrange(len(REMAP_FRAMES))],
    })
    i = rng.randrange(len(ops) + 1)
    return ops[:i] + [fresh] + ops[i:]


def _mutate_port(ops, rng, program):
    candidates = [i for i, op in enumerate(ops) if op.op == "io"]
    if not candidates:
        return None
    i = candidates[rng.randrange(len(candidates))]
    op = _copy(ops[i])
    if rng.randrange(4) == 0:
        op.args["direction"] = "sideways"  # rejection-path coverage
    else:
        op.args["port"] = UNCLAIMED_PORTS[
            rng.randrange(len(UNCLAIMED_PORTS))
        ]
    out = list(ops)
    out[i] = op
    return out


def _mutate_space(ops, rng, program):
    """Insert a ``cr3`` switch (all spaces translate identically, so
    this must be digest-neutral except for ``cr3_space`` itself)."""
    vcpu = rng.randrange(program.num_vcpus)
    fresh = HutOp("cr3", vcpu, {"space": rng.randrange(NUM_SPACES)})
    i = rng.randrange(len(ops) + 1)
    return ops[:i] + [fresh] + ops[i:]


#: name -> mutator; ordering is part of the seeded-draw determinism.
MUTATORS: Dict[str, Callable] = {
    "dup": _mutate_dup,
    "del": _mutate_del,
    "swap": _mutate_swap,
    "retarget-vcpu": _mutate_retarget_vcpu,
    "value": _mutate_value,
    "perm": _mutate_perm,
    "control": _mutate_control,
    "insert": _mutate_insert,
    "gva": _mutate_gva,
    "remap": _mutate_remap,
    "port": _mutate_port,
    "space": _mutate_space,
}

_MUTATOR_NAMES = tuple(MUTATORS)

#: Mutated programs never grow past this many ops.
MAX_OPS = 96


def mutate_program(
    program: HutProgram, rng, n_mutations: int = 2
) -> Tuple[HutProgram, List[str]]:
    """Apply up to ``n_mutations`` seeded mutations; returns the new
    program and the names of the mutator classes that actually applied
    (a mutator with no applicable site draws nothing further)."""
    ops = list(program.ops)
    applied: List[str] = []
    for _ in range(max(1, n_mutations)):
        name = _MUTATOR_NAMES[rng.randrange(len(_MUTATOR_NAMES))]
        result = MUTATORS[name](ops, rng, program)
        if result is None or len(result) > MAX_OPS:
            continue
        ops = result
        applied.append(name)
    return program.replace_ops(ops), applied
