#!/usr/bin/env python3
"""Who monitors the monitor?  The Remote Health Checker (Fig 2).

The Event Multiplexer samples every Nth logged event to an RHC on a
separate machine.  This demo kills the monitoring pipeline mid-run
(detaches the Event Forwarder, as a hypervisor-level failure would)
and shows the RHC raising the alarm — and also shows a crashing
auditor being contained by its auditing container without hurting
either the guest or the rest of the pipeline.

Run:  python examples/monitoring_liveness.py
"""

from repro import Testbed, TestbedConfig
from repro.auditors import GuestOSHangDetector, HTNinja
from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.workloads import start_workload


class BuggyAuditor(Auditor):
    """An auditor with a bug: crashes on its 100th event."""

    name = "buggy"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        if sum(self.events_seen.values()) >= 100:
            raise RuntimeError("null deref in auditor")


def main() -> None:
    print("== monitoring-pipeline liveness and containment ==")
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=21, with_rhc=True,
                                    rhc_timeout_s=3))
    testbed.boot()
    goshd = GuestOSHangDetector()
    buggy = BuggyAuditor()
    testbed.monitor([goshd, buggy, HTNinja()])
    start_workload(testbed.kernel, "make-j2")

    print("running; EM samples events to the RHC every 64 exits ...")
    testbed.run_s(5.0)
    container = testbed.hypertap.container
    print(f"t=5s   rhc heartbeats={testbed.rhc.heartbeats} "
          f"alarmed={testbed.rhc.alarmed}")
    print(f"       buggy auditor crashed: {container.failed} "
          f"({container.failure_reason}); events dropped: "
          f"{container.dropped}, guest unaffected")

    print("\nsimulating monitoring death: detaching the Event Forwarder")
    testbed.kvm.detach_forwarder()
    testbed.run_s(6.0)
    print(f"t=11s  rhc alarmed={testbed.rhc.alarmed} "
          f"(alerts at {[f'{t/1e9:.1f}s' for t in testbed.rhc.alerts]})")
    print(f"       guest still running: "
          f"{testbed.kernel.syscall_count} syscalls executed")
    print("\nthe RHC catches silent death of the monitoring stack itself.")


if __name__ == "__main__":
    main()
