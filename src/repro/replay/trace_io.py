"""Streaming trace I/O: JSONL files, optionally gzip-compressed.

Two write paths exist on purpose:

* :func:`save_trace` — the whole trace is in memory (the recorder's
  normal case), so the in-band header carries authoritative event
  counts;
* :class:`TraceWriter` — true streaming: records hit the file as they
  are written and a footer with the final counts is appended at close.

:class:`TraceReader` handles both: it surfaces the header immediately
and folds footer counts back into ``reader.header`` when iteration
reaches the end of the stream.
"""

from __future__ import annotations

import gzip
import json
import zlib
from typing import Any, Dict, Iterator, List, Optional

from repro.core.derive import DerivedTaskInfo
from repro.core.events import GuestEvent
from repro.errors import TraceFormatError
from repro.replay.format import (
    KIND_EVENT,
    KIND_FOOTER,
    KIND_HEADER,
    Trace,
    TraceHeader,
    event_to_record,
)


def _open(path: str, mode: str):
    """Text-mode file handle; transparent gzip for ``*.gz`` paths."""
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


#: One reusable encoder for every record (``json.dumps`` constructs a
#: fresh ``JSONEncoder`` per call); identical output bytes — default
#: separators, ``sort_keys`` — just without the per-record setup cost.
_encode = json.JSONEncoder(sort_keys=True).encode


#: What a broken compressed/encoded stream surfaces mid-read: gzip
#: truncation (EOFError), bad magic / CRC / trailing garbage
#: (gzip.BadGzipFile, an OSError), corrupt deflate data (zlib.error)
#: and mojibake from either (UnicodeDecodeError).  All of them become
#: :class:`TraceFormatError` so callers see one typed failure mode.
_STREAM_ERRORS = (EOFError, OSError, UnicodeDecodeError, zlib.error)


class TraceWriter:
    """Streaming writer: header first, records as they come, footer last.

    Line assembly is buffered: each record becomes one ``line + "\\n"``
    string appended to an in-memory batch, and the batch reaches the
    file handle as a single ``write`` per ``flush_every`` records (the
    old path issued two writes per record, which dominates gzip-stream
    cost on long recordings).  :meth:`flush` forces the batch out — the
    recorder's crash-tail guarantee is unchanged because the footer was
    never durable before :meth:`close` anyway.
    """

    def __init__(
        self, path: str, header: TraceHeader, flush_every: int = 256
    ) -> None:
        self.path = str(path)
        self.header = header
        self.event_counts: Dict[str, int] = {}
        self.records_written = 0
        self._fh = _open(self.path, "w")
        self._closed = False
        self._buffer: List[str] = []
        self._flush_every = max(1, int(flush_every))
        self._write_line(header.to_record())

    # ------------------------------------------------------------------
    def _write_line(self, record: Dict[str, Any]) -> None:
        self._buffer.append(_encode(record) + "\n")
        if len(self._buffer) >= self._flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered lines to the file handle (one ``write``)."""
        if self._buffer:
            self._fh.write("".join(self._buffer))
            self._buffer.clear()

    def write_record(self, record: Dict[str, Any]) -> None:
        """Append one raw body record (event or marker)."""
        if self._closed:
            raise TraceFormatError("writer already closed")
        if record.get("kind") == KIND_EVENT:
            key = str(record.get("type"))
            self.event_counts[key] = self.event_counts.get(key, 0) + 1
        self._write_line(record)
        self.records_written += 1

    def write_event(
        self,
        event: GuestEvent,
        task: Optional[DerivedTaskInfo] = None,
        parent: Optional[DerivedTaskInfo] = None,
    ) -> None:
        self.write_record(event_to_record(event, task=task, parent=parent))

    def close(self, end_ns: Optional[int] = None) -> None:
        if self._closed:
            return
        footer = {
            "kind": KIND_FOOTER,
            "event_counts": dict(self.event_counts),
            "end_ns": end_ns if end_ns is not None else self.header.end_ns,
        }
        self._write_line(footer)
        self.flush()
        self._fh.close()
        self._closed = True
        self.header.event_counts = dict(self.event_counts)
        if end_ns is not None:
            self.header.end_ns = end_ns

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TraceReader:
    """Streaming reader; yields raw body records in file order.

    Malformed *lines* are counted and skipped (a torn JSONL tail from a
    crashed recorder should not kill replay), but a broken *stream* —
    truncated gzip, corrupt deflate data, trailing garbage after the
    compressed member — raises :class:`TraceFormatError` naming the
    last record successfully read: the bytes after that point are
    unrecoverable, and silently ending there would pass truncation off
    as a complete trace.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._fh = _open(self.path, "r")
        self.footer: Optional[Dict[str, Any]] = None
        self.malformed_lines = 0
        #: Body records yielded so far (the in-band header is not one).
        self.records_read = 0
        try:
            first = self._fh.readline()
        except _STREAM_ERRORS as exc:
            self._fh.close()
            raise TraceFormatError(
                f"{self.path}: unreadable trace header "
                f"(corrupt or truncated stream): {exc}"
            ) from exc
        if not first.strip():
            self._fh.close()
            raise TraceFormatError(f"{self.path}: empty trace file")
        #: The verbatim header line (sans newline): what format
        #: conversion carries through so round trips stay byte-exact.
        self.header_line = first.rstrip("\n")
        try:
            self.header = TraceHeader.from_record(
                self._parse(first, strict=True)
            )
        except TraceFormatError:
            self._fh.close()
            raise

    # ------------------------------------------------------------------
    def _parse(self, line: str, strict: bool = False) -> Dict[str, Any]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{self.path}: bad JSON line: {exc}") from exc
        if strict and not isinstance(record, dict):
            raise TraceFormatError(f"{self.path}: record is not an object")
        return record

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        """Yield body records; unparseable lines are counted, not raised
        (a torn tail from a crashed recorder should not kill replay).
        A broken stream raises :class:`TraceFormatError` instead —
        see the class docstring for the line/stream distinction."""
        try:
            while True:
                try:
                    line = self._fh.readline()
                except _STREAM_ERRORS as exc:
                    raise TraceFormatError(
                        f"{self.path}: corrupt or truncated stream "
                        f"after record {self.records_read}: {exc}",
                        records_read=self.records_read,
                    ) from exc
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    record = self._parse(line)
                except TraceFormatError:
                    self.malformed_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.malformed_lines += 1
                    continue
                kind = record.get("kind")
                if kind == KIND_FOOTER:
                    self.footer = record
                    counts = record.get("event_counts")
                    if isinstance(counts, dict) and not self.header.event_counts:
                        self.header.event_counts = {
                            str(k): int(v) for k, v in counts.items()
                        }
                    end_ns = record.get("end_ns")
                    if isinstance(end_ns, int) and self.header.end_ns is None:
                        self.header.end_ns = end_ns
                    continue
                if kind == KIND_HEADER:  # duplicated header: corrupt, skip
                    self.malformed_lines += 1
                    continue
                self.records_read += 1
                yield record
        finally:
            self._fh.close()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ======================================================================
# Whole-trace convenience
# ======================================================================
def save_trace(path: str, trace: Trace) -> None:
    """Write a complete in-memory trace; the header carries the counts."""
    trace.recount()
    with _open(str(path), "w") as fh:
        fh.write(_encode(trace.header.to_record()) + "\n")
        # Batched line assembly: one write per batch, not two per record.
        batch: List[str] = []
        for record in trace.records:
            batch.append(_encode(record) + "\n")
            if len(batch) >= 256:
                fh.write("".join(batch))
                batch.clear()
        if batch:
            fh.write("".join(batch))


def load_trace(path: str) -> Trace:
    """Read a whole trace into memory (header counts folded in)."""
    reader = TraceReader(path)
    records: List[Dict[str, Any]] = list(reader)
    trace = Trace(header=reader.header, records=records)
    if not trace.header.event_counts:
        trace.recount()
    return trace


def loads_trace(text: str) -> Trace:
    """Parse a JSONL string into a trace (inverse of :func:`dumps_trace`).

    Line semantics match :class:`TraceReader` — malformed body lines
    are skipped, footer counts fold into the header — but the text is
    already in memory, so there is no byte stream left to break: only a
    missing/invalid header raises.  This is what lets ``repro.obs``
    accept a trace on stdin (``report -``).
    """
    lines = iter(text.splitlines())
    header: Optional[TraceHeader] = None
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"<stream>: bad trace header line: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise TraceFormatError("<stream>: header record is not an object")
        header = TraceHeader.from_record(record)
        break
    if header is None:
        raise TraceFormatError("<stream>: empty trace input")
    records: List[Dict[str, Any]] = []
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        kind = record.get("kind")
        if kind == KIND_FOOTER:
            counts = record.get("event_counts")
            if isinstance(counts, dict) and not header.event_counts:
                header.event_counts = {
                    str(k): int(v) for k, v in counts.items()
                }
            end_ns = record.get("end_ns")
            if isinstance(end_ns, int) and header.end_ns is None:
                header.end_ns = end_ns
            continue
        if kind == KIND_HEADER:  # duplicated header: corrupt, skip
            continue
        records.append(record)
    trace = Trace(header=header, records=records)
    if not trace.header.event_counts:
        trace.recount()
    return trace


def dumps_trace(trace: Trace) -> str:
    """Serialize a trace to a JSONL string (tests, goldens)."""
    trace.recount()
    lines = [_encode(trace.header.to_record())]
    lines.extend(_encode(record) for record in trace.records)
    lines.append("")  # trailing newline
    return "\n".join(lines)
