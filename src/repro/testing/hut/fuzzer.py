"""The hypervisor-under-test fuzzing loop: coverage-guided, sharded,
byte-reproducible.

Structure mirrors :mod:`repro.testing.fuzzer` (the auditor-conformance
fuzzer) with the differential pair swapped: candidates are op programs,
execution is the real machine/hypervisor stack, and the oracle is the
three-way check of :mod:`repro.testing.hut.oracle` instead of auditor
ground truth.

Reproducibility contract: a campaign is a pure function of
``(target, seed, budget, bug)``.  Internally the campaign ALWAYS runs
as :data:`HUT_SHARDS` independent shards — each a pure function of its
derived ``(shard seed, shard budget)`` — merged in shard order.  The
shard split does not depend on the job count, and
:func:`repro.parallel.parallel_map` returns ``[fn(s) for s in shards]``
at any job count, so ``--jobs 1`` and ``--jobs 2`` are byte-identical
by construction (asserted in ``tests/test_hut_fuzzer.py``).

Coverage features are *execution shapes* (op outcome, per-vCPU op
adjacency, exit reasons reached, rejection classes) rather than
branches — the hut analogue of the stream-shape features in
:mod:`repro.testing.coverage`, reusing its :class:`CoverageMap`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.parallel import derive_seed, parallel_map
from repro.sim.perturb import interleave_perturbation
from repro.sim.rng import RandomStreams
from repro.testing.coverage import CoverageMap
from repro.testing.hut.bugs import SEEDED_BUGS
from repro.testing.hut.harness import HutHarness
from repro.testing.hut.mutators import mutate_program
from repro.testing.hut.oracle import evaluate
from repro.testing.hut.program import (
    TARGETS,
    HutOp,
    HutProgram,
    generate_program,
)
from repro.testing.hut.reference import ReferenceModel
from repro.testing.shrink import ddmin

#: Fixed shard count — part of the determinism contract, never derived
#: from the job count.
HUT_SHARDS = 2


@dataclass
class HutFuzzConfig:
    """One hut campaign's parameters."""

    target: str = "ept"
    seed: int = 0
    #: Candidate executions across all shards (iteration 0 of each
    #: shard is its unmutated generated baseline).
    budget: int = 60
    #: Ops in each shard's baseline program.
    length: int = 48
    #: Mutation operators applied per candidate.
    mutations: int = 2
    #: Per-shard seed-pool cap.
    max_pool: int = 24
    #: Inject this seeded bug into every harness (mutation-kill audit).
    bug: Optional[str] = None

    def __post_init__(self) -> None:
        if self.target not in TARGETS:
            raise ValueError(f"unknown hut target {self.target!r}")
        if self.bug is not None and self.bug not in SEEDED_BUGS:
            raise ValueError(f"unknown seeded bug {self.bug!r}")


@dataclass
class HutFuzzResult:
    """Merged campaign outcome."""

    config: HutFuzzConfig
    executions: int = 0
    crashes: int = 0
    #: One dict per *unique* finding key, in discovery order (shard
    #: order, then iteration order within the shard).
    findings: List[Dict[str, Any]] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    #: Witness program per finding key (the first candidate that
    #: exhibited it).
    programs: Dict[str, HutProgram] = field(default_factory=dict)

    @property
    def unique_keys(self) -> List[str]:
        return sorted(f["key"] for f in self.findings)

    def report(self) -> Dict[str, Any]:
        """Canonical JSON-ready summary (what ``hut-fuzz`` prints;
        byte-compared by the reproducibility tests)."""
        return {
            "target": self.config.target,
            "seed": self.config.seed,
            "budget": self.config.budget,
            "bug": self.config.bug,
            "shards": HUT_SHARDS,
            "executions": self.executions,
            "crashes": self.crashes,
            "coverage_features": len(self.coverage),
            "findings": self.findings,
        }


# ======================================================================
# Candidate execution
# ======================================================================
def run_candidate(
    program: HutProgram,
    bug: Optional[str] = None,
    perturb_seed: Optional[int] = None,
) -> Tuple[List[Any], Set[str], HutHarness]:
    """Execute one candidate through the full differential pair.

    Runs the real stack, the reference model, and — when
    ``perturb_seed`` is given — a second real-stack run under a
    same-instant interleave shuffle; returns ``(findings, coverage
    features, the baseline harness)``.
    """
    injector = SEEDED_BUGS[bug] if bug is not None else None
    harness = HutHarness(program, bug=injector)
    harness.run()
    reference = ReferenceModel(program)
    reference.run()

    perturbed_digest = None
    if perturb_seed is not None:
        perturbed = HutHarness(
            program,
            perturb=interleave_perturbation(perturb_seed),
            bug=injector,
        )
        perturbed.run()
        perturbed_digest = perturbed.digest()

    findings = evaluate(
        program.target, harness, reference.digest(), perturbed_digest
    )

    features: Set[str] = set()
    prev_by_vcpu: Dict[int, str] = {}
    for vcpu, _seq, op, status, _value in harness.execution.results:
        features.add(f"op:{op}:{status}")
        if status.startswith("reject:"):
            features.add(f"reject:{status.split(':', 1)[1]}")
        prev = prev_by_vcpu.get(vcpu)
        if prev is not None:
            features.add(f"t:{prev}>{op}")
        prev_by_vcpu[vcpu] = op
    for reason, count in harness.kvm.exit_reason_counts().items():
        features.add(f"exit:{reason}")
        if count > 1:
            features.add(f"exit:{reason}:multi")
    if harness.machine.ept.violations:
        features.add("viol")
    if harness.execution.crash is not None:
        features.add(f"crash:{harness.execution.crash['error']}")
    return findings, features, harness


# ======================================================================
# Shard loop (pure in its task tuple; runs in worker processes)
# ======================================================================
def _shard_loop(
    target: str,
    shard_seed: int,
    budget: int,
    length: int,
    mutations: int,
    max_pool: int,
    bug: Optional[str],
) -> Dict[str, Any]:
    rng = RandomStreams(shard_seed).stream("hut-fuzz")
    coverage = CoverageMap()
    findings: List[Dict[str, Any]] = []
    programs: Dict[str, List[Dict[str, Any]]] = {}
    crashes = 0
    executions = 0
    pool: List[HutProgram] = [
        generate_program(target, shard_seed, length=length)
    ]

    for iteration in range(budget):
        if iteration == 0:
            candidate, applied = pool[0], []
        else:
            parent = pool[rng.randrange(len(pool))]
            candidate, applied = mutate_program(parent, rng, mutations)
        perturb_seed = (
            rng.randrange(2**31) if target == "interleave" else None
        )
        found, features, _harness = run_candidate(
            candidate, bug=bug, perturb_seed=perturb_seed
        )
        executions += 1
        candidate_cov = CoverageMap(features)
        if coverage.merge(candidate_cov) and len(pool) < max_pool:
            if iteration > 0:
                pool.append(candidate)
        known = {f["key"] for f in findings}
        for disc in found:
            if disc.kind == "crash":
                crashes += 1
            entry = disc.as_dict()
            if entry["key"] in known:
                continue
            known.add(entry["key"])
            entry.update(
                target=target,
                bug=bug,
                iteration=iteration,
                mutators=list(applied),
                perturb_seed=perturb_seed,
                ops=len(candidate.ops),
            )
            findings.append(entry)
            programs[entry["key"]] = [
                op.to_record() for op in candidate.ops
            ]
    return {
        "executions": executions,
        "crashes": crashes,
        "findings": findings,
        "programs": programs,
        "coverage": coverage.sorted_features(),
        "num_vcpus": pool[0].num_vcpus,
    }


def _hut_shard_task(task: Tuple) -> Dict[str, Any]:
    """Picklable per-shard entry point for the parallel executor."""
    return _shard_loop(*task)


# ======================================================================
# Campaign
# ======================================================================
def fuzz_hut(
    config: HutFuzzConfig, jobs: Optional[int] = None
) -> HutFuzzResult:
    """Run one campaign as :data:`HUT_SHARDS` shards, merged in order."""
    base = config.budget // HUT_SHARDS
    extra = config.budget % HUT_SHARDS
    tasks = []
    for shard in range(HUT_SHARDS):
        shard_budget = base + (1 if shard < extra else 0)
        if shard_budget == 0:
            continue
        tasks.append((
            config.target,
            derive_seed(config.seed, "hut", config.target, shard),
            shard_budget,
            config.length,
            config.mutations,
            config.max_pool,
            config.bug,
        ))
    shard_results = parallel_map(_hut_shard_task, tasks, jobs=jobs)

    result = HutFuzzResult(config=config)
    known: Set[str] = set()
    for shard, shard_result in enumerate(shard_results):
        result.executions += shard_result["executions"]
        result.crashes += shard_result["crashes"]
        result.coverage.merge(CoverageMap(shard_result["coverage"]))
        for entry in shard_result["findings"]:
            if entry["key"] in known:
                continue
            known.add(entry["key"])
            entry = dict(entry)
            entry["shard"] = shard
            result.findings.append(entry)
            result.programs[entry["key"]] = HutProgram(
                target=config.target,
                seed=config.seed,
                num_vcpus=shard_result["num_vcpus"],
                ops=[
                    HutOp.from_record(record)
                    for record in shard_result["programs"][entry["key"]]
                ],
            )
    return result


# ======================================================================
# Shrinking
# ======================================================================
class HutFindingPredicate:
    """Picklable "does this op subset still exhibit the finding?".

    Instances are module-level-class objects, so :func:`ddmin` can ship
    them to worker processes when shrinking with ``jobs > 1``.
    """

    def __init__(
        self,
        template: HutProgram,
        key: str,
        bug: Optional[str] = None,
        perturb_seed: Optional[int] = None,
    ) -> None:
        self.template = template.replace_ops([])
        self.key = key
        self.bug = bug
        self.perturb_seed = perturb_seed

    def __call__(self, ops: List[HutOp]) -> bool:
        program = self.template.replace_ops(ops)
        try:
            findings, _features, _harness = run_candidate(
                program, bug=self.bug, perturb_seed=self.perturb_seed
            )
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return False
        return any(f.key() == self.key for f in findings)


def shrink_finding(
    program: HutProgram,
    key: str,
    bug: Optional[str] = None,
    perturb_seed: Optional[int] = None,
    max_tests: int = 400,
    jobs: Optional[int] = None,
) -> HutProgram:
    """ddmin the witness program down to a 1-minimal repro of ``key``.

    Raises ``ValueError`` when the finding does not reproduce on the
    unshrunk program (same contract as :func:`~repro.testing.shrink.ddmin`).
    """
    predicate = HutFindingPredicate(
        program, key, bug=bug, perturb_seed=perturb_seed
    )
    reduced = ddmin(
        list(program.ops), predicate, max_tests=max_tests, jobs=jobs
    )
    return program.replace_ops(reduced)
