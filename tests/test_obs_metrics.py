"""Unit tests for the repro.obs registry, export and diff machinery."""

from __future__ import annotations

import pytest

from repro.core.events import EventType, IOEvent
from repro.hw.exits import GuestStateSnapshot
from repro.errors import TraceFormatError
from repro.obs.metrics import (
    BUCKET_BOUNDS_NS,
    STAGE_COUNTER_LABELS,
    MetricsRegistry,
    merge_snapshots,
    metric_scope,
)
from repro.obs.report import (
    diff_rows,
    export_lines,
    parse_export,
    top_rows,
)
from repro.sim.clock import MICROSECOND, MILLISECOND


class TestCounters:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        reg.inc("exits", vm="vm0", reason="IO")
        reg.inc("exits", n=4, vm="vm0", reason="IO")
        assert reg.value("exits", vm="vm0", reason="IO") == 5
        assert reg.value("exits", vm="vm0", reason="HLT") == 0

    def test_total_sums_matching_rows(self):
        reg = MetricsRegistry()
        reg.inc("exits", vm="vm0", reason="IO")
        reg.inc("exits", vm="vm0", reason="HLT")
        reg.inc("exits", vm="vm1", reason="IO")
        assert reg.total("exits") == 3
        assert reg.total("exits", vm="vm0") == 2
        assert reg.total("exits", reason="IO") == 2

    def test_cached_handle_is_the_same_cell(self):
        reg = MetricsRegistry()
        cell = reg.counter("flow.published", vm="vm0", type="io")
        cell.inc()
        cell.inc(2)
        assert reg.value("flow.published", vm="vm0", type="io") == 3

    def test_label_values_coerced_to_str(self):
        reg = MetricsRegistry()
        reg.inc("exits", vm="vm0", vcpu=1)
        assert reg.value("exits", vm="vm0", vcpu="1") == 1

    def test_reset_is_prefix_confined(self):
        reg = MetricsRegistry()
        reg.inc("em.submitted", vm="vm0", reason="IO")
        reg.inc("em.delivered", vm="vm0", reason="IO")
        reg.inc("exits", vm="vm0", reason="IO")
        removed = reg.reset(name_prefix="em.", vm="vm0")
        assert removed == 2
        assert reg.total("em.submitted") == 0
        # The prefix keeps the reset away from other components' rows.
        assert reg.value("exits", vm="vm0", reason="IO") == 1

    def test_reset_by_labels_only(self):
        reg = MetricsRegistry()
        reg.inc("em.submitted", vm="vm0", reason="IO")
        reg.inc("em.submitted", vm="vm1", reason="IO")
        reg.reset(name_prefix="em.", vm="vm0")
        assert reg.total("em.submitted", vm="vm1") == 1


class TestHistograms:
    def test_bucket_placement(self):
        reg = MetricsRegistry()
        hist = reg.histogram("latency.exit_to_verdict_ns", vm="vm0")
        hist.observe(500)  # below the first bound (1 us)
        hist.observe(5 * MICROSECOND)
        hist.observe(50 * MILLISECOND)
        hist.observe(BUCKET_BOUNDS_NS[-1] * 10)  # overflow cell
        assert hist.count == 4
        assert hist.buckets[0] == 1
        assert hist.buckets[1] == 1
        assert hist.buckets[-1] == 1
        assert hist.min == 500
        assert hist.max == BUCKET_BOUNDS_NS[-1] * 10

    def test_mean(self):
        reg = MetricsRegistry()
        reg.observe("latency.exit_to_verdict_ns", 10, vm="vm0")
        reg.observe("latency.exit_to_verdict_ns", 30, vm="vm0")
        hist = reg.histogram("latency.exit_to_verdict_ns", vm="vm0")
        assert hist.mean == 20.0

    def test_merge_adds_cellwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.observe("h", 100, vm="vm0")
        b.observe("h", 2 * MILLISECOND, vm="vm0")
        a.merge(b.snapshot())
        hist = a.histogram("h", vm="vm0")
        assert hist.count == 2
        assert hist.sum == 100 + 2 * MILLISECOND
        assert hist.min == 100
        assert hist.max == 2 * MILLISECOND


class TestSpans:
    def _event(self, t_ns):
        snap = GuestStateSnapshot(
            cr3=0, tr_base=0, rsp=0, rip=0, rax=0, rbx=0, rcx=0,
            rdx=0, rsi=0, rdi=0, cpl=0,
        )
        return IOEvent(
            time_ns=t_ns, vcpu_index=0, vm_id="vm0", hw_state=snap
        )

    def test_span_capture_and_hops(self):
        reg = MetricsRegistry()
        reg.span_begin(self._event(1000))
        reg.span_hop("deliver", 1000, "goshd")
        reg.span_hop("verdict", 1200, "goshd", "hang")
        reg.span_end()
        assert len(reg.spans) == 1
        span = reg.spans[0]
        assert span["type"] == "io"
        assert span["hops"] == [
            ["deliver", 1000, "goshd"],
            ["verdict", 1200, "goshd", "hang"],
        ]

    def test_span_limit_bounds_capture(self):
        reg = MetricsRegistry(span_limit=3)
        for i in range(10):
            reg.span_begin(self._event(i))
            reg.span_hop("deliver", i, "a")
            reg.span_end()
        assert len(reg.spans) == 3
        # Beyond the limit, hops must not attach to stale spans.
        reg.span_hop("deliver", 99, "late")
        assert all(
            hop[1] != 99 for span in reg.spans for hop in span["hops"]
        )


class TestSnapshotMerge:
    def test_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("flow.published", vm="vm0", type="io")
        reg.observe("h", 5, vm="vm0")
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()

    def test_merge_snapshots_in_order(self):
        parts = []
        for seed in range(3):
            reg = MetricsRegistry()
            reg.inc("flow.published", n=seed + 1, vm="vm0", type="io")
            parts.append(reg.snapshot())
        merged = merge_snapshots(parts)
        assert merged.value("flow.published", vm="vm0", type="io") == 6

    def test_snapshot_rows_are_canonically_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z", vm="vm1")
        reg.inc("a", vm="vm0")
        names = [row[0] for row in reg.snapshot()["counters"]]
        assert names == sorted(names)


class TestScopesAndCoverage:
    def test_scope_partition(self):
        assert metric_scope("exits") == "host"
        assert metric_scope("ef.forwarded") == "host"
        assert metric_scope("em.submitted") == "host"
        assert metric_scope("heartbeat.sampled") == "host"
        assert metric_scope("flow.published") == "pipeline"
        assert metric_scope("verdicts") == "pipeline"
        assert metric_scope("latency.exit_to_verdict_ns") == "pipeline"
        assert metric_scope("trace.records_salvaged") == "pipeline"

    def test_every_event_type_has_a_stage_counter(self):
        # The static event-coverage rule enforces this from the AST;
        # this is the runtime mirror of the same invariant.
        assert set(STAGE_COUNTER_LABELS) == set(EventType)


class TestExportAndDiff:
    def _snapshot(self):
        reg = MetricsRegistry()
        reg.inc("exits", vm="vm0", reason="IO")  # host scope
        reg.inc("flow.published", vm="vm0", type="io")
        reg.observe("latency.exit_to_verdict_ns", 7, vm="vm0", auditor="a")
        return reg.snapshot()

    def test_default_scope_excludes_host_rows(self):
        lines = export_lines(self._snapshot())
        assert not any('"exits"' in line for line in lines)
        assert any('"flow.published"' in line for line in lines)

    def test_all_scope_includes_everything(self):
        lines = export_lines(self._snapshot(), scope="all")
        assert any('"exits"' in line for line in lines)
        assert any('"flow.published"' in line for line in lines)

    def test_parse_export_round_trip(self):
        lines = export_lines(self._snapshot(), scope="all")
        rows = parse_export(lines)
        assert len(rows) == len(lines)
        assert {row["kind"] for row in rows} == {"counter", "hist"}

    def test_parse_export_rejects_garbage(self):
        with pytest.raises(TraceFormatError):
            parse_export(["not json"])
        with pytest.raises(TraceFormatError):
            parse_export(['{"no_kind": 1}'])

    def test_diff_rows_flags_changed_and_missing(self):
        a = parse_export(export_lines(self._snapshot()))
        reg = MetricsRegistry.from_snapshot(self._snapshot())
        reg.inc("flow.published", vm="vm0", type="io")
        reg.inc("verdicts", vm="vm0", auditor="a", kind="hang")
        b = parse_export(export_lines(reg.snapshot()))
        differences = diff_rows(a, b)
        assert any(line.startswith("changed:") for line in differences)
        assert any(line.startswith("only in B:") for line in differences)
        assert diff_rows(a, a) == []

    def test_top_rows_orders_by_value(self):
        reg = MetricsRegistry()
        reg.inc("flow.published", n=5, vm="vm0", type="io")
        reg.inc("flow.delivered", n=9, vm="vm0", auditor="a", type="io")
        rows = parse_export(export_lines(reg.snapshot()))
        top = top_rows(rows, limit=1)
        assert top[0][0] == 9
        assert top[0][1].startswith("flow.delivered")
