"""Guest OS Hang Detection (GOSHD), Section VII-A.

Failure model: the OS is *hung* when it ceases to schedule tasks.  On a
multiprocessor VM the hang may cover only a subset of vCPUs (a
*partial* hang) — invisible to heartbeats, whose generating thread may
still be scheduled on a healthy vCPU.

Mechanism: the thread-switch interception of Fig 3B guarantees every
context switch produces an event.  GOSHD timestamps the last switch
per vCPU; silence beyond a threshold (twice the profiled maximum
scheduling timeslice — 4 s for the paper's SUSE guest and for ours)
flags that vCPU as hung.  vCPUs are monitored independently, which is
exactly what makes partial-hang detection work.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.auditor import Auditor
from repro.core.events import EventType, GuestEvent, ThreadSwitchEvent
from repro.sim.clock import MILLISECOND, SECOND

#: Twice the profiled maximum scheduling timeslice (Section VIII-A1).
DEFAULT_THRESHOLD_NS = 4 * SECOND
DEFAULT_CHECK_PERIOD_NS = 500 * MILLISECOND


class GuestOSHangDetector(Auditor):
    """Per-vCPU hang detector over thread-switch events."""

    name = "goshd"
    subscriptions = {EventType.THREAD_SWITCH}

    def __init__(
        self,
        threshold_ns: int = DEFAULT_THRESHOLD_NS,
        check_period_ns: int = DEFAULT_CHECK_PERIOD_NS,
    ) -> None:
        super().__init__()
        self.threshold_ns = threshold_ns
        self.check_period_ns = check_period_ns
        self._last_switch_ns: Dict[int, int] = {}
        self.hung_vcpus: Set[int] = set()
        self.first_hang_time_ns: Optional[int] = None
        self.full_hang_time_ns: Optional[int] = None
        self._running = False

    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        now = self.hypertap.machine.clock.now
        for vcpu in self.hypertap.machine.vcpus:
            self._last_switch_ns[vcpu.index] = now
        self._running = True
        self.hypertap.engine.schedule(
            self.check_period_ns, self._check, label="goshd-check"
        )

    def on_detach(self) -> None:
        self._running = False

    # ------------------------------------------------------------------
    def audit(self, event: GuestEvent) -> None:
        if not isinstance(event, ThreadSwitchEvent):
            return
        self._last_switch_ns[event.vcpu_index] = event.time_ns
        if event.vcpu_index in self.hung_vcpus:
            # Scheduling resumed: the hang was transient after all.
            self.hung_vcpus.discard(event.vcpu_index)
            self.raise_alert("vcpu_recovered", vcpu=event.vcpu_index)
            if not self.hung_vcpus:
                self.full_hang_time_ns = None

    def _check(self) -> None:
        if not self._running:
            return
        machine = self.hypertap.machine
        now = machine.clock.now
        for vcpu in machine.vcpus:
            last = self._last_switch_ns.get(vcpu.index, 0)
            if now - last > self.threshold_ns and vcpu.index not in self.hung_vcpus:
                self.hung_vcpus.add(vcpu.index)
                if self.first_hang_time_ns is None:
                    self.first_hang_time_ns = now
                self.raise_alert(
                    "vcpu_hang",
                    vcpu=vcpu.index,
                    silent_for_ns=now - last,
                    partial=not self.is_full_hang,
                )
        if self.is_full_hang and self.full_hang_time_ns is None:
            self.full_hang_time_ns = now
        self.hypertap.engine.schedule(
            self.check_period_ns, self._check, label="goshd-check"
        )

    # ------------------------------------------------------------------
    @property
    def is_partial_hang(self) -> bool:
        """Some, but not all, vCPUs stopped scheduling."""
        total = len(self.hypertap.machine.vcpus) if self.hypertap else 0
        return 0 < len(self.hung_vcpus) < total

    @property
    def is_full_hang(self) -> bool:
        total = len(self.hypertap.machine.vcpus) if self.hypertap else 0
        return total > 0 and len(self.hung_vcpus) == total

    @property
    def hang_detected(self) -> bool:
        return bool(self.hung_vcpus)

    def hang_alerts(self) -> List[dict]:
        return [a for a in self.alerts if a["kind"] == "vcpu_hang"]


def profile_hang_threshold(
    testbed,
    duration_s: float = 10.0,
    safety_factor: float = 2.0,
) -> int:
    """Derive the GOSHD threshold the way the paper does (§VIII-A1):
    run the guest failure-free, measure the maximum observed interval
    between context switches on any vCPU, and multiply by a safety
    factor ("twice the profiled time").

    Returns the threshold in nanoseconds.  Run the intended workload
    on the testbed before calling so the profile reflects production
    scheduling behaviour.
    """
    from repro.sim.clock import MILLISECOND, SECOND

    kernel = testbed.kernel
    last = {cpu.index: kernel.machine.clock.now for cpu in kernel.cpus}
    switch_counts = {
        cpu.index: cpu.context_switches for cpu in kernel.cpus
    }
    max_gap = 0
    deadline = testbed.engine.clock.now + int(duration_s * SECOND)
    while testbed.engine.clock.now < deadline:
        testbed.engine.run_for(50 * MILLISECOND)
        now = testbed.engine.clock.now
        for cpu in kernel.cpus:
            if cpu.context_switches != switch_counts[cpu.index]:
                switch_counts[cpu.index] = cpu.context_switches
                last[cpu.index] = cpu.last_switch_ns
            gap = now - last[cpu.index]
            if gap > max_gap:
                max_gap = gap
    return int(max_gap * safety_factor)
