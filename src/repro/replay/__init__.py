"""Deterministic exit-event record & replay (the IRIS use case).

HyperTap's auditors are pure consumers of the unified derived-event
stream.  This package makes that stream a first-class artifact:

* :mod:`repro.replay.format` — versioned, schema-checked JSONL codec
  for every :class:`~repro.core.events.GuestEvent` class;
* :mod:`repro.replay.trace_io` — streaming :class:`TraceWriter` /
  :class:`TraceReader` with gzip support and an in-band header;
* :mod:`repro.replay.recorder` — a recording auditor plus named
  scenarios that produce replayable traces from live simulations;
* :mod:`repro.replay.source` — a :class:`ReplaySource` that re-audits
  a trace through unmodified auditors, no ``Machine`` required;
* :mod:`repro.replay.mutate` — seeded trace mutations for fuzzing the
  monitoring stack against malformed streams.

CLI: ``python -m repro.replay {record,replay,fuzz,list}``.
"""

from repro.replay.format import (
    FORMAT_VERSION,
    Trace,
    TraceHeader,
    normalize_alerts,
)
from repro.replay.mutate import MUTATION_OPERATORS, TraceMutator
from repro.replay.recorder import (
    SCENARIOS,
    RecordingAuditor,
    record_scenario,
)
from repro.replay.source import ReplayReport, ReplaySource
from repro.replay.trace_io import TraceReader, TraceWriter, load_trace, save_trace

__all__ = [
    "FORMAT_VERSION",
    "MUTATION_OPERATORS",
    "RecordingAuditor",
    "ReplayReport",
    "ReplaySource",
    "SCENARIOS",
    "Trace",
    "TraceHeader",
    "TraceMutator",
    "TraceReader",
    "TraceWriter",
    "load_trace",
    "normalize_alerts",
    "record_scenario",
    "save_trace",
]
