"""CLI: ``python -m repro.testing {fuzz,shrink,corpus,report}``.

* ``fuzz``   — run a seeded coverage-guided campaign, write findings as
  JSONL (byte-reproducible for a given ``--seed``/``--budget``); with
  ``--corpus-dir``, exit non-zero only on findings whose key is not
  already covered by a checked-in (shrunk) corpus entry — the nightly
  contract;
* ``shrink`` — reduce a failing trace (or the built-in seeded
  known-miss) to a minimal reproducer and optionally save it as a
  corpus entry;
* ``corpus`` — list or re-verify the checked-in regression entries;
* ``report`` — summarize a findings JSONL by key/kind/auditor.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import TraceFormatError
from repro.replay.recorder import SCENARIOS
from repro.replay.trace_io import load_trace, save_trace
from repro.testing.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_entries,
    corpus_keys,
    save_finding,
    verify_entry,
)
from repro.testing.fuzzer import FuzzConfig, Fuzzer
from repro.testing.oracle import Discrepancy
from repro.testing.seeds import AUDITOR_SCENARIOS, known_miss_trace
from repro.testing.shrink import (
    make_finding_predicate,
    materialize_schedule,
    shrink_trace,
)


def _findings_lines(findings: List[dict]) -> List[str]:
    return [json.dumps(f, sort_keys=True) for f in findings]


# ======================================================================
# Subcommands
# ======================================================================
def cmd_fuzz(args) -> int:
    scenario = args.scenario
    if args.auditor:
        scenario = AUDITOR_SCENARIOS[args.auditor]
    config = FuzzConfig(
        scenario=scenario,
        seed=args.seed,
        budget=args.budget,
        mutations=args.mutations,
        perturb=not args.no_perturb,
        artifacts_dir=args.artifacts,
    )
    result = Fuzzer(config).run()

    lines = _findings_lines(result.findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
    print(f"fuzzed scenario {scenario!r}: {result.iterations} replays "
          f"(seed {config.seed})")
    print(f"  coverage features:  {len(result.coverage)} "
          f"({result.coverage_events} iterations added new ones)")
    print(f"  seed pool:          {result.pool_size} traces")
    print(f"  findings:           {len(result.findings)} "
          f"({len(result.unique_keys)} unique keys)")
    for key in result.unique_keys:
        print(f"    {key}")
    if args.out:
        print(f"  findings written to {args.out}")

    if args.corpus_dir is not None:
        known = set(corpus_keys(args.corpus_dir))
        new = [k for k in result.unique_keys if k not in known]
        if new:
            print(f"NEW unshrunk findings (not in {args.corpus_dir}):",
                  file=sys.stderr)
            for key in new:
                print(f"  {key}", file=sys.stderr)
            print("shrink each with `python -m repro.testing shrink` and "
                  "check the result into the corpus.", file=sys.stderr)
            return 1
        print(f"  all finding keys already covered by {args.corpus_dir}")
        return 0
    return 0


def cmd_shrink(args) -> int:
    if args.known_miss:
        trace, key = known_miss_trace(seed=args.seed)
        perturb_params = None
    else:
        if not args.trace:
            print("error: provide a trace file or --known-miss",
                  file=sys.stderr)
            return 2
        trace = load_trace(args.trace)
        finding = trace.header.meta.get("finding") or {}
        key = args.key or finding.get("key")
        perturb_params = finding.get("perturb")
        if key is None:
            print("error: no --key given and none recorded in the trace "
                  "header", file=sys.stderr)
            return 2

    # A perturbation finding shrinks poorly (removing records shifts
    # the seeded schedule): bake the adversarial delivery order into
    # the trace first, when the finding survives materialization.
    if perturb_params:
        materialized = materialize_schedule(trace, perturb_params)
        if make_finding_predicate(key)(materialized):
            print("materialized the perturbed schedule into the trace")
            trace, perturb_params = materialized, None

    original = len(trace.records)
    predicate = make_finding_predicate(key, perturb_params=perturb_params)
    reduced = shrink_trace(trace, predicate, max_tests=args.max_tests)
    ratio = len(reduced.records) / max(1, original)
    print(f"shrunk {original} -> {len(reduced.records)} records "
          f"({ratio:.1%}) for {key}")

    if args.corpus_dir is not None:
        kind, auditor, subject_txt = key.split(":", 2)
        subject = {}
        for part in subject_txt.split(","):
            if "=" in part:
                k, v = part.split("=", 1)
                subject[k] = int(v) if v.lstrip("-").isdigit() else v
        path = save_finding(
            args.corpus_dir,
            reduced,
            Discrepancy(kind=kind, auditor=auditor, subject=subject),
            perturb_params=perturb_params,
            original_records=original,
        )
        print(f"saved corpus entry {path}")
    elif args.out:
        save_trace(args.out, reduced)
        print(f"saved shrunk trace to {args.out}")
    return 0


def cmd_corpus(args) -> int:
    entries = corpus_entries(args.dir)
    if args.action == "list":
        if not entries:
            print(f"(no corpus entries under {args.dir})")
            return 0
        for path in entries:
            try:
                trace = load_trace(path)
                finding = trace.header.meta.get("finding") or {}
                print(f"{path}: {finding.get('key', '(no key)')} "
                      f"[{len(trace.records)} records]")
            except TraceFormatError as exc:
                print(f"{path}: UNREADABLE ({exc})")
        return 0
    # verify
    failures = 0
    for path in entries:
        ok, detail = verify_entry(path)
        status = "ok" if ok else "FAILED"
        print(f"{status:6s} {path}: {detail}")
        if not ok:
            failures += 1
    print(f"verified {len(entries)} entries, {failures} failures")
    return 1 if failures else 0


def cmd_report(args) -> int:
    by_key = {}
    total = 0
    with open(args.findings, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            total += 1
            by_key.setdefault(entry.get("key", "?"), []).append(entry)
    print(f"{total} findings, {len(by_key)} unique keys")
    for key in sorted(by_key):
        entries = by_key[key]
        iters = sorted(e.get("iteration", -1) for e in entries)
        print(f"  {key}: {len(entries)} occurrences "
              f"(first at iteration {iters[0]})")
        sample = entries[0]
        if sample.get("detail"):
            print(f"      {sample['detail']}")
    return 0


# ======================================================================
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Coverage-guided adversarial conformance harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="run a seeded fuzzing campaign")
    p_fuzz.add_argument("--scenario", default="exploit",
                        choices=sorted(SCENARIOS))
    p_fuzz.add_argument("--auditor", default=None,
                        choices=sorted(AUDITOR_SCENARIOS),
                        help="shorthand: pick the scenario exercising "
                             "this auditor")
    p_fuzz.add_argument("--budget", type=int, default=50,
                        help="number of mutated/perturbed replays")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--mutations", type=int, default=2)
    p_fuzz.add_argument("--no-perturb", action="store_true",
                        help="trace mutations only, no schedule "
                             "perturbation")
    p_fuzz.add_argument("--out", default=None,
                        help="write findings JSONL here")
    p_fuzz.add_argument("--artifacts", default=None,
                        help="save the first trace exhibiting each "
                             "finding key into this directory")
    p_fuzz.add_argument("--corpus-dir", default=None,
                        help="fail only on finding keys not already "
                             "covered by this corpus (nightly mode)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_shrink = sub.add_parser("shrink", help="minimize a failing trace")
    p_shrink.add_argument("trace", nargs="?", default=None)
    p_shrink.add_argument("--known-miss", action="store_true",
                          help="shrink the built-in seeded HRKD "
                               "known-miss instead of a file")
    p_shrink.add_argument("--key", default=None,
                          help="finding key to preserve (default: the "
                               "one recorded in the trace header)")
    p_shrink.add_argument("--seed", type=int, default=0,
                          help="seed for --known-miss")
    p_shrink.add_argument("--max-tests", type=int, default=2000)
    p_shrink.add_argument("--out", default=None,
                          help="write the shrunk trace here")
    p_shrink.add_argument("--corpus-dir", default=None,
                          help="save the shrunk trace as a corpus entry")
    p_shrink.set_defaults(func=cmd_shrink)

    p_corpus = sub.add_parser("corpus", help="list/verify regression "
                                             "entries")
    p_corpus.add_argument("action", choices=("list", "verify"))
    p_corpus.add_argument("--dir", default=DEFAULT_CORPUS_DIR)
    p_corpus.set_defaults(func=cmd_corpus)

    p_report = sub.add_parser("report", help="summarize a findings JSONL")
    p_report.add_argument("findings")
    p_report.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (TraceFormatError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
