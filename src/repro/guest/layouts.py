"""Guest kernel memory map and structure layouts.

These play the role of the Linux kernel's data-structure layout: the
offsets below are what VMI tools (and HyperTap's OS-state derivation)
compile in.  The paper's Section IV-B argument — that *changing* a
layout is far harder for an attacker than changing *values* — maps to
this module being import-time constant while the bytes in guest memory
are fully attacker-writable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import SimulationError

# ----------------------------------------------------------------------
# Guest virtual memory map (64-bit, Linux-like)
# ----------------------------------------------------------------------
#: Base of the kernel image mapping.
KERNEL_TEXT_BASE = 0xFFFF_FFFF_8100_0000
#: Size of the kernel image mapping.
KERNEL_TEXT_SIZE = 16 * 1024 * 1024
#: Guest-physical address the kernel image is loaded at.
KERNEL_TEXT_GPA = 0x0100_0000
#: Base of the direct map: GVA = DIRECT_MAP_BASE + GPA.
DIRECT_MAP_BASE = 0xFFFF_8880_0000_0000
#: First guest-physical byte handed to the kernel heap allocator.
KERNEL_HEAP_GPA_START = 0x0200_0000
#: SYSENTER target (the fast-syscall entry point) inside kernel text.
SYSENTER_ENTRY_GVA = KERNEL_TEXT_BASE + 0x8000
#: Legacy INT 0x80 entry point inside kernel text.
INT80_ENTRY_GVA = KERNEL_TEXT_BASE + 0x9000
#: A GVA known to be mapped in every live address space (used by the
#: process counting algorithm's validity probe, Fig 3A).
KNOWN_KERNEL_GVA = KERNEL_TEXT_BASE

#: Userspace layout for spawned processes.
USER_TEXT_BASE = 0x0000_0000_0040_0000
USER_STACK_TOP = 0x0000_7FFF_FF00_0000

#: Kernel stack size; thread_info sits at the stack bottom, RSP0 is the
#: stack top — so RSP0 - THREAD_SIZE recovers the thread_info address.
THREAD_SIZE = 16 * 1024

#: task_struct.flags bits.
PF_KTHREAD = 0x0020_0000


def direct_map_gva(gpa: int) -> int:
    """Kernel direct-map translation (GPA -> GVA)."""
    return DIRECT_MAP_BASE + gpa


def direct_map_gpa(gva: int) -> int:
    """Inverse direct-map translation (GVA -> GPA)."""
    if gva < DIRECT_MAP_BASE:
        raise SimulationError(f"GVA {gva:#x} is not in the direct map")
    return gva - DIRECT_MAP_BASE


# ----------------------------------------------------------------------
# Structure layout machinery
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FieldSpec:
    """One field of a guest structure."""

    offset: int
    size: int
    kind: str  # "u64" or "str"


class StructLayout:
    """Field offsets of one kernel structure."""

    def __init__(self, name: str, fields: Dict[str, Tuple[int, str]]) -> None:
        self.name = name
        self.fields: Dict[str, FieldSpec] = {}
        cursor = 0
        for fname, (size, kind) in fields.items():
            self.fields[fname] = FieldSpec(offset=cursor, size=size, kind=kind)
            cursor += size
        self.size = cursor

    def offset(self, field: str) -> int:
        return self.fields[field].offset

    def spec(self, field: str) -> FieldSpec:
        return self.fields[field]


#: The guest's ``task_struct``.  A circular doubly-linked list threads
#: every task through ``tasks_next``/``tasks_prev`` (Linux's
#: ``init_task.tasks`` list); rootkit DKOM unlinks entries from exactly
#: this list.
TASK_STRUCT = StructLayout(
    "task_struct",
    {
        "state": (8, "u64"),
        "pid": (8, "u64"),
        "tgid": (8, "u64"),
        "uid": (8, "u64"),
        "euid": (8, "u64"),
        "gid": (8, "u64"),
        "flags": (8, "u64"),
        "tasks_next": (8, "u64"),
        "tasks_prev": (8, "u64"),
        "mm": (8, "u64"),
        "stack": (8, "u64"),  # -> thread_info
        "parent": (8, "u64"),
        "start_time": (8, "u64"),
        "utime": (8, "u64"),
        "comm": (16, "str"),
        "exe": (32, "str"),
    },
)

#: ``thread_info`` lives at the bottom of the kernel stack.
THREAD_INFO = StructLayout(
    "thread_info",
    {
        "task": (8, "u64"),
        "cpu": (8, "u64"),
        "preempt_count": (8, "u64"),
    },
)

#: ``mm_struct`` — only the PGD pointer (the PDBA) matters here.
MM_STRUCT = StructLayout(
    "mm_struct",
    {
        "pgd": (8, "u64"),
        "owner": (8, "u64"),
        "vm_pages": (8, "u64"),
    },
)


class StructRef:
    """Typed accessor for one structure instance in guest memory.

    Reads and writes go through the machine's host-side GVA access
    helpers using the kernel page tables — the same path VMI uses —
    so every consumer sees the genuine bytes.
    """

    def __init__(self, machine, kernel_pdba: int, layout: StructLayout, gva: int):
        if gva == 0:
            raise SimulationError(f"NULL {layout.name} reference")
        self.machine = machine
        self.kernel_pdba = kernel_pdba
        self.layout = layout
        self.gva = gva

    def read(self, field: str) -> int:
        spec = self.layout.spec(field)
        if spec.kind != "u64":
            raise SimulationError(f"{field} is not an integer field")
        return self.machine.host_read_u64_gva(
            self.kernel_pdba, self.gva + spec.offset
        )

    def write(self, field: str, value: int) -> None:
        spec = self.layout.spec(field)
        if spec.kind != "u64":
            raise SimulationError(f"{field} is not an integer field")
        self.machine.host_write_u64_gva(
            self.kernel_pdba, self.gva + spec.offset, value
        )

    def read_str(self, field: str) -> str:
        spec = self.layout.spec(field)
        raw = self.machine.host_read_gva(
            self.kernel_pdba, self.gva + spec.offset, spec.size
        )
        end = raw.find(b"\x00")
        return raw[: end if end >= 0 else spec.size].decode(
            "ascii", errors="replace"
        )

    def write_str(self, field: str, text: str) -> None:
        spec = self.layout.spec(field)
        if spec.kind != "str":
            raise SimulationError(f"{field} is not a string field")
        encoded = text.encode("ascii", errors="replace")[: spec.size - 1]
        padded = encoded + b"\x00" * (spec.size - len(encoded))
        gpa = self.machine.page_registry.gva_to_gpa(
            self.kernel_pdba, self.gva + spec.offset
        )
        if gpa < 0:
            raise SimulationError("struct field in unmapped memory")
        self.machine.memory.write_bytes(
            self.machine.ept.translate_nofault(gpa), padded
        )
