"""Tests for the Fig 3 interception algorithms."""


from repro.core.auditor import Auditor
from repro.core.events import (
    EventType,
    ProcessSwitchEvent,
    SyscallEvent,
    ThreadSwitchEvent,
)
from repro.guest.syscalls import SYSCALL_NUMBERS
from repro.guest.task import TaskState
from repro.harness import Testbed, TestbedConfig


class Recorder(Auditor):
    """Collects every event it subscribes to."""

    name = "recorder"

    def __init__(self, *types):
        super().__init__()
        self.subscriptions = set(types)
        self.events = []

    def audit(self, event):
        self.events.append(event)


def worker(ctx):
    while True:
        yield ctx.compute(300_000)
        yield ctx.sys_write(1, 32)


class TestProcessSwitchInterception:
    def test_cr3_writes_become_events(self, testbed):
        recorder = Recorder(EventType.PROCESS_SWITCH)
        testbed.monitor([recorder])
        testbed.kernel.spawn_process(worker, "w", uid=1000)
        testbed.run_s(1.0)
        assert any(isinstance(e, ProcessSwitchEvent) for e in recorder.events)

    def test_pdba_set_tracks_processes(self, testbed):
        recorder = Recorder(EventType.PROCESS_SWITCH)
        ht = testbed.monitor([recorder])
        tasks = [
            testbed.kernel.spawn_process(worker, f"w{i}", uid=1000)
            for i in range(3)
        ]
        testbed.run_s(1.0)
        counter = ht.channel.process_switches
        for task in tasks:
            assert task.mm.pgd in counter.pdba_set

    def test_count_evicts_dead_processes(self, testbed):
        """Fig 3A's validity probe removes stale PDBAs."""
        recorder = Recorder(EventType.PROCESS_SWITCH)
        ht = testbed.monitor([recorder])

        def short(ctx):
            yield ctx.compute(50_000_000)
            yield ctx.exit(0)

        task = testbed.kernel.spawn_process(short, "short", uid=1000)
        testbed.run_s(0.2)
        counter = ht.channel.process_switches
        assert task.mm.pgd in counter.pdba_set
        while task.state is not TaskState.ZOMBIE:
            testbed.run_ms(50)
        count_before = len(counter.pdba_set)
        counter.count_address_spaces()
        assert task.mm.pgd not in counter.pdba_set
        assert len(counter.pdba_set) < count_before

    def test_count_preserves_cr3(self, testbed):
        recorder = Recorder(EventType.PROCESS_SWITCH)
        ht = testbed.monitor([recorder])
        testbed.run_s(0.5)
        vcpu = testbed.machine.vcpus[0]
        saved = vcpu.regs.cr3
        ht.channel.process_switches.count_address_spaces()
        assert vcpu.regs.cr3 == saved

    def test_user_process_count(self, testbed):
        recorder = Recorder(EventType.PROCESS_SWITCH)
        ht = testbed.monitor([recorder])
        for i in range(3):
            testbed.kernel.spawn_process(worker, f"w{i}", uid=1000)
        testbed.run_s(1.0)
        # 3 workers + init = 4 user address spaces
        assert ht.count_user_processes() == 4


class TestThreadSwitchInterception:
    def test_thread_switch_events_carry_rsp0(self, testbed):
        recorder = Recorder(EventType.THREAD_SWITCH)
        testbed.monitor([recorder])
        task = testbed.kernel.spawn_process(worker, "w", uid=1000)
        testbed.run_s(1.0)
        rsp0s = {
            e.rsp0 for e in recorder.events if isinstance(e, ThreadSwitchEvent)
        }
        assert task.rsp0 in rsp0s

    def test_kernel_thread_switches_seen(self, testbed):
        """kthreads share address spaces (no CR3 write) but still show
        up via TSS.RSP0 — the paper's point about thread granularity."""
        recorder = Recorder(EventType.THREAD_SWITCH)
        testbed.monitor([recorder])
        testbed.run_s(3.0)
        kflushd = next(
            t for t in testbed.kernel.tasks.values() if t.comm.startswith("kflushd")
        )
        rsp0s = {
            e.rsp0 for e in recorder.events if isinstance(e, ThreadSwitchEvent)
        }
        assert kflushd.rsp0 in rsp0s

    def test_tss_pages_write_protected(self, testbed):
        recorder = Recorder(EventType.THREAD_SWITCH)
        ht = testbed.monitor([recorder])
        testbed.run_s(0.2)
        interceptor = ht.channel.thread_switches
        assert interceptor._protected
        for rsp0_gpa in interceptor._rsp0_gpas.values():
            _r, w, _x = testbed.machine.ept.permissions(rsp0_gpa)
            assert not w

    def test_detach_restores_permissions(self, testbed):
        recorder = Recorder(EventType.THREAD_SWITCH)
        ht = testbed.monitor([recorder])
        testbed.run_s(0.2)
        gpas = list(ht.channel.thread_switches._rsp0_gpas.values())
        ht.detach()
        for gpa in gpas:
            assert testbed.machine.ept.permissions(gpa)[1]


class TestSyscallInterception:
    def test_sysenter_interception(self, testbed):
        recorder = Recorder(EventType.SYSCALL)
        testbed.monitor([recorder])
        testbed.kernel.spawn_process(worker, "w", uid=1000)
        testbed.run_s(0.5)
        syscalls = [e for e in recorder.events if isinstance(e, SyscallEvent)]
        assert syscalls
        assert all(e.mechanism == "sysenter" for e in syscalls)
        numbers = {e.number for e in syscalls}
        assert SYSCALL_NUMBERS["write"] in numbers

    def test_int80_interception(self):
        tb = Testbed(TestbedConfig(syscall_mechanism="int80"))
        tb.boot()
        recorder = Recorder(EventType.SYSCALL)
        tb.monitor([recorder])
        tb.kernel.spawn_process(worker, "w", uid=1000)
        tb.run_s(0.5)
        syscalls = [e for e in recorder.events if isinstance(e, SyscallEvent)]
        assert syscalls
        assert all(e.mechanism == "int80" for e in syscalls)

    def test_syscall_args_from_registers(self, testbed):
        recorder = Recorder(EventType.SYSCALL)
        testbed.monitor([recorder])

        def prog(ctx):
            yield ctx.sys_write(7, 99)
            yield ctx.exit(0)

        testbed.kernel.spawn_process(prog, "p", uid=1000)
        testbed.run_s(0.5)
        writes = [
            e
            for e in recorder.events
            if isinstance(e, SyscallEvent)
            and e.number == SYSCALL_NUMBERS["write"]
        ]
        assert writes
        assert writes[0].args[0] == 7  # fd in RBX
        assert writes[0].args[1] == 99  # nbytes in RCX

    def test_attach_after_boot_still_intercepts(self, testbed):
        """HyperTap attached to an already-running guest reads the
        SYSENTER MSR instead of waiting for a WRMSR exit."""
        testbed.run_s(1.0)  # guest long since booted
        recorder = Recorder(EventType.SYSCALL)
        testbed.monitor([recorder])
        testbed.kernel.spawn_process(worker, "w", uid=1000)
        testbed.run_s(0.5)
        assert any(isinstance(e, SyscallEvent) for e in recorder.events)


class TestIOInterception:
    def test_io_events(self, testbed):
        recorder = Recorder(EventType.IO)
        testbed.monitor([recorder])

        def io_prog(ctx):
            while True:
                yield ctx.sys_disk_read(1)

        testbed.kernel.spawn_process(io_prog, "io", uid=1000)
        testbed.run_s(1.0)
        kinds = {e.kind for e in recorder.events}
        assert "pio" in kinds
        assert "interrupt" in kinds


class TestTssIntegrity:
    def test_no_alert_in_normal_operation(self, testbed):
        recorder = Recorder(EventType.TSS_INTEGRITY)
        testbed.monitor([recorder])
        testbed.run_s(2.0)
        assert recorder.events == []

    def test_tss_relocation_alert(self, testbed):
        """Fig 3C: moving TR (TSS relocation) raises an alert."""
        recorder = Recorder(EventType.TSS_INTEGRITY)
        testbed.monitor([recorder])
        testbed.run_s(0.5)
        vcpu = testbed.machine.vcpus[0]
        vcpu.guest_load_tr(vcpu.regs.tr_base + 0x1000)  # attacker LTR
        testbed.run_s(0.5)
        assert recorder.events
        alert = recorder.events[0]
        assert alert.current_tr == alert.saved_tr + 0x1000


class TestFineGrainedTracer:
    def test_watched_page_produces_access_events(self, testbed):
        recorder = Recorder(EventType.MEM_ACCESS)
        ht = testbed.monitor([recorder])
        task = testbed.kernel.spawn_process(worker, "w", uid=1000)
        # watch the page holding the worker's task_struct
        gpa = testbed.machine.page_registry.gva_to_gpa(
            testbed.kernel.kernel_pdba, task.task_struct_gva
        )
        ht.channel.tracer.watch_gpa(gpa, write=True)
        testbed.run_s(1.0)
        # utime updates by the timer tick handler write to task_struct
        # ... via host writes; guest writes come from context switches
        # on thread_info. Watch instead: TSS is guest-written; here we
        # assert the plumbing by doing an explicit guest write.
        vcpu = testbed.machine.vcpus[0]
        vcpu.guest_mem_write_u64(task.task_struct_gva, 0)
        assert any(e.gpa // 4096 == gpa // 4096 for e in recorder.events)

    def test_unwatch_stops_events(self, testbed):
        recorder = Recorder(EventType.MEM_ACCESS)
        ht = testbed.monitor([recorder])
        gpa = 0x500000
        ht.channel.tracer.watch_gpa(gpa, write=True)
        ht.channel.tracer.unwatch_gpa(gpa)
        r, w, x = testbed.machine.ept.permissions(gpa)
        assert r and w and x
