"""Guest page tables: GVA -> GPA translation.

Each process owns an :class:`AddressSpace` whose root (the Page
Directory Base Address, PDBA) is a real guest-physical frame; the CR3
register holds that PDBA while the process runs.  A machine-wide
:class:`PageTableRegistry` lets host-side software walk *any* address
space given only a PDBA — this is exactly what the paper's process
counting algorithm (Fig 3A) needs for its ``gva_to_gpa(known_gva)``
validity test, and what VMI needs to decode kernel structures.

Kernel mappings are shared between all address spaces (one kernel page
table referenced by every root), mirroring how Linux shares the kernel
half of the address space.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.errors import GuestPageFault, SimulationError
from repro.hw.memory import PAGE_SHIFT, page_number, page_offset

#: Sentinel returned by host-side translation when a GVA is unmapped.
UNMAPPED_GVA = -1


class KernelPageTable:
    """The shared kernel half of every address space."""

    def __init__(self) -> None:
        self._map: Dict[int, int] = {}  # vpn -> gpn

    def map_page(self, gva: int, gpa: int) -> None:
        self._map[page_number(gva)] = page_number(gpa)

    def unmap_page(self, gva: int) -> None:
        self._map.pop(page_number(gva), None)

    def lookup(self, gva: int) -> Optional[int]:
        gpn = self._map.get(page_number(gva))
        if gpn is None:
            return None
        return (gpn << PAGE_SHIFT) | page_offset(gva)

    def __len__(self) -> int:
        return len(self._map)


class AddressSpace:
    """One process's virtual address space.

    ``pdba`` is the guest-physical address of the root paging structure
    — the value loaded into CR3 whenever a thread of this process runs.
    """

    def __init__(self, pdba: int, kernel: KernelPageTable) -> None:
        self.pdba = pdba
        self.kernel = kernel
        self._user_map: Dict[int, int] = {}  # vpn -> gpn
        self.live = True

    def map_user_page(self, gva: int, gpa: int) -> None:
        if not self.live:
            raise SimulationError("mapping into a destroyed address space")
        self._user_map[page_number(gva)] = page_number(gpa)

    def unmap_user_page(self, gva: int) -> None:
        self._user_map.pop(page_number(gva), None)

    def translate(self, gva: int) -> Optional[int]:
        """GVA -> GPA, or ``None`` if unmapped."""
        if not self.live:
            return None
        gpn = self._user_map.get(page_number(gva))
        if gpn is not None:
            return (gpn << PAGE_SHIFT) | page_offset(gva)
        return self.kernel.lookup(gva)

    @property
    def user_pages(self) -> int:
        return len(self._user_map)


class PageTableRegistry:
    """Machine-wide view of all live paging structures, keyed by PDBA."""

    def __init__(self) -> None:
        self.kernel = KernelPageTable()
        self._spaces: Dict[int, AddressSpace] = {}
        self._next_pdba_frame = 0x3000_0  # frames reserved for page dirs

    def create_address_space(self) -> AddressSpace:
        """Allocate a fresh root frame and register the address space."""
        pdba = self._next_pdba_frame << PAGE_SHIFT
        self._next_pdba_frame += 1
        space = AddressSpace(pdba, self.kernel)
        self._spaces[pdba] = space
        return space

    def destroy_address_space(self, space: AddressSpace) -> None:
        """Tear down a process's paging structures (exit path)."""
        space.live = False
        self._spaces.pop(space.pdba, None)

    def lookup(self, pdba: int) -> Optional[AddressSpace]:
        return self._spaces.get(pdba)

    def gva_to_gpa(self, pdba: int, gva: int) -> int:
        """Walk the paging structure rooted at ``pdba``.

        Returns :data:`UNMAPPED_GVA` when the root is stale or the GVA
        has no mapping — the signal Fig 3A uses to evict dead PDBAs.
        """
        space = self._spaces.get(pdba)
        if space is None:
            return UNMAPPED_GVA
        gpa = space.translate(gva)
        return UNMAPPED_GVA if gpa is None else gpa

    def translate_or_fault(self, pdba: int, gva: int, access: str) -> int:
        """Translation used by the vCPU's MMU; raises on failure."""
        gpa = self.gva_to_gpa(pdba, gva)
        if gpa == UNMAPPED_GVA:
            raise GuestPageFault(gva, access)
        return gpa

    def live_spaces(self) -> Iterator[AddressSpace]:
        return iter(self._spaces.values())

    def __len__(self) -> int:
        return len(self._spaces)
