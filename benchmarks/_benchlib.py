"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints it (uncaptured) so `pytest benchmarks/ --benchmark-only` leaves
a readable report.  Scale knobs:

* default        — CI-friendly subset (minutes, shape-preserving)
* REPRO_SCALE=N  — multiply trial counts by N (float)
* REPRO_FULL=1   — paper-scale grids (hours)
* REPRO_JOBS=N   — fan trials across N worker processes (results are
  byte-identical at any job count; see repro.parallel)
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
FULL = os.environ.get("REPRO_FULL", "") == "1"


def scaled(n: int, minimum: int = 1) -> int:
    """Apply the scale factor to a trial count."""
    return max(minimum, int(round(n * SCALE)))


# ----------------------------------------------------------------------
# The Fig 4 / Fig 5 campaign is expensive; run it once per session and
# share the summary between both benchmarks.  The cache key carries
# (scale, full, jobs): a mixed-scale pytest session (e.g. re-running one
# benchmark with REPRO_SCALE bumped via monkeypatched SCALE) must never
# reuse a stale summary computed for a different grid.
# ----------------------------------------------------------------------
_campaign_cache = {}


def get_campaign_summary(jobs=None):
    """Run (once per shape) the scaled §VIII-A fault-injection campaign."""
    from repro.parallel import job_count

    jobs = job_count() if jobs is None else max(1, int(jobs))
    key = (SCALE, FULL, jobs)
    if key in _campaign_cache:
        return _campaign_cache[key]

    from repro.faults.campaign import TrialConfig, run_campaign
    from repro.faults.injector import InjectionMode
    from repro.faults.sites import build_site_catalog
    from repro.sim.clock import SECOND

    catalog = build_site_catalog()
    if FULL:
        sites = catalog  # all 374 locations
        seeds = (0, 1, 2)  # 3 repetitions, like the paper's 17,952
        workloads = ("hanoi", "make-j1", "make-j2", "http")
        preempts = (False, True)
    else:
        # Stratified subset: every function and fault class appears.
        first_pass = [s for s in catalog if s.activation_pass == 1]
        sites = first_pass[:: max(1, len(first_pass) // scaled(8))][: scaled(8)]
        seeds = (0,)
        workloads = ("hanoi", "make-j1", "make-j2", "http")
        preempts = (False, True)

    summary = run_campaign(
        sites,
        workloads=workloads,
        modes=(InjectionMode.TRANSIENT, InjectionMode.PERSISTENT),
        preempt_options=preempts,
        seeds=seeds,
        base_config=TrialConfig(
            warmup_ns=1 * SECOND,
            detect_window_ns=12 * SECOND,
            classify_window_ns=20 * SECOND,
        ),
        jobs=jobs,
    )
    _campaign_cache[key] = summary
    return summary
