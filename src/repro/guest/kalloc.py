"""Kernel heap allocator (bump allocator over the direct map).

Every allocation is real guest memory: the allocator reserves
guest-physical bytes, maps them into the shared kernel page table at
the direct-map GVA, and returns that GVA.  Structures placed here are
therefore reachable both by the guest (through CR3) and by host-side
introspection (through the page-table registry).
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE, page_base
from repro.guest.layouts import KERNEL_HEAP_GPA_START, direct_map_gva


class KernelAllocator:
    """Bump allocator; the guest kernel never frees (fine for our runs,
    and it keeps stale-pointer bugs out of the substrate)."""

    def __init__(self, machine: Machine, start_gpa: int = KERNEL_HEAP_GPA_START):
        self.machine = machine
        self._next_gpa = start_gpa
        self._mapped_until = start_gpa  # first unmapped byte
        self.allocated_bytes = 0
        self.allocations = 0

    def _ensure_mapped(self, end_gpa: int) -> None:
        kernel_pt = self.machine.page_registry.kernel
        cursor = page_base(self._mapped_until)
        while cursor < end_gpa:
            kernel_pt.map_page(direct_map_gva(cursor), cursor)
            cursor += PAGE_SIZE
        self._mapped_until = max(self._mapped_until, end_gpa)

    def alloc(self, size: int, align: int = 16) -> int:
        """Allocate ``size`` bytes; returns the direct-map GVA."""
        if size <= 0:
            raise SimulationError("allocation size must be positive")
        gpa = (self._next_gpa + align - 1) & ~(align - 1)
        end = gpa + size
        if end > self.machine.memory.size_bytes:
            raise SimulationError("guest kernel heap exhausted")
        self._ensure_mapped(end)
        self._next_gpa = end
        self.allocated_bytes += size
        self.allocations += 1
        return direct_map_gva(gpa)

    def alloc_page(self) -> int:
        """Allocate one page-aligned page; returns the direct-map GVA."""
        return self.alloc(PAGE_SIZE, align=PAGE_SIZE)

    def alloc_stack(self, size: int) -> int:
        """Allocate a kernel stack (page aligned)."""
        return self.alloc(size, align=PAGE_SIZE)
