"""Tests for Guest OS Hang Detection (§VII-A)."""

import pytest

from repro.auditors.goshd import GuestOSHangDetector
from repro.guest.programs import KCompute, LockAcquire
from repro.sim.clock import SECOND


def wedge_vcpu(testbed, cpu=0, lock="test_driver_lock"):
    """Leak a lock and spin a kthread on it, hanging one vCPU."""
    testbed.kernel.locks.get(lock).leak()

    def spinner(kernel, task):
        yield LockAcquire(lock)
        yield KCompute(1)  # never reached

    return testbed.kernel.spawn_kthread(spinner, "wedge", cpu=cpu)


@pytest.fixture
def goshd(testbed):
    detector = GuestOSHangDetector(threshold_ns=4 * SECOND)
    testbed.monitor([detector])
    return detector


class TestHealthyOperation:
    def test_no_false_alarms(self, testbed, goshd):
        testbed.run_s(20.0)
        assert not goshd.hang_detected
        assert goshd.alerts == []


class TestPartialHang:
    def test_single_vcpu_hang_detected(self, testbed, goshd):
        testbed.run_s(1.0)
        wedge_vcpu(testbed, cpu=0)
        testbed.run_s(8.0)
        assert goshd.hang_detected
        assert goshd.hung_vcpus == {0}
        assert goshd.is_partial_hang
        assert not goshd.is_full_hang

    def test_partial_hang_alert_flagged_partial(self, testbed, goshd):
        testbed.run_s(1.0)
        wedge_vcpu(testbed, cpu=1)
        testbed.run_s(8.0)
        (alert,) = goshd.hang_alerts()
        assert alert["vcpu"] == 1
        assert alert["partial"] is True

    def test_other_vcpu_still_monitored_healthy(self, testbed, goshd):
        testbed.run_s(1.0)
        wedge_vcpu(testbed, cpu=0)
        testbed.run_s(10.0)
        assert 1 not in goshd.hung_vcpus


class TestFullHang:
    def test_both_vcpus_hang(self, testbed, goshd):
        testbed.run_s(1.0)
        wedge_vcpu(testbed, cpu=0, lock="test_driver_lock")
        wedge_vcpu(testbed, cpu=1, lock="test_driver_lock")
        testbed.run_s(10.0)
        assert goshd.is_full_hang
        assert goshd.full_hang_time_ns is not None

    def test_full_hang_preceded_by_partial(self, testbed, goshd):
        """All full hangs begin as partial hangs (§VII-A1)."""
        testbed.run_s(1.0)
        wedge_vcpu(testbed, cpu=0, lock="test_lock_a")
        testbed.run_s(6.0)
        first = goshd.first_hang_time_ns
        wedge_vcpu(testbed, cpu=1, lock="test_lock_b")
        testbed.run_s(6.0)
        assert goshd.is_full_hang
        assert goshd.full_hang_time_ns > first


class TestDetectionLatency:
    def test_latency_close_to_threshold(self, testbed, goshd):
        testbed.run_s(1.0)
        t_wedge = testbed.engine.clock.now
        wedge_vcpu(testbed, cpu=0)
        testbed.run_s(10.0)
        latency = goshd.first_hang_time_ns - t_wedge
        # minimal latency is the threshold (4s); checks run every 500ms
        assert 4 * SECOND <= latency <= 6 * SECOND


class TestRecovery:
    def test_transient_stall_recovers(self, testbed):
        """A long-but-finite critical section trips GOSHD, then the
        recovery event fires when scheduling resumes."""
        goshd = GuestOSHangDetector(threshold_ns=2 * SECOND)
        testbed.monitor([goshd])
        testbed.run_s(1.0)

        def long_section(kernel, task):
            from repro.guest.programs import BlockOn, LockRelease

            yield LockAcquire("dcache_lock")
            yield KCompute(5 * SECOND)
            yield LockRelease("dcache_lock")
            while True:  # well-behaved afterwards: sleeps voluntarily
                yield BlockOn("slow-idle", timeout_ns=100_000_000)

        testbed.kernel.spawn_kthread(long_section, "slow", cpu=0)
        testbed.run_s(4.0)
        assert 0 in goshd.hung_vcpus
        testbed.run_s(6.0)
        assert 0 not in goshd.hung_vcpus
        assert any(a["kind"] == "vcpu_recovered" for a in goshd.alerts)


class TestHeartbeatComparison:
    def test_heartbeat_blind_to_partial_hang(self, testbed, goshd):
        """§VIII-A3: the SSH probe stays healthy through a partial hang
        on the other vCPU — exactly why heartbeats are insufficient."""
        from repro.workloads.common import SshProbe

        probe = SshProbe(testbed.kernel)
        probe.start()
        testbed.run_s(2.0)
        # Hang the vCPU the probe is NOT pinned to.
        sshd_cpu = probe.task.cpu
        wedge_vcpu(testbed, cpu=1 - sshd_cpu)
        testbed.run_s(10.0)
        assert goshd.is_partial_hang  # GOSHD sees it
        assert not probe.reports_dead  # the heartbeat does not
