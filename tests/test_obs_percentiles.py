"""Percentile math on the fixed-bucket latency histograms.

The serve SLO columns (p50/p99 exit-to-verdict, the exact-compare
ledger column) ride on ``Histogram.percentile``: it must be exact on
seeded distributions — the smallest bucket bound covering the target
rank, clamped to the observed min/max — and stable under any snapshot
merge order, because merged exports are assembled from per-stream
snapshots whose arrival order the transport does not control.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import (
    BUCKET_BOUNDS_NS,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.sim.rng import RandomStreams


def reference_percentile(values, q):
    """Independent oracle: rank the raw values, bucket the rank-th one.

    ``percentile`` walks cumulative bucket counts; this walks the
    sorted raw values.  They must agree on every distribution.
    """
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    v = ordered[rank - 1]
    for bound in BUCKET_BOUNDS_NS:
        if v <= bound:
            return max(min(bound, max(ordered)), min(ordered))
    return max(ordered)


def seeded_values(seed, n, base_ns=80_000, fraction=0.9):
    streams = RandomStreams(seed)
    return [streams.jitter_ns("percentiles", base_ns, fraction) for _ in range(n)]


class TestPercentileExactness:
    def test_empty_histogram_has_no_percentile(self):
        hist = Histogram()
        assert hist.percentile(0.5) is None
        assert hist.percentile(0.99) is None

    @pytest.mark.parametrize("q", [0.0, -0.1, 1.01, 2.0])
    def test_out_of_range_quantile_rejected(self, q):
        hist = Histogram()
        hist.observe(5)
        with pytest.raises(ValueError):
            hist.percentile(q)

    @pytest.mark.parametrize("value", [1, 999, 1_000, 55_555, 10**9, 3 * 10**10])
    def test_single_value_is_its_own_percentile(self, value):
        # min/max clamping collapses the bucket bound onto the single
        # observation, including values past the top bucket bound.
        hist = Histogram()
        hist.observe(value)
        for q in (0.01, 0.5, 0.99, 1.0):
            assert hist.percentile(q) == value

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("q", [0.5, 0.9, 0.99, 1.0])
    def test_matches_rank_oracle_on_seeded_distributions(self, seed, q):
        values = seeded_values(seed, 500)
        hist = Histogram()
        for v in values:
            hist.observe(v)
        assert hist.percentile(q) == reference_percentile(values, q)

    def test_wide_distribution_spanning_all_buckets(self):
        # One value per decade, plus overflow: exercises every bucket
        # and the overflow fall-through (returns the observed max).
        values = [bound for bound in BUCKET_BOUNDS_NS] + [7 * 10**10]
        hist = Histogram()
        for v in values:
            hist.observe(v)
        for q in (0.25, 0.5, 0.75, 0.99, 1.0):
            assert hist.percentile(q) == reference_percentile(values, q)
        assert hist.percentile(1.0) == 7 * 10**10

    def test_p99_separates_burst_tail_from_median(self):
        # 99 fast events and 1 slow one: p50 stays in the fast bucket,
        # p99 does too (rank 99 of 100); add one more slow event and
        # p99 crosses into the slow bucket.
        hist = Histogram()
        for _ in range(99):
            hist.observe(50_000)
        hist.observe(900_000_000)
        assert hist.percentile(0.5) == 100_000
        assert hist.percentile(0.99) == 100_000
        hist.observe(900_000_000)
        assert hist.percentile(0.99) == 900_000_000


class TestMergeOrderStability:
    def _sharded_snapshots(self, shards=5, per_shard=200):
        snapshots = []
        all_values = []
        for shard in range(shards):
            registry = MetricsRegistry()
            hist = registry.histogram("serve.latency.exit_to_verdict_ns")
            # Distinct per-shard distributions so order *could* matter
            # if merging were not commutative.
            values = seeded_values(shard, per_shard, base_ns=10_000 * (shard + 1))
            for v in values:
                hist.observe(v)
            all_values.extend(values)
            snapshots.append(registry.snapshot())
        return snapshots, all_values

    def _percentiles(self, snapshots):
        merged = merge_snapshots(snapshots)
        for name, _labels, hist in merged.histogram_rows():
            if name == "serve.latency.exit_to_verdict_ns":
                return (hist.percentile(0.5), hist.percentile(0.99))
        raise AssertionError("merged histogram row missing")

    def test_any_merge_order_gives_identical_percentiles(self):
        snapshots, all_values = self._sharded_snapshots()
        baseline = self._percentiles(snapshots)
        assert baseline == self._percentiles(list(reversed(snapshots)))
        rotated = snapshots[2:] + snapshots[:2]
        assert baseline == self._percentiles(rotated)

    def test_merged_percentiles_equal_unsharded_observation(self):
        snapshots, all_values = self._sharded_snapshots()
        hist = Histogram()
        for v in all_values:
            hist.observe(v)
        assert self._percentiles(snapshots) == (
            hist.percentile(0.5),
            hist.percentile(0.99),
        )
        assert self._percentiles(snapshots) == (
            reference_percentile(all_values, 0.5),
            reference_percentile(all_values, 0.99),
        )
