"""HyperTap core: the paper's primary contribution.

* :mod:`repro.core.events` — the derived guest-event model auditors
  consume (process switches, thread switches, syscalls, IO, memory
  accesses, integrity alerts).
* :mod:`repro.core.derive` — OS-state derivation rooted at
  architectural invariants (TSS.RSP0 -> thread_info -> task_struct).
* :mod:`repro.core.interception` — the algorithms of Fig 3 (process
  counting, thread-switch interception, TSS integrity checking, both
  system-call interception flavours, IO and fine-grained interception).
* :mod:`repro.core.channel` — the unified logging channel.
* :mod:`repro.core.auditor` — the auditor programming model.
* :mod:`repro.core.hypertap` — the framework facade gluing machine,
  hypervisor, EF/EM, interceptors, containers and auditors together.
"""

from repro.core.events import (
    EventType,
    GuestEvent,
    ProcessSwitchEvent,
    ThreadSwitchEvent,
    SyscallEvent,
    IOEvent,
    MemoryAccessEvent,
    TssIntegrityAlert,
)
from repro.core.auditor import Auditor
from repro.core.hypertap import HyperTap

__all__ = [
    "EventType",
    "GuestEvent",
    "ProcessSwitchEvent",
    "ThreadSwitchEvent",
    "SyscallEvent",
    "IOEvent",
    "MemoryAccessEvent",
    "TssIntegrityAlert",
    "Auditor",
    "HyperTap",
]
