"""Attacks used in the paper's evaluation.

* :mod:`repro.attacks.rootkits` — re-implementations of the hiding
  techniques behind every rootkit in Table II (DKOM unlinking,
  syscall-table hijacking, /dev/kmem patching), applied to the
  simulated guest kernel's real in-memory structures.
* :mod:`repro.attacks.exploits` — privilege-escalation payloads
  modelling CVE-2010-3847 and CVE-2013-1763.
* :mod:`repro.attacks.strategies` — the four anti-passive-monitoring
  strategies of §VIII-C1: transient, side-channel, rootkit-combined,
  and spamming attacks.
* :mod:`repro.attacks.sidechannel` — the /proc-based measurement of
  Ninja's monitoring interval (Table III).
"""

from repro.attacks.rootkits import (
    HidingTechnique,
    Rootkit,
    RootkitSpec,
    ROOTKIT_ZOO,
    build_rootkit,
)
from repro.attacks.exploits import (
    CVE_2010_3847,
    CVE_2013_1763,
    exploit_program,
)
from repro.attacks.strategies import (
    AttackResult,
    RootkitCombinedAttack,
    SpammingAttack,
    TransientAttack,
)
from repro.attacks.sidechannel import ProcSideChannel

__all__ = [
    "HidingTechnique",
    "Rootkit",
    "RootkitSpec",
    "ROOTKIT_ZOO",
    "build_rootkit",
    "CVE_2010_3847",
    "CVE_2013_1763",
    "exploit_program",
    "AttackResult",
    "TransientAttack",
    "RootkitCombinedAttack",
    "SpammingAttack",
    "ProcSideChannel",
]
