"""The hut oracle: turn digest disagreement into stable findings.

Three independent ways a hypervisor-under-test run can be wrong, each
with its own auditor tag so corpus keys say *which* oracle fired:

* ``hut-ref`` — **differential replay**: the production stack's digest
  disagrees with the reference model's (``reference.py``), the classic
  two-implementations oracle.
* ``hut-sched`` — **schedule differential**: the same program under a
  perturbed same-instant interleaving produced a different digest than
  the baseline order.  Per-vCPU program order is preserved by
  construction, so on a correct emulator over disjoint per-vCPU state
  every admitted schedule must commute; a digest change is a real
  order-dependence bug (lost update, shared accumulator, cross-vCPU
  aliasing).
* ``hut-consistency`` — **self-consistency**: redundant views inside
  the stack disagree with each other (EPT walker vs. permission map,
  forwarder conservation, multiplexer accounting, per-vCPU exit
  counters vs. VMCS records).  These need no reference at all — they
  are the paper's architectural invariants applied to the emulator
  itself.

A non-architectural Python exception during the run is a ``crash``
finding and pre-empts everything else: a crashed run's digest is
half-built, and differential noise against it would bury the one
finding that matters.

Finding identity reuses :func:`repro.testing.oracle.finding_key` via
:class:`~repro.testing.oracle.Discrepancy`.  Divergence subjects carry
a *coarse* digest path (``vcpus.0.msrs``, ``ept.entries``, ``mem``) —
coarse enough to stay stable while ddmin removes unrelated ops, precise
enough to say which invariant-relevant state diverged.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.testing.hut.harness import INTEREST_REASONS, HutHarness
from repro.testing.oracle import Discrepancy

_INTEREST_VALUES = frozenset(reason.value for reason in INTEREST_REASONS)


# ======================================================================
# Digest diffing
# ======================================================================
def _leaf_diffs(
    a: Any, b: Any, path: Tuple[str, ...] = ()
) -> List[Tuple[Tuple[str, ...], Any, Any]]:
    """All ``(path, a_value, b_value)`` leaves where the digests differ."""
    if isinstance(a, dict) and isinstance(b, dict):
        out = []
        for key in sorted(set(a) | set(b), key=str):
            if key not in a:
                out.append((path + (str(key),), None, b[key]))
            elif key not in b:
                out.append((path + (str(key),), a[key], None))
            elif a[key] != b[key]:
                out.extend(_leaf_diffs(a[key], b[key], path + (str(key),)))
        return out
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return [(path + ("len",), len(a), len(b))]
        out = []
        for index, (x, y) in enumerate(zip(a, b)):
            if x != y:
                out.extend(_leaf_diffs(x, y, path + (str(index),)))
        return out
    return [(path, a, b)] if a != b else []


def _coarse(path: Tuple[str, ...]) -> str:
    """Shrink-stable grouping of a leaf diff path.

    Per-vCPU sections keep the vCPU index (it is structural, fixed by
    the target); memory addresses, EPT entry positions and result rows
    are collapsed (they move as ops are removed).
    """
    if not path:
        return ""
    if path[0] == "vcpus":
        return ".".join(path[:3])
    if path[0] in ("mem", "results"):
        return path[0]
    return ".".join(path[:2])


def differential_findings(
    target: str,
    actual: Dict[str, Any],
    expected: Dict[str, Any],
    auditor: str = "hut-ref",
) -> List[Discrepancy]:
    """One ``divergence`` finding per coarse digest region that differs."""
    grouped: Dict[str, Tuple[Tuple[str, ...], Any, Any]] = {}
    for leaf in _leaf_diffs(actual, expected):
        grouped.setdefault(_coarse(leaf[0]), leaf)
    out = []
    for coarse in sorted(grouped):
        path, got, want = grouped[coarse]
        out.append(Discrepancy(
            "divergence", auditor,
            {"target": target, "at": coarse},
            f"{'.'.join(path)}: stack={got!r} vs expected={want!r}",
        ))
    return out


def crash_findings(
    target: str, digest: Dict[str, Any]
) -> List[Discrepancy]:
    crash = digest.get("crash")
    if not crash:
        return []
    return [Discrepancy(
        "crash", "hut-harness",
        {"target": target, "error": str(crash.get("error"))},
        str(crash.get("detail", "")),
    )]


# ======================================================================
# Self-consistency
# ======================================================================
def consistency_findings(
    target: str, harness: HutHarness
) -> List[Discrepancy]:
    """Cross-check redundant views inside one finished harness run."""
    checks: List[Tuple[str, Optional[str]]] = []

    problems = harness.machine.ept.check_consistency()
    checks.append(("ept-map", problems[0] if problems else None))

    seen = harness.ef.seen
    handled = harness.kvm.handled_exits
    total = harness.machine.total_exits
    checks.append((
        "exit-conservation",
        None if seen == handled == total else
        f"forwarded+suppressed={seen}, handled={handled}, total={total}",
    ))
    checks.append((
        "mux-submitted",
        None if harness.em.submitted == harness.ef.forwarded else
        f"submitted={harness.em.submitted} != "
        f"forwarded={harness.ef.forwarded}",
    ))
    # One registered consumer, so fan-out must be 1:1.
    checks.append((
        "mux-delivered",
        None if harness.em.delivered == harness.ef.forwarded else
        f"delivered={harness.em.delivered} != "
        f"forwarded={harness.ef.forwarded}",
    ))

    vmcs_problem = None
    for vcpu in harness.machine.vcpus:
        counted = sum(vcpu.exit_counts.values())
        if vcpu.vmcs.exit_count != counted:
            vmcs_problem = (
                f"vcpu {vcpu.index}: vmcs.exit_count="
                f"{vcpu.vmcs.exit_count} != sum(exit_counts)={counted}"
            )
            break
    checks.append(("vmcs-exit-count", vmcs_problem))

    from repro.hw.exits import ExitReason

    violation_exits = sum(
        vcpu.exit_counts.get(ExitReason.EPT_VIOLATION, 0)
        for vcpu in harness.machine.vcpus
    )
    checks.append((
        "ept-violation-count",
        None if harness.machine.ept.violations == violation_exits else
        f"ept.violations={harness.machine.ept.violations} != "
        f"EPT_VIOLATION exits={violation_exits}",
    ))

    delivered = harness.execution.delivered
    sequences = [d[0] for d in delivered]
    checks.append((
        "delivery-order",
        None if sequences == sorted(set(sequences)) else
        f"delivered sequences not strictly increasing: {sequences[:8]}",
    ))
    stray = [d for d in delivered if d[2] not in _INTEREST_VALUES]
    checks.append((
        "delivery-interest",
        None if not stray else
        f"delivered reason outside subscription: {stray[0]!r}",
    ))

    return [
        Discrepancy(
            "inconsistency", "hut-consistency",
            {"target": target, "check": name},
            detail,
        )
        for name, detail in checks
        if detail is not None
    ]


# ======================================================================
# The three-way evaluation
# ======================================================================
def evaluate(
    target: str,
    harness: HutHarness,
    reference_digest: Dict[str, Any],
    perturbed_digest: Optional[Dict[str, Any]] = None,
) -> List[Discrepancy]:
    """All findings for one executed candidate.

    ``harness`` must already have run; ``perturbed_digest`` is the
    digest of a second run of the same program under an
    :func:`~repro.sim.perturb.interleave_perturbation` (interleave
    target only).
    """
    digest = harness.digest()
    crashed = crash_findings(target, digest)
    if crashed:
        return crashed
    if perturbed_digest is not None:
        crashed = crash_findings(target, perturbed_digest)
        if crashed:
            return crashed
    out = differential_findings(target, digest, reference_digest)
    if perturbed_digest is not None:
        out.extend(differential_findings(
            target, perturbed_digest, digest, auditor="hut-sched",
        ))
    out.extend(consistency_findings(target, harness))
    return out
