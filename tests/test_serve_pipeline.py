"""StreamPipeline and the whole-stream shard task (repro.serve.pipeline).

One stream = one admission model + one streaming ReplaySource; the
inline-fed and spec-run paths must be interchangeable, lossless streams
must reproduce their recorded live verdicts, and merged exports must
order by stream id, never by completion.
"""

from __future__ import annotations

import pytest

from repro.errors import TraceFormatError
from repro.replay.recorder import record_scenario
from repro.serve.pipeline import (
    SERVE_STAGE,
    StreamConfig,
    StreamPipeline,
    merged_export_lines,
    run_stream_spec,
)


@pytest.fixture(scope="module")
def exploit_run():
    return record_scenario("exploit", seed=0)


def spec_for(run, stream_id, config=None, arrivals=None):
    return {
        "stream": stream_id,
        "header": run.trace.header.to_record(),
        "records": run.trace.records,
        "arrivals": arrivals,
        "end_ns": run.trace.header.end_ns,
        "config": config,
    }


class TestStreamConfig:
    def test_payload_round_trip(self):
        config = StreamConfig(queue_limit=7, policy="drop")
        assert StreamConfig.from_payload(config.to_payload()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(TraceFormatError, match="unknown stream config"):
            StreamConfig.from_payload({"queue_limit": 7, "turbo": True})

    def test_unknown_policy_rejected(self):
        with pytest.raises(TraceFormatError, match="policy"):
            StreamConfig.from_payload({"policy": "yolo"})

    def test_empty_payload_is_defaults(self):
        assert StreamConfig.from_payload(None) == StreamConfig()
        assert StreamConfig.from_payload({}) == StreamConfig()


class TestInlineFeeding:
    def test_lossless_stream_reproduces_live_verdicts(self, exploit_run):
        run = exploit_run
        pipeline = StreamPipeline("vm-a", run.trace.header)
        for record in run.trace.records:
            pipeline.feed(record)
        result = pipeline.close(run.trace.header.end_ns)
        assert result.offered == result.admitted
        assert result.dropped == {"backpressure": 0, "overflow": 0}
        assert result.rejected == 0
        assert result.reproduced is True
        assert result.verdicts == run.live_verdicts
        assert result.latency["count"] == result.admitted
        assert result.latency["p99_ns"] is not None

    def test_stream_identity_overrides_header_vm(self, exploit_run):
        # Metric rows are labelled by the serving stream id, so merged
        # exports stay per-stream attributable even when every producer
        # recorded under the same vm id.
        pipeline = StreamPipeline("stream-7", exploit_run.trace.header)
        for record in exploit_run.trace.records:
            pipeline.feed(record)
        result = pipeline.close()
        vms = {
            labels.get("vm")
            for _name, labels, _value in result.snapshot["counters"]
            if "vm" in labels
        }
        assert "stream-7" in vms
        assert exploit_run.trace.header.vm_id not in vms

    def test_feed_after_close_rejected(self, exploit_run):
        pipeline = StreamPipeline("vm-a", exploit_run.trace.header)
        pipeline.close()
        with pytest.raises(TraceFormatError, match="already closed"):
            pipeline.feed(exploit_run.trace.records[0])
        fresh = StreamPipeline("vm-b", exploit_run.trace.header)
        fresh.close()
        with pytest.raises(TraceFormatError, match="already closed"):
            fresh.close()

    def test_overload_drops_are_accounted_not_silent(self, exploit_run):
        run = exploit_run
        config = StreamConfig(service_ns=20_000, max_wait_ns=1_000_000)
        pipeline = StreamPipeline("vm-hot", run.trace.header, config=config)
        # Slam every record in at 5ns spacing: far past the modelled
        # service rate, so the pace policy must shed.
        t0 = run.trace.header.start_ns
        for i, record in enumerate(run.trace.records):
            pipeline.feed(record, arrival_ns=t0 + 5 * i)
        result = pipeline.close(run.trace.header.end_ns)
        total_dropped = sum(result.dropped.values())
        assert total_dropped > 0
        assert result.offered == result.admitted + total_dropped
        # A lossy stream is not comparable against the live run.
        assert result.reproduced is None
        assert result.slowdowns > 0

    def test_arrivals_clamped_non_decreasing(self, exploit_run):
        run = exploit_run
        pipeline = StreamPipeline("vm-a", run.trace.header)
        records = [r for r in run.trace.records if r.get("kind", "event") == "event"]
        pipeline.feed(records[0], arrival_ns=run.trace.header.start_ns + 10**6)
        # A rewinding arrival cannot rewind the queue model.
        decision = pipeline.feed(records[1], arrival_ns=0)
        assert decision is not None and decision.admitted
        assert pipeline._last_arrival_ns == run.trace.header.start_ns + 10**6


class TestSpecPath:
    def test_spec_path_matches_inline_path(self, exploit_run):
        run = exploit_run
        pipeline = StreamPipeline("vm-a", run.trace.header)
        for record in run.trace.records:
            pipeline.feed(record)
        inline = pipeline.close(run.trace.header.end_ns)

        sharded = run_stream_spec(spec_for(run, "vm-a"))
        assert sharded["payload"] == inline.verdict_payload()
        assert sharded["snapshot"] == inline.snapshot

    def test_spec_run_is_deterministic(self, exploit_run):
        spec = spec_for(exploit_run, "vm-a")
        assert run_stream_spec(spec) == run_stream_spec(spec)

    def test_drop_rows_carry_serve_stage(self, exploit_run):
        run = exploit_run
        t0 = run.trace.header.start_ns
        spec = spec_for(
            run,
            "vm-hot",
            config={"service_ns": 20_000, "max_wait_ns": 1_000_000},
            arrivals=[t0 + 5 * i for i in range(len(run.trace.records))],
        )
        result = run_stream_spec(spec)
        lines = merged_export_lines({"vm-hot": result["snapshot"]})
        drops = [
            line
            for line in lines
            if '"flow.dropped"' in line and SERVE_STAGE in line
        ]
        assert drops, "expected serve-admission drop rows in the export"
        assert any('"reason": "backpressure"' in line or
                   '"reason":"backpressure"' in line for line in drops)


class TestMergedExport:
    def test_export_orders_by_stream_id_not_completion(self, exploit_run):
        run = exploit_run
        results = {
            sid: run_stream_spec(spec_for(run, sid))
            for sid in ("vm-b", "vm-a", "vm-c")
        }
        snapshots = {sid: r["snapshot"] for sid, r in results.items()}
        insertion_order = merged_export_lines(snapshots)
        reversed_order = merged_export_lines(
            dict(sorted(snapshots.items(), reverse=True))
        )
        assert insertion_order == reversed_order
