"""Byte-addressable physical memory backed by sparse 4 KiB frames.

This single store plays the role of host physical memory; guest
physical frames are mapped onto it by the EPT (identity-mapped by the
hypervisor at VM creation, like KVM does for a simple memslot layout).
All guest kernel data structures — task structs, the TSS, page
directories — live here as real bytes, so both traditional VMI and the
rootkits that defeat it operate on genuine memory contents.
"""

from __future__ import annotations

import struct  # hypertap: allow(determinism) — packs guest physical-memory words, not trace records
from typing import Dict

from repro.errors import SimulationError

PAGE_SIZE = 4096
PAGE_SHIFT = 12


def page_number(addr: int) -> int:
    """Frame number containing ``addr``."""
    return addr >> PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Offset of ``addr`` within its frame."""
    return addr & (PAGE_SIZE - 1)


def page_base(addr: int) -> int:
    """Base address of the frame containing ``addr``."""
    return addr & ~(PAGE_SIZE - 1)


class PhysicalMemory:
    """Sparse physical memory; frames materialize on first touch."""

    def __init__(self, size_bytes: int) -> None:
        if size_bytes <= 0 or size_bytes % PAGE_SIZE:
            raise SimulationError("memory size must be a positive page multiple")
        self.size_bytes = size_bytes
        self.num_frames = size_bytes // PAGE_SIZE
        self._frames: Dict[int, bytearray] = {}

    # ------------------------------------------------------------------
    # Frame management
    # ------------------------------------------------------------------
    def frame(self, pfn: int) -> bytearray:
        """Return (allocating if needed) the backing store for ``pfn``."""
        if pfn < 0 or pfn >= self.num_frames:
            raise SimulationError(
                f"physical frame {pfn:#x} outside RAM "
                f"({self.num_frames:#x} frames)"
            )
        fr = self._frames.get(pfn)
        if fr is None:
            fr = bytearray(PAGE_SIZE)
            self._frames[pfn] = fr
        return fr

    @property
    def resident_frames(self) -> int:
        """Number of frames actually materialized."""
        return len(self._frames)

    # ------------------------------------------------------------------
    # Raw byte access (physical addresses)
    # ------------------------------------------------------------------
    def read_bytes(self, addr: int, length: int) -> bytes:
        out = bytearray()
        remaining = length
        cursor = addr
        while remaining > 0:
            fr = self.frame(page_number(cursor))
            off = page_offset(cursor)
            chunk = min(remaining, PAGE_SIZE - off)
            out += fr[off : off + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, addr: int, data: bytes) -> None:
        remaining = len(data)
        cursor = addr
        src = 0
        while remaining > 0:
            fr = self.frame(page_number(cursor))
            off = page_offset(cursor)
            chunk = min(remaining, PAGE_SIZE - off)
            fr[off : off + chunk] = data[src : src + chunk]
            cursor += chunk
            src += chunk
            remaining -= chunk

    # ------------------------------------------------------------------
    # Word helpers (little-endian, like x86)
    # ------------------------------------------------------------------
    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read_bytes(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.write_bytes(addr, struct.pack("<Q", value & 0xFFFFFFFFFFFFFFFF))

    def read_u32(self, addr: int) -> int:
        return struct.unpack("<I", self.read_bytes(addr, 4))[0]

    def write_u32(self, addr: int, value: int) -> None:
        self.write_bytes(addr, struct.pack("<I", value & 0xFFFFFFFF))

    def read_cstring(self, addr: int, max_len: int = 256) -> str:
        """Read a NUL-terminated ASCII string."""
        raw = self.read_bytes(addr, max_len)
        end = raw.find(b"\x00")
        if end < 0:
            end = max_len
        return raw[:end].decode("ascii", errors="replace")

    def write_cstring(self, addr: int, text: str, field_len: int) -> None:
        """Write ``text`` NUL-padded into a fixed-size field."""
        encoded = text.encode("ascii", errors="replace")[: field_len - 1]
        self.write_bytes(addr, encoded + b"\x00" * (field_len - len(encoded)))
