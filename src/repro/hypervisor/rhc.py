"""Remote Health Checker (RHC).

Runs on a *separate machine* (Fig 2) and measures intervals between
sampled events arriving from the EM.  Silence beyond the timeout means
the monitoring pipeline itself — EF, EM, or the whole host — has died,
closing the "who monitors the monitor" loop.

Besides the host-wide heartbeat, the RHC watches named *channels*: one
per auditing container on a shared host.  The host-wide signal cannot
distinguish "vm1's auditors died" from healthy silence as long as any
other VM keeps the pipeline busy; per-channel timestamps can, so a
single quarantined container is flagged while its neighbours stay
green.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.sim.clock import SECOND
from repro.sim.engine import Engine


class RemoteHealthChecker:
    """Heartbeat watcher for the monitoring pipeline."""

    def __init__(
        self,
        engine: Engine,
        timeout_ns: int = 5 * SECOND,
        check_period_ns: int = 1 * SECOND,
    ) -> None:
        self.engine = engine
        self.timeout_ns = timeout_ns
        self.check_period_ns = check_period_ns
        self.last_heartbeat_ns: Optional[int] = None
        self.heartbeats = 0
        self.alerts: List[int] = []
        #: Per-channel silence alerts as ``(t_ns, channel)``.
        self.channel_alerts: List[Tuple[int, str]] = []
        self._channel_last: Dict[str, int] = {}
        self._channel_alarmed: Set[str] = set()
        #: Silent-stall alerts as ``(t_ns, flow)``: the watched counter
        #: flatlined while heartbeats kept arriving.
        self.flow_alerts: List[Tuple[int, str]] = []
        self._flow_probes: Dict[str, Callable[[], int]] = {}
        self._flow_value: Dict[str, int] = {}
        self._flow_changed_ns: Dict[str, int] = {}
        self._flow_alarmed: Set[str] = set()
        self._started = False
        self._alert_raised = False

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        now = self.engine.clock.now
        self.last_heartbeat_ns = now
        for channel in self._channel_last:
            self._channel_last[channel] = max(self._channel_last[channel], now)
        self.engine.schedule(self.check_period_ns, self._check, label="rhc-check")

    def watch(self, channel: str) -> None:
        """Register a named heartbeat channel (one auditing container)."""
        self._channel_last.setdefault(channel, self.engine.clock.now)

    def watch_flow(self, name: str, probe: Callable[[], int]) -> None:
        """Watch a stage counter for *silent* stalls.

        ``probe`` returns a monotonically growing count (an obs stage
        counter, e.g. the EM's submissions for one VM).  If the count
        stops growing for longer than the timeout **while heartbeats
        are still arriving**, a flow alert is raised: the pipeline
        looks alive but events are no longer moving — the failure mode
        a heartbeat alone cannot see.  When heartbeats are silent too,
        the ordinary host-wide alert covers it and the flow stays
        quiet (no double-reporting one dead pipeline).
        """
        self._flow_probes[name] = probe
        self._flow_value[name] = probe()
        self._flow_changed_ns[name] = self.engine.clock.now

    def heartbeat(self, t_ns: int, channel: Optional[str] = None) -> None:
        self.heartbeats += 1
        self.last_heartbeat_ns = t_ns
        self._alert_raised = False
        if channel is not None:
            self._channel_last[channel] = t_ns
            self._channel_alarmed.discard(channel)

    def _check(self) -> None:
        if not self._started:
            return
        now = self.engine.clock.now
        last = self.last_heartbeat_ns if self.last_heartbeat_ns is not None else 0
        if now - last > self.timeout_ns and not self._alert_raised:
            self.alerts.append(now)
            self._alert_raised = True
        for channel, channel_last in self._channel_last.items():
            if (
                now - channel_last > self.timeout_ns
                and channel not in self._channel_alarmed
            ):
                self.channel_alerts.append((now, channel))
                self._channel_alarmed.add(channel)
        heartbeats_flowing = now - last <= self.timeout_ns
        for name, probe in self._flow_probes.items():
            value = probe()
            if value != self._flow_value[name]:
                self._flow_value[name] = value
                self._flow_changed_ns[name] = now
                self._flow_alarmed.discard(name)
            elif (
                now - self._flow_changed_ns[name] > self.timeout_ns
                and heartbeats_flowing
                and name not in self._flow_alarmed
            ):
                self.flow_alerts.append((now, name))
                self._flow_alarmed.add(name)
        self.engine.schedule(self.check_period_ns, self._check, label="rhc-check")

    def stop(self) -> None:
        self._started = False

    @property
    def alarmed(self) -> bool:
        return bool(self.alerts)

    @property
    def stalled_channels(self) -> Set[str]:
        """Channels currently past the silence timeout (live view: a
        resumed heartbeat clears the channel)."""
        return set(self._channel_alarmed)

    @property
    def stalled_flows(self) -> Set[str]:
        """Flows currently flatlined despite live heartbeats (live
        view: a resumed counter clears the flow)."""
        return set(self._flow_alarmed)
