"""Forward taint dataflow: sources, propagation, summaries, sinks.

*Sources* are parameters annotated with ``GuestEvent`` (or a subclass)
or ``VMExit`` — everything on those objects (``payload``, ``qual()``,
``qualification``) is guest-controlled.  *Sinks* are hypervisor/EM
control actions: EPT permission writes, interrupt injection, VM
pause/resume.  Taint propagates through assignments, arithmetic,
containers and calls; a call to a **declared sanitizer**
(:mod:`repro.analysis.flow.sanitizers`) returns clean, because the
derive layer re-roots the value in architectural state.

The engine is interprocedural via per-function **summaries** computed
on demand and memoized: which parameters flow to the return value, and
which parameters reach a sink inside the callee.  A call with a tainted
argument then either propagates taint (return summary) or reports at
the call site (sink summary) — which is also where an audited pragma
belongs.

Taint values are *sets of source descriptions* (frozensets of strings)
so a finding can name every guest-controlled input that reached the
sink; messages are line-number-free, keeping baseline fingerprints
stable under unrelated edits.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.cfg import BranchTest, LoopIter
from repro.analysis.flow.lattice import forward
from repro.analysis.repo import dotted_name

Taint = FrozenSet[str]
_CLEAN: Taint = frozenset()

#: Bare callable names that are control sinks, with the action a
#: finding reports.  ``pending_interrupts.append`` is matched as a
#: dotted suffix below.
_SINK_ATTRS = {
    "set_permissions": "EPT permission write set_permissions()",
    "inject_interrupt": "interrupt injection inject_interrupt()",
    "queue_interrupt": "interrupt injection queue_interrupt()",
    "pause_vm": "VM control pause_vm()",
    "resume_vm": "VM control resume_vm()",
}


def sink_description(call: ast.Call) -> Optional[str]:
    """The control action this call performs, if it is a sink."""
    func = call.func
    name = None
    if isinstance(func, ast.Attribute):
        name = func.attr
        if name == "append":
            dotted = dotted_name(func)
            if dotted is not None and dotted.endswith(
                "pending_interrupts.append"
            ):
                return "interrupt injection pending_interrupts.append()"
            return None
    elif isinstance(func, ast.Name):
        name = func.id
    return _SINK_ATTRS.get(name) if name else None


@dataclass
class Summary:
    """What a callee does with its parameters (self excluded)."""

    #: Parameter names whose taint reaches the return value.
    returns_params: FrozenSet[str] = frozenset()
    #: Parameter name -> sink descriptions its taint reaches.
    param_sinks: Dict[str, Tuple[str, ...]] = field(default_factory=dict)


_EMPTY_SUMMARY = Summary()

#: Events (``.qual()``/attribute access) that read guest-controlled
#: state off a tainted object; plain propagation covers them, listed
#: here only for documentation.
FindingSink = Callable[[int, str], None]


class TaintEngine:
    """Shared across the guest-taint rule's scopes (one per context)."""

    def __init__(self, index) -> None:
        self.index = index
        self._summaries: Dict[Tuple[str, str], Summary] = {}
        self._in_progress: Set[Tuple[str, str]] = set()

    # ------------------------------------------------------------------
    def summary(self, info) -> Summary:
        """Memoized summary for one resolved callee (cycle-safe: a
        recursive chain sees an empty summary, an under-approximation
        consistent with one fixpoint pass)."""
        key = (info.module, info.qualname)
        cached = self._summaries.get(key)
        if cached is not None:
            return cached
        if key in self._in_progress:
            return _EMPTY_SUMMARY
        self._in_progress.add(key)
        try:
            computed = self._compute_summary(info)
        finally:
            self._in_progress.discard(key)
        self._summaries[key] = computed
        return computed

    def _compute_summary(self, info) -> Summary:
        from repro.analysis.flow.callgraph import FunctionScope

        scope = FunctionScope(
            self.index.ctx.module(info.module)
            or self._source_for(info),
            info.node,
            info.qualname,
            info.class_name,
        )
        params = _param_names(info.node)
        tainted = {p: frozenset({f"<param:{p}>"}) for p in params}
        run = self.analyze(scope, tainted, report=None)
        returns = frozenset(
            p for p in params if f"<param:{p}>" in run.return_taint
        )
        param_sinks: Dict[str, Tuple[str, ...]] = {}
        for taint_set, sink in run.sink_hits:
            for marker in taint_set:
                if marker.startswith("<param:"):
                    p = marker[len("<param:"):-1]
                    sinks = param_sinks.setdefault(p, ())
                    if sink not in sinks:
                        param_sinks[p] = sinks + (sink,)
        return Summary(returns_params=returns, param_sinks=param_sinks)

    def _source_for(self, info):
        for source in self.index.ctx.files:
            if source.rel == info.rel:
                return source
        raise KeyError(info.rel)

    # ------------------------------------------------------------------
    def analyze(
        self,
        scope,
        tainted_params: Dict[str, Taint],
        report: Optional[FindingSink],
    ) -> "_Run":
        """Run the dataflow over one function scope.

        With ``report`` set, emits findings for tainted sink arguments,
        tainted arguments reaching sinks through callee summaries, and
        tainted branch conditions directly guarding sink calls.
        """
        run = _Run(self, scope, report)
        cfg = self.index.cfg(scope.node)
        initial = tuple(sorted(tainted_params.items()))
        in_states = forward(cfg, initial, run.transfer, _join)
        # Reporting pass at fixpoint (transfer was finding-silent
        # during iteration to avoid duplicates on revisits).
        run.reporting = True
        for block_id in sorted(in_states):
            run.transfer(cfg.blocks[block_id], in_states[block_id])
        return run


def _join(a, b):
    merged = dict(a)
    for name, taint_set in b:
        merged[name] = merged.get(name, _CLEAN) | taint_set
    return tuple(sorted(merged.items()))


def _param_names(node: ast.AST) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return [n for n in names if n != "self"]


def annotation_names(annotation: Optional[ast.expr]) -> Set[str]:
    """Every plain name mentioned by an annotation (handles
    ``Optional[X]``, ``"X"`` strings, dotted references)."""
    names: Set[str] = set()
    if annotation is None:
        return names
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value.rpartition(".")[2].strip("[]"))
    return names


class _Run:
    """One dataflow execution: transfer function + collected results."""

    def __init__(self, engine: TaintEngine, scope, report) -> None:
        self.engine = engine
        self.scope = scope
        self.report = report
        self.reporting = False
        self.return_taint: Taint = _CLEAN
        #: (taint set, sink description) for every tainted sink arg.
        self.sink_hits: List[Tuple[Taint, str]] = []
        self._reported: Set[Tuple[int, str]] = set()

    # -- state plumbing -------------------------------------------------
    def transfer(self, block, state):
        env: Dict[str, Taint] = dict(state)
        for stmt in block.stmts:
            self._exec(stmt, env)
        return tuple(sorted(item for item in env.items() if item[1]))

    def _exec(self, stmt, env: Dict[str, Taint]) -> None:
        if isinstance(stmt, BranchTest):
            test_taint = self._eval(stmt.test, env)
            if test_taint:
                self._check_guarded_sinks(stmt, test_taint)
            return
        if isinstance(stmt, LoopIter):
            taint = self._eval(stmt.iter, env)
            self._bind(stmt.target, taint, env)
            return
        if isinstance(stmt, ast.Assign):
            taint = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, taint, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, env), env)
            return
        if isinstance(stmt, ast.AugAssign):
            taint = self._eval(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = env.get(stmt.target.id, _CLEAN) | taint
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.return_taint |= self._eval(stmt.value, env)
            return
        if isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
            if isinstance(stmt, ast.Expr):
                self._eval(stmt.value, env)
            elif isinstance(stmt, ast.Assert):
                self._eval(stmt.test, env)
            else:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        env.pop(target.id, None)
            return
        # Anything else (nested defs, imports, raise, globals): evaluate
        # contained expressions so sink calls inside them are still seen.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child, env)

    def _bind(self, target: ast.expr, taint: Taint,
              env: Dict[str, Taint]) -> None:
        if isinstance(target, ast.Name):
            if taint:
                env[target.id] = taint
            else:
                env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint, env)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint, env)
        # Attribute/subscript stores are not tracked (documented limit).

    # -- expression evaluation -----------------------------------------
    def _eval(self, expr: ast.expr, env: Dict[str, Taint]) -> Taint:
        if isinstance(expr, ast.Name):
            return env.get(expr.id, _CLEAN)
        if isinstance(expr, ast.Constant):
            return _CLEAN
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, (ast.Lambda, ast.FunctionDef)):
            return _CLEAN
        if isinstance(expr, ast.Attribute):
            return self._eval(expr.value, env)
        # Generic node: union of child expression taints (BinOp,
        # BoolOp, Compare, Subscript, containers, f-strings,
        # comprehensions, IfExp, Await, Starred ...).
        taint = _CLEAN
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                taint |= self._eval(child, env)
            elif isinstance(child, ast.comprehension):
                taint |= self._eval(child.iter, env)
        return taint

    def _eval_call(self, call: ast.Call, env: Dict[str, Taint]) -> Taint:
        arg_taints: List[Taint] = []
        for arg in call.args:
            node = arg.value if isinstance(arg, ast.Starred) else arg
            arg_taints.append(self._eval(node, env))
        kw_taints: Dict[str, Taint] = {}
        joined = _CLEAN
        for kw in call.keywords:
            taint = self._eval(kw.value, env)
            if kw.arg is not None:
                kw_taints[kw.arg] = taint
            joined |= taint
        for taint in arg_taints:
            joined |= taint
        receiver = _CLEAN
        if isinstance(call.func, ast.Attribute):
            receiver = self._eval(call.func.value, env)
        joined |= receiver

        # Sink check: any tainted direct argument.
        sink = sink_description(call)
        if sink is not None:
            tainted_args = _CLEAN
            for taint in arg_taints:
                tainted_args |= taint
            for taint in kw_taints.values():
                tainted_args |= taint
            if tainted_args:
                self.sink_hits.append((tainted_args, sink))
                self._emit(
                    call.lineno,
                    f"guest-controlled value ({_fmt(tainted_args)}) is an "
                    f"argument to {sink}; derive it through "
                    f"repro.core.derive or add an audited pragma",
                )

        # Declared sanitizer: clean regardless of inputs.
        if self.engine.index.sanitizers.matches(call):
            return _CLEAN

        resolved = self._resolve(call)
        if resolved is not None:
            summary = self.engine.summary(resolved)
            result = _CLEAN
            params = _param_names(resolved.node)
            for i, taint in enumerate(arg_taints):
                if not taint or i >= len(params):
                    continue
                self._apply_param(
                    call, resolved, summary, params[i], taint
                )
                if params[i] in summary.returns_params:
                    result |= taint
            for name, taint in kw_taints.items():
                if not taint or name not in params:
                    continue
                self._apply_param(call, resolved, summary, name, taint)
                if name in summary.returns_params:
                    result |= taint
            return result
        # Unresolved call with tainted inputs: conservatively tainted.
        return joined

    def _apply_param(self, call, resolved, summary: Summary,
                     param: str, taint: Taint) -> None:
        for sink in summary.param_sinks.get(param, ()):
            self.sink_hits.append((taint, sink))
            self._emit(
                call.lineno,
                f"guest-controlled value ({_fmt(taint)}) reaches {sink} "
                f"via {resolved.name}(); derive it through "
                f"repro.core.derive or add an audited pragma",
            )

    def _check_guarded_sinks(self, branch: BranchTest, taint: Taint) -> None:
        bodies = list(getattr(branch.node, "body", []))
        bodies += list(getattr(branch.node, "orelse", []))
        for node in _walk_no_defs(bodies):
            if isinstance(node, ast.Call):
                sink = sink_description(node)
                if sink is not None:
                    self._emit(
                        branch.test.lineno,
                        f"guest-tainted condition ({_fmt(taint)}) decides "
                        f"whether {sink} runs; control decisions must key "
                        f"on derived architectural state",
                    )
                    return

    def _resolve(self, call: ast.Call):
        graph = self.engine.index.callgraph
        return graph.resolve_call(
            call,
            self.scope.source,
            self.scope.class_name,
            self.scope.local_defs(graph),
            self.scope.local_types(graph),
            self.scope.local_aliases(),
        )

    def _emit(self, line: int, message: str) -> None:
        if self.report is None or not self.reporting:
            return
        if (line, message) in self._reported:
            return
        self._reported.add((line, message))
        self.report(line, message)


def _fmt(taint: Taint) -> str:
    return ", ".join(sorted(taint))


def _walk_no_defs(stmts):
    stack = list(stmts)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))
