"""Fig 5 — GOSHD detection latency.

Paper's result: >90% of hangs are detected within ~4s (the threshold)
measured from fault activation; all within 32s.  Partial-hang
detection gives tens of seconds of warning before the corresponding
full hang: at 4s only ~54% of eventually-full hangs have completed.

Reuses the session campaign and prints the two CDFs of Fig 5: first
(partial-or-full) detection latency, and full-hang latency.
"""

from __future__ import annotations

from _benchlib import get_campaign_summary

from repro.analysis.figures import ascii_cdf
from repro.analysis.stats import fraction_at_or_below, percentile


def test_fig5_goshd_detection_latency(benchmark, report):
    summary = get_campaign_summary()

    first = summary.detection_latencies_s()
    full = summary.full_hang_latencies_s()
    assert first, "campaign produced no detections to measure"

    benchmark.pedantic(
        summary.detection_latencies_s, rounds=5, iterations=1
    )

    table = ascii_cdf(
        [
            ("first hang detected", first),
            ("full hang reached", full or [float("inf")]),
        ],
        points=[4, 6, 8, 12, 16, 24, 32],
        unit="s",
        title=(
            "Fig 5 — detection latency CDF "
            f"({len(first)} detections, {len(full)} full hangs)"
        ),
    )
    stats = (
        f"\nmedian first-detection latency: {percentile(first, 50):.2f}s"
        f"\nmax first-detection latency   : {max(first):.2f}s"
        "   (paper: all within 32s)"
        f"\ndetected within 6s            : "
        f"{fraction_at_or_below(first, 6.0) * 100:.1f}%"
        "   (paper: >90% around the 4s threshold)"
    )
    report(table + stats)

    # Shape assertions.
    assert fraction_at_or_below(first, 8.0) >= 0.6, (
        "most hangs must be detected shortly after the 4s threshold"
    )
    assert max(first) <= 32.0, "no detection should take longer than 32s"
    # Partial-hang detection buys warning time: in every trial that
    # reached a full hang, the first (partial) alarm came no later.
    for result in summary.results:
        full_latency = result.full_hang_latency_ns
        if full_latency is not None:
            assert result.detection_latency_ns <= full_latency
