"""Tests for the §VII-D syscall-policy and sequence-anomaly auditors."""

import pytest

from repro.auditors.syscall_policy import (
    SyscallPolicy,
    SyscallPolicyAuditor,
    SyscallSequenceAnomalyDetector,
)


def well_behaved_daemon(ctx):
    """open -> read -> write -> close, repeatedly."""
    while True:
        fd = yield ctx.sys_open("/var/data")
        yield ctx.sys_read(fd, 256)
        yield ctx.sys_write(fd, 256)
        yield ctx.sys_close(fd)
        yield ctx.sys_nanosleep(20_000_000)


class TestSyscallPolicy:
    def test_policy_builder(self):
        policy = SyscallPolicy.allow("/bin/cat", "open", "read", "close")
        from repro.guest.syscalls import SYSCALL_NUMBERS

        assert SYSCALL_NUMBERS["open"] in policy.allowed
        assert SYSCALL_NUMBERS["write"] not in policy.allowed

    def test_conforming_process_passes(self, testbed):
        auditor = SyscallPolicyAuditor(
            {
                "/usr/sbin/datad": SyscallPolicy.allow(
                    "/usr/sbin/datad",
                    "open", "read", "write", "close", "nanosleep",
                )
            }
        )
        testbed.monitor([auditor])
        testbed.kernel.spawn_process(
            well_behaved_daemon, "datad", uid=2, exe="/usr/sbin/datad"
        )
        testbed.run_s(1.0)
        assert auditor.checked > 0
        assert auditor.violations == []

    def test_violation_detected(self, testbed):
        auditor = SyscallPolicyAuditor(
            {
                "/usr/sbin/datad": SyscallPolicy.allow(
                    "/usr/sbin/datad", "open", "read", "close", "nanosleep"
                )  # note: write NOT allowed
            }
        )
        testbed.monitor([auditor])
        testbed.kernel.spawn_process(
            well_behaved_daemon, "datad", uid=2, exe="/usr/sbin/datad"
        )
        testbed.run_s(1.0)
        assert auditor.violations
        violation = auditor.violations[0]
        assert violation["syscall"] == "write"
        assert violation["exe"] == "/usr/sbin/datad"

    def test_default_deny_mode(self, testbed):
        auditor = SyscallPolicyAuditor({}, default_allow=False)
        testbed.monitor([auditor])
        testbed.kernel.spawn_process(
            well_behaved_daemon, "datad", uid=2, exe="/usr/sbin/datad"
        )
        testbed.run_s(0.5)
        assert auditor.violations

    def test_pause_on_violation(self, testbed):
        auditor = SyscallPolicyAuditor(
            {"/x": SyscallPolicy.allow("/x", "getpid")},
            default_allow=True,
            pause_on_violation=True,
        )
        testbed.monitor([auditor])

        def rogue(ctx):
            while True:
                yield ctx.sys_disk_read(1)

        testbed.kernel.spawn_process(rogue, "rogue", uid=2, exe="/x")
        testbed.run_s(1.0)
        assert auditor.violations
        assert testbed.machine.vm_paused

    def test_policy_identity_is_architectural(self, testbed):
        """The exe used for the policy lookup comes from the derived
        task_struct — an in-guest /proc lie does not change it, but
        the attacker *can* overwrite the exe field itself (values are
        forgeable; the anchor is not). Verify we read the real field."""
        auditor = SyscallPolicyAuditor({}, default_allow=False)
        testbed.monitor([auditor])
        task = testbed.kernel.spawn_process(
            well_behaved_daemon, "d", uid=2, exe="/usr/sbin/datad"
        )
        testbed.run_s(0.3)
        assert any(
            v["exe"] == "/usr/sbin/datad" for v in auditor.violations
        )


class TestSequenceAnomaly:
    def test_learns_then_accepts_normal(self, testbed):
        detector = SyscallSequenceAnomalyDetector(ngram=3)
        testbed.monitor([detector])
        testbed.kernel.spawn_process(
            well_behaved_daemon, "d", uid=2, exe="/usr/sbin/datad"
        )
        testbed.run_s(1.0)
        detector.finish_learning()
        testbed.run_s(1.0)
        assert detector.profile_size("/usr/sbin/datad") > 0
        assert detector.anomalies_found == 0

    def test_flags_novel_sequence(self, testbed):
        detector = SyscallSequenceAnomalyDetector(ngram=3)
        testbed.monitor([detector])
        phase = {"attack": False}

        def daemon(ctx):
            while True:
                if not phase["attack"]:
                    fd = yield ctx.sys_open("/var/data")
                    yield ctx.sys_read(fd, 256)
                    yield ctx.sys_close(fd)
                else:
                    # Exploited: suddenly spawning and escalating.
                    yield ctx.syscall("vuln_sock_diag")
                    yield ctx.sys_disk_read(1)
                yield ctx.sys_nanosleep(10_000_000)

        testbed.kernel.spawn_process(daemon, "d", uid=2, exe="/usr/sbin/d")
        testbed.run_s(1.0)
        detector.finish_learning()
        testbed.run_s(0.3)
        assert detector.anomalies_found == 0
        phase["attack"] = True
        testbed.run_s(0.5)
        assert detector.anomalies_found > 0
        ngram = detector.alerts[0]["ngram"]
        assert "vuln_sock_diag" in ngram or "disk_read" in ngram

    def test_profiles_are_per_executable(self, testbed):
        detector = SyscallSequenceAnomalyDetector(ngram=2)
        testbed.monitor([detector])

        def writer(ctx):
            while True:
                yield ctx.sys_write(1, 8)
                yield ctx.sys_nanosleep(10_000_000)

        testbed.kernel.spawn_process(writer, "w", uid=2, exe="/bin/w")
        testbed.kernel.spawn_process(
            well_behaved_daemon, "d", uid=2, exe="/bin/d"
        )
        testbed.run_s(1.0)
        assert detector.profile_size("/bin/w") > 0
        assert detector.profile_size("/bin/d") > 0
        assert detector.profile_size("/bin/w") != detector.profile_size(
            "/bin/d"
        )

    def test_ngram_validation(self):
        with pytest.raises(ValueError):
            SyscallSequenceAnomalyDetector(ngram=1)

    def test_anomaly_alerted_once_per_gram(self, testbed):
        detector = SyscallSequenceAnomalyDetector(ngram=2)
        testbed.monitor([detector])
        phase = {"attack": False}

        def daemon(ctx):
            while True:
                if phase["attack"]:
                    yield ctx.sys_disk_write(1)
                yield ctx.sys_write(1, 8)
                yield ctx.sys_nanosleep(10_000_000)

        testbed.kernel.spawn_process(daemon, "d", uid=2, exe="/bin/d")
        testbed.run_s(0.8)
        detector.finish_learning()
        phase["attack"] = True
        testbed.run_s(1.0)
        first_count = detector.anomalies_found
        assert first_count > 0
        testbed.run_s(1.0)
        # The same novel grams do not re-alert forever.
        assert detector.anomalies_found <= first_count + 2
