"""Unit tests for smaller surfaces: errors, layouts, kalloc, vmcs,
devices, harness helpers, auditor base."""

import pytest

from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.errors import (
    AuditorCrash,
    ConfigurationError,
    GuestPageFault,
    MonitorError,
    ReproError,
    SimulationError,
)
from repro.guest.kalloc import KernelAllocator
from repro.guest.layouts import (
    StructLayout,
    TASK_STRUCT,
    direct_map_gpa,
    direct_map_gva,
)
from repro.harness import build_testbed
from repro.hw.machine import Machine, MachineConfig
from repro.hw.memory import PAGE_SIZE
from repro.hw.vmcs import ExecutionControls, Vmcs


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SimulationError, ReproError)
        assert issubclass(ConfigurationError, SimulationError)
        assert issubclass(AuditorCrash, MonitorError)
        assert issubclass(GuestPageFault, ReproError)

    def test_page_fault_carries_details(self):
        fault = GuestPageFault(0x1234, "w")
        assert fault.gva == 0x1234
        assert fault.access == "w"
        assert "0x1234" in str(fault)


class TestLayouts:
    def test_direct_map_roundtrip(self):
        gpa = 0x0250_0000
        assert direct_map_gpa(direct_map_gva(gpa)) == gpa

    def test_direct_map_rejects_low_gva(self):
        with pytest.raises(SimulationError):
            direct_map_gpa(0x1000)

    def test_struct_layout_packing(self):
        layout = StructLayout("s", {"a": (8, "u64"), "b": (16, "str")})
        assert layout.offset("a") == 0
        assert layout.offset("b") == 8
        assert layout.size == 24

    def test_struct_ref_type_checks(self, testbed):
        init = testbed.kernel.find_task(1)
        ref = testbed.kernel.task_ref(init)
        with pytest.raises(SimulationError):
            ref.read("comm")  # string field via int reader
        with pytest.raises(SimulationError):
            ref.write_str("pid", "x")  # int field via str writer

    def test_task_struct_has_linux_essentials(self):
        for field in ("pid", "uid", "euid", "comm", "tasks_next",
                      "tasks_prev", "mm", "stack", "parent"):
            assert field in TASK_STRUCT.fields


class TestKernelAllocator:
    def _machine(self):
        return Machine(MachineConfig(num_vcpus=1, ram_bytes=64 * 1024 * 1024))

    def test_alignment(self):
        allocator = KernelAllocator(self._machine())
        a = allocator.alloc(10, align=64)
        assert direct_map_gpa(a) % 64 == 0

    def test_page_alloc_aligned(self):
        allocator = KernelAllocator(self._machine())
        allocator.alloc(10)
        page = allocator.alloc_page()
        assert direct_map_gpa(page) % PAGE_SIZE == 0

    def test_allocations_disjoint(self):
        allocator = KernelAllocator(self._machine())
        a = allocator.alloc(100)
        b = allocator.alloc(100)
        assert b >= a + 100

    def test_mapped_in_kernel_table(self):
        machine = self._machine()
        allocator = KernelAllocator(machine)
        gva = allocator.alloc(8)
        assert machine.page_registry.kernel.lookup(gva) is not None

    def test_zero_size_rejected(self):
        with pytest.raises(SimulationError):
            KernelAllocator(self._machine()).alloc(0)

    def test_exhaustion(self):
        machine = Machine(MachineConfig(num_vcpus=1, ram_bytes=64 * 1024 * 1024))
        allocator = KernelAllocator(machine, start_gpa=0)
        with pytest.raises(SimulationError):
            allocator.alloc(machine.memory.size_bytes + PAGE_SIZE)

    def test_stats(self):
        allocator = KernelAllocator(self._machine())
        allocator.alloc(100)
        allocator.alloc(50)
        assert allocator.allocations == 2
        assert allocator.allocated_bytes == 150


class TestVmcs:
    def test_default_controls_match_kvm(self):
        controls = ExecutionControls()
        assert controls.cr3_load_exiting is False  # EPT: no CR3 traps
        assert controls.io_exiting is True
        assert controls.external_interrupt_exiting is True
        assert controls.exception_bitmap == set()

    def test_record_exit(self):
        from repro.hw.exits import ExitReason, VMExit

        vmcs = Vmcs()
        exit_event = VMExit(ExitReason.HLT, 0, 0)
        vmcs.record_exit(exit_event)
        assert vmcs.last_exit is exit_event
        assert vmcs.exit_count == 1


class TestDevices:
    def test_nic_counts(self, testbed):
        nic = testbed.machine.nic
        before = nic.packets_received
        testbed.kernel.deliver_packet(128)
        assert nic.packets_received == before + 1

    def test_disk_counters_via_workload(self, testbed):
        def io_prog(ctx):
            yield ctx.sys_disk_write(3)
            yield ctx.exit(0)

        testbed.kernel.spawn_process(io_prog, "io", uid=1000)
        testbed.run_s(1.0)
        assert testbed.machine.disk.blocks_written >= 3

    def test_console_text(self, testbed):
        for byte in b"ok":
            testbed.machine.io_bus.access(
                testbed.machine.vcpus[0], 0x3F8, "out", byte
            )
        assert testbed.machine.console.text().endswith("ok")


class TestHarness:
    def test_build_testbed_boots(self):
        testbed = build_testbed(seed=77)
        assert testbed.kernel.booted
        assert testbed.hypertap is None

    def test_build_testbed_with_auditors(self):
        class Quiet(Auditor):
            name = "quiet"
            subscriptions = {EventType.THREAD_SWITCH}

            def audit(self, event):
                pass

        testbed = build_testbed(auditors=[Quiet()], seed=77)
        assert testbed.hypertap is not None
        assert testbed.hypertap.attached

    def test_now_s(self):
        testbed = build_testbed(seed=1)
        testbed.run_ms(1500)
        assert testbed.now_s == pytest.approx(1.5)


class TestAuditorBase:
    def test_audit_is_abstract(self):
        auditor = Auditor()
        with pytest.raises(NotImplementedError):
            auditor.audit(object())

    def test_alert_recording_without_bind(self):
        class A(Auditor):
            subscriptions = set()

            def audit(self, event):
                pass

        a = A()
        alert = a.raise_alert("test", detail=1)
        assert a.alarmed
        assert alert["detail"] == 1
        assert alert["time_ns"] == 0  # unbound: no clock

    def test_wants_blocking_default(self):
        class B(Auditor):
            blocking = True
            subscriptions = set()

            def audit(self, event):
                pass

        assert B().wants_blocking(object()) is True
