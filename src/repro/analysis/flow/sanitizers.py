"""The declared-sanitizer registry for guest-taint analysis.

A *sanitizer* is a function whose return value is trusted even when its
arguments were guest-controlled, because it re-roots the value in
hardware architectural state — the paper's derivation chains (Fig 3):
``TR.base -> TSS.RSP0 -> task_struct`` walks read through EPT-protected
kernel structures, not through anything the guest merely *claims*.

The registry is **declared in the code under analysis**, not in the
analyzer: ``repro.core.derive`` exports a ``TAINT_SANITIZERS`` tuple of
``"func"`` / ``"Class.method"`` strings, and this module harvests it
from the AST.  Adding a sanitizer is therefore a reviewed change to the
derive layer (where the trust argument lives), and synthetic test trees
can declare their own.  When the tree has no ``repro.core.derive`` (or
no table), :data:`DEFAULT_SANITIZERS` — the shipped derive chain —
applies, so fixture trees exercise realistic defaults.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import FrozenSet

from repro.analysis.repo import AnalysisContext

#: Module expected to declare the registry.
SANITIZER_HOME = "repro.core.derive"
SANITIZER_TABLE = "TAINT_SANITIZERS"

#: Fallback mirroring the real ``repro.core.derive.TAINT_SANITIZERS``.
DEFAULT_SANITIZERS = (
    "ArchDeriver.task_gva_from_rsp0",
    "ArchDeriver.task_info_at",
    "ArchDeriver.task_info_from_rsp0",
    "ArchDeriver.current_task_info",
)


@dataclass(frozen=True)
class SanitizerSet:
    """Names a call may match to launder taint."""

    #: Bare callable names (``task_info_at``): matched against the
    #: final attribute/name of a call target.  Receiver types are not
    #: tracked, so a method sanitizer matches by method name — the
    #: registry should therefore avoid generic names.
    names: FrozenSet[str]
    #: The declarations as written (``Class.method``), for messages.
    declared: FrozenSet[str]

    def matches(self, call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr in self.names
        if isinstance(func, ast.Name):
            return func.id in self.names
        return False


def harvest_sanitizers(ctx: AnalysisContext) -> SanitizerSet:
    """Read ``TAINT_SANITIZERS`` out of the tree's derive module."""
    declared = None
    source = ctx.module(SANITIZER_HOME)
    if source is not None:
        for node in source.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == SANITIZER_TABLE
                for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List, ast.Set)):
                declared = tuple(
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
    if declared is None:
        declared = DEFAULT_SANITIZERS
    return SanitizerSet(
        names=frozenset(entry.rpartition(".")[2] for entry in declared),
        declared=frozenset(declared),
    )
