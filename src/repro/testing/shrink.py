"""ddmin-style trace reduction: from a failing trace to a minimal repro.

Zeller's delta debugging over the trace body: repeatedly try removing
chunks of records and keep any removal under which the interesting
property (the same differential finding, by key) still reproduces.
Timestamps are preserved — a finding that depends on a silence gap or
on sighting staleness survives removal of unrelated records but not a
renumbering — and the header is kept verbatim apart from a recount.

The predicate replays each candidate, so reduction cost is bounded by
``max_tests`` replays; with the auditor pipeline at ~100k events/s a
few hundred tests over a shrinking trace finish in seconds.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional

from repro.replay.format import Trace
from repro.replay.source import ReplaySource
from repro.sim.perturb import perturbation_from_params
from repro.testing.oracle import DifferentialOracle
from repro.testing.seeds import auditors_for


def materialize_schedule(
    trace: Trace, perturb_params: Dict[str, Any]
) -> Trace:
    """Bake an adversarial delivery schedule into the trace itself.

    A perturbed replay delivers records in engine order — delayed,
    shuffled, with some dropped.  Re-running the scheduling pass and
    sorting the surviving records by their actual ``(when, prio, seq)``
    yields an ordinary trace whose *file order* is that delivery order
    (unperturbed replay never rewinds its clock, so an old-timestamp
    record placed late still arrives late).  Timestamps are preserved.
    Findings that survive materialization shrink as plain traces — no
    perturbation seed to keep consistent while records are removed.
    """
    source = ReplaySource(
        trace,
        [],
        perturb=perturbation_from_params(perturb_params),
        collect_delivery=True,
    )
    source.run()
    ordered = sorted(source.delivery_log, key=lambda e: e[:3])
    materialized = _subtrace(
        trace, [copy.deepcopy(e[3]) for e in ordered]
    )
    materialized.header.meta["materialized_from"] = dict(perturb_params)
    return materialized


def make_finding_predicate(
    key: str,
    perturb_params: Optional[Dict[str, Any]] = None,
    oracle: Optional[DifferentialOracle] = None,
) -> Callable[[Trace], bool]:
    """True when replaying ``trace`` still yields the finding ``key``."""
    oracle = oracle if oracle is not None else DifferentialOracle()

    def predicate(trace: Trace) -> bool:
        perturb = (
            perturbation_from_params(perturb_params)
            if perturb_params is not None
            else None
        )
        try:
            auditors = auditors_for(trace)
            report = ReplaySource(trace, auditors, perturb=perturb).run()
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return False
        return any(d.key() == key for d in oracle.check(trace, report))

    return predicate


def _subtrace(trace: Trace, records: List[Dict[str, Any]]) -> Trace:
    sub = Trace(header=copy.deepcopy(trace.header), records=records)
    sub.recount()
    return sub


def _pass_candidates(
    items: List[Any], chunk_len: int, resume: int
) -> List[tuple]:
    """The ``(start, candidate)`` removals one serial pass would try.

    Empty candidates are filtered here exactly as the serial loop skips
    them (without charging a test against the budget).
    """
    out = []
    start = resume
    while start < len(items):
        candidate = items[:start] + items[start + chunk_len:]
        if candidate:
            out.append((start, candidate))
        start += chunk_len
    return out


def ddmin(
    items: List[Any],
    predicate: Callable[[List[Any]], bool],
    max_tests: int = 2000,
    jobs: Optional[int] = None,
) -> List[Any]:
    """Zeller delta debugging over an arbitrary item sequence.

    Minimizes ``items`` while ``predicate(candidate)`` keeps holding;
    the predicate is pluggable, so the same reducer shrinks replay
    traces (via :func:`shrink_trace`) and hut op programs (via
    ``repro.testing.hut``) — any divergence that can be phrased as a
    boolean over a sub-sequence.

    ``predicate`` must hold on ``items`` itself (``ValueError``
    otherwise — shrinking a non-repro silently would hide harness
    bugs).  The result is 1-minimal with respect to the chunks the
    budget allowed: no tested single-chunk removal keeps the predicate.

    ``jobs > 1`` evaluates each pass's candidates speculatively through
    :func:`repro.parallel.parallel_map` (``predicate`` must then be a
    picklable module-level callable or partial) but *commits* strictly
    in serial order: the first passing candidate wins, later
    speculative results are discarded, and only candidates the serial
    algorithm would have reached count against ``max_tests`` — so the
    reduction and its test count are byte-identical at any job count.
    """
    if not predicate(list(items)):
        raise ValueError("predicate does not hold on the unshrunk input")
    if jobs is None or jobs <= 1:
        return _ddmin_serial(items, predicate, max_tests)

    from repro.parallel import parallel_map

    result = list(items)
    tests = 0
    n = 2
    while len(result) >= 2 and tests < max_tests:
        chunk_len = max(1, (len(result) + n - 1) // n)
        removed_any = False
        resume = 0
        while tests < max_tests:
            batch = _pass_candidates(result, chunk_len, resume)
            if not batch:
                break
            batch = batch[: max_tests - tests]
            verdicts = parallel_map(
                predicate, [cand for _, cand in batch], jobs=jobs
            )
            hit = next(
                (i for i, ok in enumerate(verdicts) if ok), None
            )
            if hit is None:
                tests += len(batch)
                break
            # The serial loop would have tested candidates 0..hit and
            # stopped at the first success; everything after `hit` was
            # computed against stale state and is discarded unpaid.
            tests += hit + 1
            resume, result = batch[hit]
            removed_any = True
        if removed_any:
            n = max(n - 1, 2)
        else:
            if chunk_len == 1:
                break
            n = min(n * 2, len(result))
    return result


def _ddmin_serial(
    items: List[Any],
    predicate: Callable[[List[Any]], bool],
    max_tests: int,
) -> List[Any]:
    result = list(items)
    tests = 0
    n = 2
    while len(result) >= 2 and tests < max_tests:
        chunk_len = max(1, (len(result) + n - 1) // n)
        removed_any = False
        start = 0
        while start < len(result) and tests < max_tests:
            candidate = result[:start] + result[start + chunk_len:]
            if not candidate:
                start += chunk_len
                continue
            tests += 1
            if predicate(candidate):
                result = candidate
                removed_any = True
                # Stay at this granularity; the window now points at
                # the records that slid into the removed chunk's place.
            else:
                start += chunk_len
        if removed_any:
            n = max(n - 1, 2)
        else:
            if chunk_len == 1:
                break
            n = min(n * 2, len(result))
    return result


def shrink_trace(
    trace: Trace,
    predicate: Callable[[Trace], bool],
    max_tests: int = 2000,
) -> Trace:
    """Minimize ``trace.records`` while ``predicate`` keeps holding.

    ``predicate`` must hold on ``trace`` itself (raises ``ValueError``
    otherwise).  Returns a new :class:`Trace`; the input is never
    modified.  This is :func:`ddmin` specialized to trace records: each
    candidate record list is rewrapped as a trace (header kept verbatim
    apart from a recount) before the predicate sees it.
    """
    try:
        reduced = ddmin(
            list(trace.records),
            lambda records: predicate(_subtrace(trace, records)),
            max_tests=max_tests,
        )
    except ValueError:
        raise ValueError("predicate does not hold on the unshrunk trace")
    return _subtrace(trace, reduced)
