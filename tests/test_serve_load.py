"""Seeded load plans and the accounting gate (repro.serve.load).

Plans are pure functions of (profile, seed, streams, rate): same
inputs, same stamped arrivals, byte for byte.  check_payloads is the
serve-smoke gate: every drop accounted, lossless streams reproduced,
latency summarized.
"""

from __future__ import annotations

import pytest

from repro.serve.load import (
    PROFILES,
    arrival_offsets,
    build_plan,
    check_payloads,
)


class TestArrivalOffsets:
    def test_deterministic_per_seed_and_stream(self):
        a = arrival_offsets("spike", 7, "s-000", 100, 2000.0)
        b = arrival_offsets("spike", 7, "s-000", 100, 2000.0)
        assert a == b
        assert arrival_offsets("spike", 8, "s-000", 100, 2000.0) != a
        assert arrival_offsets("spike", 7, "s-001", 100, 2000.0) != a

    def test_non_decreasing_virtual_time(self):
        for profile in PROFILES:
            offsets = arrival_offsets(profile, 0, "s", 200, 5000.0)
            assert offsets == sorted(offsets)
            assert all(off >= 0 for off in offsets)

    def test_spike_compresses_the_middle_fifth(self):
        # The burst window (40x rate) must pack arrivals much tighter
        # than the background (0.5x rate).
        offsets = arrival_offsets("spike", 0, "s", 500, 2000.0)
        gaps = [b - a for a, b in zip(offsets, offsets[1:])]
        burst = gaps[int(500 * 0.45) : int(500 * 0.55)]
        background = gaps[: int(500 * 0.3)]
        assert max(burst) < min(background)

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            arrival_offsets("spike", 0, "s", 10, 0.0)


class TestBuildPlan:
    def test_plan_is_deterministic(self):
        # Everything that feeds admission and verdicts reproduces
        # exactly.  (The header's live_wall_seconds provenance field is
        # a wall measurement and is not part of that surface.)
        a, b = build_plan("spike", 5, 3), build_plan("spike", 5, 3)
        for sa, sb in zip(a, b):
            assert sa["stream"] == sb["stream"]
            assert sa["records"] == sb["records"]
            assert sa["arrivals"] == sb["arrivals"]
            assert sa["end_ns"] == sb["end_ns"]

    def test_plan_shape(self):
        plan = build_plan("ramp", 2, 3, scenarios=("exploit",))
        assert len(plan) == 3
        ids = [spec["stream"] for spec in plan]
        assert len(set(ids)) == 3
        for spec in plan:
            assert len(spec["arrivals"]) == len(spec["records"])
            assert spec["arrivals"] == sorted(spec["arrivals"])
            assert spec["config"] is None

    def test_config_rides_into_every_spec(self):
        plan = build_plan("sustained", 0, 2, config={"policy": "drop"})
        assert all(spec["config"] == {"policy": "drop"} for spec in plan)

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="profile"):
            build_plan("tsunami", 0, 1)

    def test_stream_count_validated(self):
        with pytest.raises(ValueError, match="streams"):
            build_plan("spike", 0, 0)


class TestCheckPayloads:
    def _good(self):
        return {
            "stream": "s-000",
            "offered": 10,
            "admitted": 8,
            "dropped": {"backpressure": 2, "overflow": 0},
            "reproduced": None,
            "latency": {"p99_ns": 123},
        }

    def test_accounted_payload_passes(self):
        assert check_payloads([self._good()]) == []

    def test_unexplained_drop_flagged(self):
        bad = self._good()
        bad["admitted"] = 7  # 10 != 7 + 2
        problems = check_payloads([bad])
        assert len(problems) == 1
        assert "unexplained drop" in problems[0]
        assert "s-000" in problems[0]

    def test_diverged_lossless_stream_flagged(self):
        bad = self._good()
        bad["admitted"], bad["dropped"] = 10, {}
        bad["reproduced"] = False
        problems = check_payloads([bad])
        assert any("diverged" in p for p in problems)

    def test_missing_latency_summary_flagged(self):
        bad = self._good()
        bad["latency"] = {}
        problems = check_payloads([bad])
        assert any("p99" in p for p in problems)

    def test_zero_admissions_need_no_latency(self):
        quiet = {
            "stream": "s",
            "offered": 0,
            "admitted": 0,
            "dropped": {},
            "reproduced": None,
            "latency": {},
        }
        assert check_payloads([quiet]) == []
