"""Differential pair sanity: harness vs. reference model, clean runs.

The hut fuzzer's signal is "the real stack and the reference model
disagree".  These tests pin the zero-noise floor that makes that
signal meaningful: on clean (bug-free) runs the two digests are
byte-identical for every target, under schedule perturbation, and on
the rejection paths — and the self-consistency oracle stays silent.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.perturb import interleave_perturbation
from repro.testing.hut import (
    HutHarness,
    HutOp,
    ReferenceModel,
    TARGETS,
    consistency_findings,
    evaluate,
    generate_program,
    load_program,
    run_candidate,
    save_program,
)
from repro.testing.hut.program import ARENA_BASE, tss_gva

SEEDS = (7, 1234)


def _digest_json(digest) -> str:
    return json.dumps(digest, sort_keys=True)


@pytest.mark.parametrize("target", TARGETS)
@pytest.mark.parametrize("seed", SEEDS)
def test_clean_agreement(target, seed):
    program = generate_program(target, seed, length=40)
    harness = HutHarness(program)
    harness.run()
    reference = ReferenceModel(program)
    reference.run()
    assert harness.execution.crash is None
    assert _digest_json(harness.digest()) == _digest_json(reference.digest())


@pytest.mark.parametrize("target", TARGETS)
def test_digest_deterministic_across_runs(target):
    program = generate_program(target, 99, length=32)
    first = HutHarness(program)
    first.run()
    second = HutHarness(program)
    second.run()
    assert _digest_json(first.digest()) == _digest_json(second.digest())


def test_perturbed_interleave_agreement():
    # A same-instant shuffle of the per-vCPU op streams must not change
    # the digest: per-vCPU state is disjoint by construction.  The
    # perturbation must actually fire, or the schedule differential in
    # `evaluate` would be vacuous.
    program = generate_program("interleave", 5, length=40)
    baseline = HutHarness(program)
    baseline.run()
    perturb = interleave_perturbation(21)
    perturbed = HutHarness(program, perturb=perturb)
    perturbed.run()
    assert perturb.stats.shuffled > 0
    assert _digest_json(baseline.digest()) == _digest_json(perturbed.digest())


def test_rejection_paths_agree():
    # Architectural rejections (unknown MSR, unmapped GVA, bad IO
    # direction, unknown VMCS field) must reject identically on both
    # sides — with the per-op status visible in `results`.
    base = generate_program("ept", 1, length=0)
    ops = [
        HutOp("rdmsr", 0, {"index": 0x1FF}),
        HutOp("wrmsr", 0, {"index": 0x1FF, "value": 3}),
        HutOp("read", 0, {"gva": 0x0030_0000}),
        HutOp("write", 0, {"gva": 0x0030_0000, "value": 1}),
        HutOp("io", 0, {"port": 0x77, "direction": "sideways", "value": 0}),
        HutOp("vmcs", 0, {"field": "no_such_control", "value": True}),
        HutOp("write", 0, {"gva": ARENA_BASE, "value": 0xAB}),
    ]
    program = base.replace_ops(ops)
    harness = HutHarness(program)
    harness.run()
    reference = ReferenceModel(program)
    reference.run()
    statuses = [r[3] for r in harness.execution.results]
    assert statuses == [
        "reject:SimulationError",
        "reject:SimulationError",
        "reject:GuestPageFault",
        "reject:GuestPageFault",
        "reject:SimulationError",
        "reject:SimulationError",
        "ok",
    ]
    assert _digest_json(harness.digest()) == _digest_json(reference.digest())


def test_tss_write_protection_traps_and_agrees():
    # HyperTap-style interception: the TSS page is write-protected, so
    # a guest `tss` op raises an EPT violation exit on both sides.
    base = generate_program("ept", 1, length=0)
    program = base.replace_ops([HutOp("tss", 0, {"value": 0x1234})])
    harness = HutHarness(program)
    harness.run()
    reference = ReferenceModel(program)
    reference.run()
    digest = harness.digest()
    assert digest["vcpus"][0]["exits"].get("EPT_VIOLATION") == 1
    assert digest["ept"]["violations"] == 1
    assert _digest_json(digest) == _digest_json(reference.digest())
    # EMULATE semantics: the hypervisor completes the write.
    assert harness.machine.memory.read_u64(tss_gva(0) + 4) == 0x1234


@pytest.mark.parametrize("target", TARGETS)
def test_clean_candidate_yields_no_findings(target):
    findings, features, harness = run_candidate(
        generate_program(target, 11, length=40),
        perturb_seed=3 if target == "interleave" else None,
    )
    assert findings == []
    assert features  # coverage extraction is non-empty on real runs
    assert consistency_findings(target, harness) == []


def test_crash_preempts_other_findings():
    def broken(harness):
        def boom(gpa, access):
            raise TypeError("emulator bug")

        harness.machine.ept.translate = boom

    program = generate_program("ept", 2, length=20)
    harness = HutHarness(program, bug=broken)
    harness.run()
    assert harness.execution.crash is not None
    reference = ReferenceModel(program)
    reference.run()
    findings = evaluate("ept", harness, reference.digest())
    assert len(findings) == 1
    assert findings[0].kind == "crash"
    assert findings[0].subject["error"] == "TypeError"


def test_program_save_load_round_trip(tmp_path):
    program = generate_program("interleave", 42, length=24)
    program.meta["note"] = "round-trip"
    path = str(tmp_path / "prog.jsonl")
    save_program(path, program)
    loaded = load_program(path)
    assert loaded.target == program.target
    assert loaded.seed == program.seed
    assert loaded.num_vcpus == program.num_vcpus
    assert loaded.meta["note"] == "round-trip"
    assert [op.to_record() for op in loaded.ops] == [
        op.to_record() for op in program.ops
    ]
