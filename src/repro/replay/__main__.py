"""CLI: ``python -m repro.replay {list,record,replay,fuzz,convert}``.

* ``record``  — run a named scenario live, persist its trace (JSONL,
  gzip when the path ends in ``.gz``; btrace when it ends in ``.btr``);
* ``replay``  — re-audit a trace through fresh auditors, print the
  verdicts, compare against the recorded live verdicts, and report
  replay throughput vs the live event rate;
* ``fuzz``    — N seeded mutations of a trace, each replayed; reports
  auditor crashes vs gracefully rejected records;
* ``convert`` — lossless JSONL <-> btrace conversion (direction
  inferred by sniffing the source's magic bytes).

``replay`` and ``fuzz`` accept either trace format transparently — the
first bytes of the file decide, never the extension.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.auditors.goshd import GuestOSHangDetector
from repro.auditors.hrkd import HiddenRootkitDetector
from repro.auditors.ht_ninja import HTNinja
from repro.core.auditor import Auditor
from repro.errors import TraceFormatError
from repro.prof import Profiler, profile_scope
from repro.replay.btrace import (
    BTRACE_SUFFIX,
    convert_trace,
    load_any_trace,
    save_btrace,
)
from repro.replay.format import Trace
from repro.replay.mutate import TraceMutator
from repro.replay.recorder import SCENARIOS, record_scenario
from repro.replay.trace_io import save_trace
from repro.replay.source import ReplaySource
from repro.sim.clock import SECOND

#: Auditor name -> class, for traces whose scenario is unknown here.
_AUDITOR_CLASSES = {
    "goshd": GuestOSHangDetector,
    "hrkd": HiddenRootkitDetector,
    "ht-ninja": HTNinja,
}


def _build_auditors_for(trace: Trace) -> List[Auditor]:
    """Fresh auditors matching what the trace was recorded under."""
    scenario = SCENARIOS.get(trace.header.scenario)
    if scenario is not None:
        return scenario.build_auditors()
    names = trace.header.meta.get("auditors") or []
    auditors = [
        _AUDITOR_CLASSES[name]() for name in names if name in _AUDITOR_CLASSES
    ]
    if not auditors:
        raise TraceFormatError(
            f"cannot infer auditors for scenario "
            f"{trace.header.scenario!r} (header lists {names!r})"
        )
    return auditors


def _format_verdicts(verdicts: List[dict]) -> str:
    if not verdicts:
        return "  (no alerts)"
    lines = []
    for v in verdicts:
        detail = ", ".join(
            f"{k}={v[k]}" for k in sorted(v) if k not in ("auditor", "kind")
        )
        lines.append(f"  [{v.get('auditor')}] {v.get('kind')}"
                     + (f" ({detail})" if detail else ""))
    return "\n".join(lines)


# ======================================================================
# Subcommands
# ======================================================================
def cmd_list(args) -> int:
    for name, scenario in sorted(SCENARIOS.items()):
        print(f"{name:10s} {scenario.description}")
    return 0


def cmd_record(args) -> int:
    run = record_scenario(args.scenario, seed=args.seed)
    if args.output.endswith(BTRACE_SUFFIX):
        save_btrace(args.output, run.trace)
    else:
        save_trace(args.output, run.trace)
    header = run.trace.header
    print(f"recorded scenario {args.scenario!r} (seed {args.seed}) "
          f"-> {args.output}")
    print(f"  events: {header.total_events} "
          f"({', '.join(f'{k}={v}' for k, v in sorted(header.event_counts.items()))})")
    print(f"  sim span: {header.end_ns / SECOND:.3f}s  "
          f"live wall: {run.live_wall_seconds:.3f}s  "
          f"live rate: {run.live_events_per_second:,.0f} events/s")
    print("live verdicts:")
    print(_format_verdicts(run.live_verdicts))
    return 0


def cmd_replay(args) -> int:
    profiler = Profiler() if getattr(args, "profile", False) else None
    if profiler is not None:
        profiler.install()
    try:
        with profile_scope("replay"):
            with profile_scope("load-trace"):
                trace = load_any_trace(args.trace)
            auditors = _build_auditors_for(trace)
            with profile_scope("run"):
                source = ReplaySource(trace, auditors)
                report = source.run()
    finally:
        if profiler is not None:
            profiler.uninstall()
    if profiler is not None:
        # Stderr, so the stdout verdict block stays byte-comparable
        # across formats and profiled/unprofiled runs.
        print("profile (wall breakdown):", file=sys.stderr)
        for line in profiler.report_lines():
            print(f"  {line}", file=sys.stderr)
        print("profile (collapsed stacks):", file=sys.stderr)
        for line in profiler.flamegraph_lines():
            print(f"  {line}", file=sys.stderr)

    print(f"replayed {report.events_replayed} events "
          f"({report.events_rejected} rejected, {report.scans_run} scans) "
          f"from {args.trace}")
    print(f"  wall: {report.wall_seconds:.3f}s  "
          f"throughput: {report.events_per_second:,.0f} events/s")
    live_wall = trace.header.meta.get("live_wall_seconds")
    if live_wall:
        live_rate = trace.header.total_events / live_wall
        speedup = (
            report.events_per_second / live_rate if live_rate > 0 else 0.0
        )
        print(f"  live rate: {live_rate:,.0f} events/s  "
              f"replay speedup: {speedup:.1f}x")
    print("replay verdicts:")
    print(_format_verdicts(report.verdicts))

    live_verdicts = trace.header.meta.get("live_verdicts")
    if live_verdicts is not None:
        if report.matches_live(live_verdicts):
            print("verdicts REPRODUCED (match the recorded live run)")
            return 0
        print("verdicts DIVERGED from the recorded live run:", file=sys.stderr)
        print(_format_verdicts(live_verdicts), file=sys.stderr)
        return 1
    return 0


def cmd_fuzz(args) -> int:
    if args.trace:
        base = load_any_trace(args.trace)
        origin = args.trace
    else:
        base = record_scenario(args.scenario, seed=args.seed).trace
        origin = f"scenario {args.scenario!r} (recorded in-memory)"
    mutator = TraceMutator(seed=args.seed)

    crashes = 0
    rejected_total = 0
    alarmed = 0
    for i in range(args.n):
        mutated, ops = mutator.mutate(base, n_mutations=args.mutations)
        auditors = _build_auditors_for(base)
        report = ReplaySource(mutated, auditors).run()
        rejected_total += report.events_rejected
        if report.container_failed or report.scan_errors:
            crashes += 1
            print(f"  mutation {i}: AUDITOR CRASH "
                  f"({report.failure_reason or 'scan error'}) after {ops}")
        if report.verdicts:
            alarmed += 1

    print(f"fuzzed {args.n} mutated traces of {origin} "
          f"(seed {args.seed}, {args.mutations} mutation(s) each)")
    print(f"  auditor crashes:      {crashes}")
    print(f"  records rejected:     {rejected_total} (gracefully)")
    print(f"  runs raising alerts:  {alarmed}")
    return 1 if crashes else 0


def cmd_convert(args) -> int:
    info = convert_trace(args.source, args.output, to=args.to)
    print(f"converted {args.source} -> {args.output} "
          f"({info['format']}, {info['records']} records)")
    if info["format"] == "btrace":
        print(f"  fixed-layout records: {info['records'] - info['escapes']}  "
              f"json escapes: {info['escapes']}  "
              f"interned strings: {info['strings']}")
    return 0


# ======================================================================
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.replay",
        description="Record, replay, and fuzz HyperTap event traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list recordable scenarios")
    p_list.set_defaults(func=cmd_list)

    p_record = sub.add_parser("record", help="record a scenario's trace")
    p_record.add_argument(
        "scenario", choices=sorted(SCENARIOS), help="scenario to record"
    )
    p_record.add_argument("-o", "--output", default="trace.jsonl.gz",
                          help="output path (.gz compresses)")
    p_record.add_argument("--seed", type=int, default=0)
    p_record.set_defaults(func=cmd_record)

    p_replay = sub.add_parser("replay", help="re-audit a recorded trace")
    p_replay.add_argument("trace", help="trace file to replay")
    p_replay.add_argument(
        "--profile",
        action="store_true",
        help="print a wall breakdown + flamegraph to stderr (repro.prof)",
    )
    p_replay.set_defaults(func=cmd_replay)

    p_fuzz = sub.add_parser("fuzz", help="replay N seeded mutations")
    p_fuzz.add_argument("trace", nargs="?", default=None,
                        help="base trace (default: record --scenario fresh)")
    p_fuzz.add_argument("--scenario", default="exploit",
                        choices=sorted(SCENARIOS))
    p_fuzz.add_argument("--n", type=int, default=50,
                        help="number of mutated traces")
    p_fuzz.add_argument("--mutations", type=int, default=3,
                        help="mutation operators applied per trace")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_convert = sub.add_parser(
        "convert", help="convert a trace between JSONL and btrace"
    )
    p_convert.add_argument("source", help="trace to convert (format sniffed)")
    p_convert.add_argument("output", help="destination path")
    p_convert.add_argument(
        "--to", choices=("jsonl", "btrace"), default=None,
        help="target format (default: the opposite of the source)",
    )
    p_convert.set_defaults(func=cmd_convert)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (TraceFormatError, OSError, KeyError) as exc:
        # The documented CLI contract: bad input is a one-line error
        # and exit 2, never a traceback.  OSError covers the whole
        # filesystem surface (missing file, directory path, EACCES),
        # not just FileNotFoundError.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
