"""OS-invariant introspection: task-list walking from outside the VM.

``OsInvariantView`` needs only what real VMI tools need: a symbol map
(the address of ``init_task``) and structure layouts.  Everything else
comes from reading guest physical memory through the paging structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.guest.layouts import KNOWN_KERNEL_GVA, PF_KTHREAD, TASK_STRUCT
from repro.hw.machine import Machine
from repro.hw.paging import UNMAPPED_GVA


@dataclass(frozen=True)
class KernelSymbolMap:
    """The System.map subset a VMI tool compiles in."""

    init_task: int

    @classmethod
    def from_kernel(cls, kernel) -> "KernelSymbolMap":
        """Build the map the way deployments do: from the debug info of
        the *pristine* kernel build (not by asking the running guest)."""
        return cls(init_task=kernel.init_task_gva)


class OsInvariantView:
    """Out-of-VM view of guest processes via OS data structures.

    Trust analysis (the paper's point): the *code* runs on the host,
    but every pointer followed lives in guest memory.  An in-guest
    attacker with kernel write access controls what this view sees.
    """

    def __init__(self, machine: Machine, symbols: KernelSymbolMap) -> None:
        self.machine = machine
        self.symbols = symbols

    # ------------------------------------------------------------------
    def _kernel_pdba(self) -> Optional[int]:
        for space in self.machine.page_registry.live_spaces():
            if space.translate(KNOWN_KERNEL_GVA) is not None:
                return space.pdba
        return None

    def _read_u64(self, pdba: int, gva: int) -> int:
        return self.machine.host_read_u64_gva(pdba, gva)

    def _read_str(self, pdba: int, gva: int, size: int) -> str:
        raw = self.machine.host_read_gva(pdba, gva, size)
        end = raw.find(b"\x00")
        return raw[: end if end >= 0 else size].decode("ascii", errors="replace")

    # ------------------------------------------------------------------
    def list_processes(self, max_tasks: int = 65536) -> List[Dict[str, Any]]:
        """Walk ``init_task.tasks``; returns one dict per task found.

        This is the view DKOM defeats: unlinked tasks simply are not on
        the list anymore.
        """
        pdba = self._kernel_pdba()
        if pdba is None:
            return []
        head = self.symbols.init_task
        off_next = TASK_STRUCT.offset("tasks_next")
        out: List[Dict[str, Any]] = []
        cur = self._read_u64(pdba, head + off_next)
        steps = 0
        while cur not in (head, 0) and steps < max_tasks:
            entry = self._decode_task(pdba, cur)
            out.append(entry)
            cur = self._read_u64(pdba, cur + off_next)
            steps += 1
        return out

    def _decode_task(self, pdba: int, task_gva: int) -> Dict[str, Any]:
        def u64(field: str) -> int:
            return self._read_u64(pdba, task_gva + TASK_STRUCT.offset(field))

        def string(field: str) -> str:
            spec = TASK_STRUCT.spec(field)
            return self._read_str(pdba, task_gva + spec.offset, spec.size)

        return {
            "task_struct_gva": task_gva,
            "pid": u64("pid"),
            "uid": u64("uid"),
            "euid": u64("euid"),
            "comm": string("comm"),
            "exe": string("exe"),
            "is_kthread": bool(u64("flags") & PF_KTHREAD),
            "parent_gva": u64("parent"),
        }

    def process_by_pid(self, pid: int) -> Optional[Dict[str, Any]]:
        for entry in self.list_processes():
            if entry["pid"] == pid:
                return entry
        return None

    def decode_task_at(self, task_gva: int) -> Optional[Dict[str, Any]]:
        """Decode a task_struct at a caller-supplied address (used by
        cross-view validation; address may come from HyperTap)."""
        pdba = self._kernel_pdba()
        if pdba is None:
            return None
        if self.machine.page_registry.gva_to_gpa(pdba, task_gva) == UNMAPPED_GVA:
            return None
        return self._decode_task(pdba, task_gva)
