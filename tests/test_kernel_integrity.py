"""Tests for fine-grained kernel-data integrity watching (§VI-D)."""

import pytest

from repro.auditors.kernel_integrity import KernelDataWatch
from repro.guest.layouts import TASK_STRUCT


def spawn_victim(testbed, uid=0):
    def prog(ctx):
        while True:
            yield ctx.compute(400_000)

    return testbed.kernel.spawn_process(prog, "victim", uid=uid, exe="/tmp/.v")


def in_guest_dkom(victim_gva: int):
    """An in-guest rootkit installer: unlinks a task_struct from the
    task list through /dev/kmem writes (the CPU-visible path)."""
    off_next = TASK_STRUCT.offset("tasks_next")
    off_prev = TASK_STRUCT.offset("tasks_prev")

    def _program(ctx):
        nxt = yield ctx.kmem_read(victim_gva + off_next)
        prv = yield ctx.kmem_read(victim_gva + off_prev)
        yield ctx.kmem_write(prv + off_next, nxt)
        yield ctx.kmem_write(nxt + off_prev, prv)
        yield ctx.exit(0)

    return _program


@pytest.fixture
def watch(testbed):
    auditor = KernelDataWatch()
    testbed.monitor([auditor])
    return auditor


class TestKernelDataWatch:
    def test_in_guest_dkom_caught(self, testbed, watch):
        victim = spawn_victim(testbed)
        # DKOM rewrites the *neighbours'* pointers; protect the list.
        watch.watch_all_tasks(testbed.kernel)
        testbed.run_s(0.3)
        installer = testbed.kernel.spawn_process(
            in_guest_dkom(victim.task_struct_gva),
            "insmod",
            uid=0,
            exe="/tmp/rk.ko",
        )
        testbed.run_s(0.5)
        assert watch.tamper_alerts
        alert = watch.tamper_alerts[0]
        assert alert["writer_comm"] == "insmod"
        # ...and the unlink still succeeded (alert, not prevention):
        assert victim.pid not in testbed.kernel.guest_view_pids()

    def test_requires_root_for_kmem(self, testbed, watch):
        victim = spawn_victim(testbed)
        watch.watch_all_tasks(testbed.kernel)
        testbed.run_s(0.3)
        testbed.kernel.spawn_process(
            in_guest_dkom(victim.task_struct_gva),
            "wannabe",
            uid=1000,  # not root: /dev/kmem denies
            exe="/tmp/rk.ko",
        )
        testbed.run_s(0.5)
        assert not watch.tamper_alerts
        assert victim.pid in testbed.kernel.guest_view_pids()

    def test_no_alerts_without_tampering(self, testbed, watch):
        spawn_victim(testbed)
        watch.watch_all_tasks(testbed.kernel)
        testbed.run_s(2.0)
        assert not watch.tamper_alerts

    def test_pause_on_tamper(self, testbed):
        auditor = KernelDataWatch(pause_on_tamper=True)
        testbed.monitor([auditor])
        victim = spawn_victim(testbed)
        auditor.watch_all_tasks(testbed.kernel)
        testbed.run_s(0.2)
        testbed.kernel.spawn_process(
            in_guest_dkom(victim.task_struct_gva), "rk", uid=0, exe="/rk"
        )
        testbed.run_s(0.5)
        assert auditor.tamper_alerts
        assert testbed.machine.vm_paused

    def test_watch_requires_tracer(self, testbed):
        """Without MEM_ACCESS in subscriptions there is no tracer."""
        from repro.auditors.goshd import GuestOSHangDetector

        hypertap = testbed.monitor([GuestOSHangDetector()])
        auditor = KernelDataWatch()
        auditor.hypertap = hypertap
        victim = spawn_victim(testbed)
        with pytest.raises(RuntimeError):
            auditor.watch_task(testbed.kernel, victim)

    def test_writes_audited_counter(self, testbed, watch):
        victim = spawn_victim(testbed)
        # Another task after the victim, so both of the victim's
        # neighbours exist (and are watched) before the attack.
        spawn_victim(testbed, uid=1000)
        watch.watch_all_tasks(testbed.kernel)
        testbed.run_s(0.1)
        testbed.kernel.spawn_process(
            in_guest_dkom(victim.task_struct_gva), "rk", uid=0, exe="/rk"
        )
        testbed.run_s(0.5)
        assert watch.writes_audited >= 2  # both neighbour pointers
