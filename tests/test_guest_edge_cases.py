"""Edge cases in the guest kernel: lifecycle races, scheduler corners,
GOSHD profiling helper."""


from repro.auditors.goshd import profile_hang_threshold
from repro.guest.programs import KCompute, LockAcquire
from repro.guest.task import TaskState
from repro.sim.clock import MILLISECOND, SECOND


class TestLifecycleRaces:
    def test_force_exit_idempotent(self, testbed):
        def prog(ctx):
            while True:
                yield ctx.compute(10**9)

        task = testbed.kernel.spawn_process(prog, "t", uid=1000)
        testbed.run_s(0.1)
        testbed.kernel.force_exit(task)
        testbed.kernel.force_exit(task)  # second call is a no-op
        testbed.run_s(0.5)
        assert task.state is TaskState.ZOMBIE

    def test_force_exit_while_sleeping(self, testbed):
        def prog(ctx):
            yield ctx.sys_nanosleep(10 * SECOND)
            yield ctx.exit(0)

        task = testbed.kernel.spawn_process(prog, "t", uid=1000)
        testbed.run_s(0.2)
        assert task.state is TaskState.SLEEPING
        testbed.kernel.force_exit(task)
        testbed.run_s(0.5)  # the stale sleep timeout must not resurrect
        assert task.state is TaskState.ZOMBIE
        assert task.pid not in [
            t.pid
            for cpu in testbed.kernel.cpus
            for t in list(cpu.runqueue)
        ]

    def test_force_exit_while_spinning(self, testbed):
        testbed.kernel.locks.get("test_lock_z").leak()

        def spinner(kernel, task):
            yield LockAcquire("test_lock_z")
            yield KCompute(1)

        task = testbed.kernel.spawn_kthread(spinner, "spin", cpu=0)
        testbed.run_s(1.0)
        assert task.state is TaskState.SPINNING
        testbed.kernel.force_exit(task)
        testbed.run_s(1.0)
        # The vCPU recovers once the spinner is killed.
        cpu = testbed.kernel.cpus[0]
        now = testbed.engine.clock.now
        assert now - cpu.last_switch_ns < 3 * SECOND

    def test_force_exit_while_blocked_on_disk(self, testbed):
        def prog(ctx):
            yield ctx.sys_disk_read(100)  # long IO
            yield ctx.exit(0)

        task = testbed.kernel.spawn_process(prog, "t", uid=1000)
        testbed.run_s(0.005)
        testbed.kernel.force_exit(task)
        testbed.run_s(0.5)
        assert task.state is TaskState.ZOMBIE

    def test_waitpid_on_already_dead_child(self, testbed):
        results = {}

        def child(ctx):
            yield ctx.compute(1000)
            yield ctx.exit(5)

        def parent(ctx):
            pid = yield ctx.sys_spawn(child, "c")
            yield ctx.sys_nanosleep(200 * MILLISECOND)  # child dies first
            results["code"] = yield ctx.sys_waitpid(pid)
            yield ctx.exit(0)

        task = testbed.kernel.spawn_process(parent, "p", uid=1000)
        testbed.run_s(1.0)
        assert task.state is TaskState.ZOMBIE
        assert results["code"] == 5

    def test_waitpid_unknown_pid(self, testbed):
        results = {}

        def prog(ctx):
            results["code"] = yield ctx.sys_waitpid(54321)
            yield ctx.exit(0)

        testbed.kernel.spawn_process(prog, "p", uid=1000)
        testbed.run_s(0.5)
        assert results["code"] == -1


class TestSchedulerCorners:
    def test_single_runnable_task_keeps_running_without_switches(
        self, testbed_1cpu
    ):
        """With one runnable task, timeslice expiry re-dispatches the
        same task without hardware switch operations."""

        def hog(ctx):
            while True:
                yield ctx.compute(1_000_000)

        testbed_1cpu.kernel.spawn_process(hog, "hog", uid=1000)
        testbed_1cpu.run_s(0.5)
        cpu = testbed_1cpu.kernel.cpus[0]
        before = cpu.context_switches
        testbed_1cpu.run_s(0.3)  # within a housekeeping period
        # At most the housekeeping pair of switches.
        assert cpu.context_switches - before <= 4

    def test_sleep_wakeup_ordering_fifo(self, testbed):
        order = []

        def sleeper(i):
            def prog(ctx):
                yield ctx.syscall("socket_recv")
                order.append(i)
                while True:
                    yield ctx.sys_nanosleep(1 * SECOND)

            return prog

        for i in range(3):
            testbed.kernel.spawn_process(sleeper(i), f"s{i}", uid=1000)
        testbed.run_s(0.3)
        for _ in range(3):
            testbed.kernel.deliver_packet(64)
        testbed.run_s(0.5)
        assert sorted(order) == [0, 1, 2]

    def test_idle_steal_balances_queues(self, testbed):
        """Queue three CPU hogs on one vCPU; the idle one steals."""

        def hog(ctx):
            while True:
                yield ctx.compute(1_000_000)

        tasks = [
            testbed.kernel.spawn_process(hog, f"h{i}", uid=1000, pin_cpu=0)
            for i in range(3)
        ]
        testbed.run_s(2.0)
        cpus_used = {t.cpu for t in tasks}
        assert cpus_used == {0, 1}

    def test_pause_while_spinning_then_resume(self, testbed):
        testbed.kernel.locks.get("test_lock_y").leak()

        def spinner(kernel, task):
            yield LockAcquire("test_lock_y")
            yield KCompute(1)

        testbed.kernel.spawn_kthread(spinner, "spin", cpu=0)
        testbed.run_s(0.5)
        testbed.machine.vm_paused = True
        testbed.run_s(1.0)
        testbed.machine.vm_paused = False
        testbed.run_s(1.0)
        # Guest still alive on the other vCPU after pause/resume.
        now = testbed.engine.clock.now
        assert now - testbed.kernel.cpus[1].last_switch_ns < 3 * SECOND


class TestProfiler:
    def test_profile_reflects_quiet_guest(self, testbed):
        threshold = profile_hang_threshold(testbed, duration_s=5.0)
        # Quiet guest: switch gaps bounded by housekeeping (~1s), so
        # the profiled threshold is about 1-4s.
        assert SECOND // 2 <= threshold <= 5 * SECOND

    def test_profile_scales_with_safety_factor(self, testbed):
        t2 = profile_hang_threshold(
            testbed, duration_s=3.0, safety_factor=2.0
        )
        t4 = profile_hang_threshold(
            testbed, duration_s=3.0, safety_factor=4.0
        )
        assert t4 >= t2
