"""Source-tree discovery and parsing for the static-analysis pass.

The analysis root is the directory that *contains* the ``repro``
package (normally ``src/``).  Every ``*.py`` below it is parsed once;
rules share the parsed trees through an :class:`AnalysisContext`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaSheet, scan_pragmas

#: Directories never worth parsing.
_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", ".pytest_cache"}


@dataclass
class SourceFile:
    """One parsed module."""

    path: Path  #: Absolute path on disk.
    rel: str  #: POSIX path relative to the analysis root.
    module: str  #: Dotted module name (``repro.auditors.hrkd``).
    text: str
    tree: ast.Module
    pragmas: PragmaSheet


class AnalysisContext:
    """Everything a rule may look at: the parsed tree plus parse errors."""

    def __init__(self, root: Path, known_rules: Set[str]) -> None:
        self.root = root.resolve()
        self.files: List[SourceFile] = []
        self.parse_errors: List[Finding] = []
        self._by_module: Dict[str, SourceFile] = {}
        self._load(known_rules)

    # ------------------------------------------------------------------
    def _load(self, known_rules: Set[str]) -> None:
        for path in sorted(self.root.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in path.parts):
                continue
            rel = path.relative_to(self.root).as_posix()
            try:
                text = path.read_text(encoding="utf-8")
                tree = ast.parse(text, filename=rel)
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                line = getattr(exc, "lineno", None) or 1
                self.parse_errors.append(
                    Finding(
                        path=rel,
                        line=int(line),
                        rule="parse",
                        message=f"cannot analyze file: {exc.__class__.__name__}: {exc}",
                    )
                )
                continue
            source = SourceFile(
                path=path,
                rel=rel,
                module=module_name(rel),
                text=text,
                tree=tree,
                pragmas=scan_pragmas(text, known_rules),
            )
            self.files.append(source)
            self._by_module[source.module] = source

    # ------------------------------------------------------------------
    def module(self, dotted: str) -> Optional[SourceFile]:
        """Look a file up by dotted module name, if present in the tree."""
        return self._by_module.get(dotted)

    def modules_under(self, prefix: str) -> List[SourceFile]:
        """Every file whose module is ``prefix`` or lives below it."""
        dot = prefix + "."
        return [
            f for f in self.files if f.module == prefix or f.module.startswith(dot)
        ]


def module_name(rel: str) -> str:
    """``repro/auditors/hrkd.py`` -> ``repro.auditors.hrkd``."""
    parts = rel.split("/")
    leaf = parts[-1]
    if leaf == "__init__.py":
        parts = parts[:-1]
    else:
        parts[-1] = leaf[: -len(".py")] if leaf.endswith(".py") else leaf
    return ".".join(p for p in parts if p)


def dotted_name(node: ast.AST) -> Optional[str]:
    """Flatten ``a.b.c`` attribute/name chains; None for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None
