"""Unit tests for Event Forwarder cost accounting (the §IV-A model)."""

from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.harness import Testbed, TestbedConfig
from repro.hypervisor.event_forwarder import EventForwarder
from repro.hypervisor.event_multiplexer import EventMultiplexer


class SwitchWatcher(Auditor):
    name = "w"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        pass


def _exit_on(testbed):
    """Produce one CR_ACCESS exit and return the vCPU charge it cost."""
    vcpu = testbed.machine.vcpus[0]
    vcpu.vmcs.controls.cr3_load_exiting = True
    vcpu.collect_charges()
    vcpu.guest_write_cr3(testbed.kernel.swapper_pdba)
    return vcpu.collect_charges()


class TestForwarderCharges:
    def test_unified_charges_once_for_shared_event(self):
        tb1 = Testbed(TestbedConfig(seed=5, monitoring_mode="unified"))
        tb1.boot()
        tb1.monitor([SwitchWatcher()])
        one = _exit_on(tb1)

        tb3 = Testbed(TestbedConfig(seed=5, monitoring_mode="unified"))
        tb3.boot()
        tb3.monitor([SwitchWatcher(), SwitchWatcher(), SwitchWatcher()])
        three = _exit_on(tb3)
        # Same trap cost no matter how many auditors share the channel.
        assert three == one

    def test_separate_charges_per_monitor(self):
        tb1 = Testbed(TestbedConfig(seed=5, monitoring_mode="separate"))
        tb1.boot()
        tb1.monitor([SwitchWatcher()])
        one = _exit_on(tb1)

        tb3 = Testbed(TestbedConfig(seed=5, monitoring_mode="separate"))
        tb3.boot()
        tb3.monitor([SwitchWatcher(), SwitchWatcher(), SwitchWatcher()])
        three = _exit_on(tb3)
        assert three > one
        costs = tb3.machine.costs
        # Two extra monitors pay two extra exit roundtrips + forwards.
        expected_extra = 2 * (
            costs.vm_exit_roundtrip_ns
            + costs.ef_forward_ns
            + costs.em_enqueue_ns
        )
        assert three - one == expected_extra

    def test_uninterested_exits_cost_nothing_extra(self):
        """Exits no consumer subscribed to are suppressed at the EF."""
        testbed = Testbed(TestbedConfig(seed=5))
        testbed.boot()
        em = EventMultiplexer()
        forwarder = EventForwarder(em)
        testbed.kvm.attach_forwarder(forwarder)
        vcpu = testbed.machine.vcpus[0]
        vcpu.vmcs.controls.cr3_load_exiting = True
        vcpu.collect_charges()
        vcpu.guest_write_cr3(testbed.kernel.swapper_pdba)
        charge = vcpu.collect_charges()
        costs = testbed.machine.costs
        assert charge == (
            costs.vm_exit_roundtrip_ns + costs.exit_emulation_ns
        )
        assert forwarder.suppressed == 1
        assert forwarder.forwarded == 0
