"""The order-independent parallel executor behind ``repro.parallel``.

Contract
--------
``parallel_map(fn, items)`` returns ``[fn(item) for item in items]`` —
exactly, regardless of ``REPRO_JOBS``, worker count, chunking, or the
order in which workers finish.  Three mechanisms make that hold:

* **purity** — ``fn`` must be a module-level function whose output
  depends only on its argument (all seeds travel inside the items;
  :func:`derive_seed` builds per-task seeds the same way
  :class:`repro.sim.rng.RandomStreams` derives streams);
* **indexed merge** — every task carries its input index and results
  land in a pre-sized slot table, so completion order is irrelevant;
* **chunking** — items are distributed in contiguous chunks (several
  per worker) to amortize pickling and process startup, without
  affecting the merge.

Crash isolation: a task that raises, or whose worker process dies, is
retried **once in the parent process**.  If the retry raises too, the
call fails with :class:`InfrastructureFailure` naming the item — a task
is never silently dropped, because a dropped trial would skew campaign
statistics without any visible error.

Fan-out overhead is attacked three ways (this is what makes ``jobs=2``
pay on the ledger):

* **persistent pool** — one module-level :class:`ProcessPoolExecutor`
  is reused across ``parallel_map`` calls instead of paying fork +
  interpreter warm-up per call; it is recycled when the job count
  changes, when a worker dies, or when :mod:`repro.parallel.shared`
  publishes new fork-inherited state;
* **fork-time inheritance** — large read-only inputs travel to workers
  as copy-on-write pages (primed via ``shared.prime`` / the btrace
  reader cache), never as per-task pickles; tasks carry only small
  descriptors like ``(path, index_range)``;
* **batched merges** — results come back one chunk at a time and merge
  into the pre-sized slot table per chunk, not per task.

``parallel_map(..., stats=dict)`` additionally reports per-chunk worker
CPU time (``repro.prof.process_time`` inside the worker), which is what the
benchmark's critical-path speedup model consumes: on a core-starved CI
box, wall time inside timesharing workers measures the scheduler, not
the work.

This module is the only sanctioned home for ``multiprocessing`` /
``concurrent.futures`` in the tree: the determinism rule of
``repro.analysis`` flags scheduling imports anywhere else.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
from concurrent.futures import FIRST_COMPLETED, BrokenExecutor, ProcessPoolExecutor, wait
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.parallel import shared
from repro.prof import process_time

#: Environment knob: worker process count (default 1 = serial).
JOBS_ENV = "REPRO_JOBS"

#: Target chunks issued per worker; >1 keeps stragglers from idling the
#: pool while still amortizing per-chunk pickle/dispatch cost.
CHUNKS_PER_WORKER = 4


class InfrastructureFailure(ReproError):
    """A task failed on both its worker attempt and the parent retry.

    Distinct from the task's own domain errors so campaign code can
    tell "the experiment found something" from "the harness broke".
    """

    def __init__(self, index: int, item: Any, cause: str) -> None:
        super().__init__(
            f"task {index} ({item!r}) failed in a worker and again on the "
            f"parent retry: {cause}"
        )
        self.index = index
        self.cause = cause


def job_count(default: int = 1) -> int:
    """Resolve the worker count from ``REPRO_JOBS`` (>= 1).

    Inside a worker process this always returns 1: nested fan-out would
    multiply processes without adding cores, and the outer executor
    already owns the parallelism budget.
    """
    if multiprocessing.parent_process() is not None:
        return 1
    raw = os.environ.get(JOBS_ENV, "")
    try:
        jobs = int(raw) if raw else int(default)
    except ValueError:
        jobs = int(default)
    return max(1, jobs)


def derive_seed(base_seed: int, *components: Any) -> int:
    """Stable per-task seed from a campaign seed plus task coordinates.

    Same construction as :class:`repro.sim.rng.RandomStreams` (SHA-256
    of ``"seed:part:part"``, first 8 bytes): independent of
    ``PYTHONHASHSEED``, process identity, and platform, so a task seeded
    this way draws the same stream in any worker — or in the parent.
    """
    text = ":".join(str(part) for part in (base_seed,) + components)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_chunk(
    fn: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
) -> Tuple[List[Tuple[int, bool, Any]], float]:
    """Run one contiguous chunk; exceptions are returned, not raised,
    so a single bad task cannot poison its chunk-mates.

    Returns ``(results, cpu_seconds)`` where the CPU time is measured
    with ``process_time`` *inside* the worker: on a box with fewer
    cores than workers, wall time per worker counts timesharing stalls
    as work, so only CPU time composes into an honest critical path.
    """
    out: List[Tuple[int, bool, Any]] = []
    cpu_start = process_time()
    for index, item in chunk:
        try:
            out.append((index, True, fn(item)))
        except Exception as exc:  # noqa: BLE001 - isolated + retried in parent
            out.append((index, False, f"{type(exc).__name__}: {exc}"))
    return out, process_time() - cpu_start


def _warm_up(_: Any) -> bool:
    """No-op task used to force worker processes into existence."""
    return True


def _chunked(
    items: Sequence[Any], jobs: int, chunk_size: Optional[int]
) -> List[List[Tuple[int, Any]]]:
    """Deterministic contiguous chunking of the indexed item list."""
    if chunk_size is None:
        chunk_size = max(1, -(-len(items) // (jobs * CHUNKS_PER_WORKER)))
    chunk_size = max(1, int(chunk_size))
    indexed = list(enumerate(items))
    return [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]


def _mp_context():
    """Fork where available (cheap start, the modules are already
    loaded); spawn elsewhere.  The choice cannot affect results — tasks
    are pure functions of their pickled arguments."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


# ----------------------------------------------------------------------
# Parent side: the persistent pool
# ----------------------------------------------------------------------
_POOL: Optional[ProcessPoolExecutor] = None
_POOL_JOBS = 0
_POOL_GENERATION = -1


def _discard_pool(wait_for_workers: bool = False) -> None:
    """Forget the persistent pool (shutting it down best-effort)."""
    global _POOL
    pool, _POOL = _POOL, None
    if pool is not None:
        try:
            pool.shutdown(wait=wait_for_workers, cancel_futures=True)
        except Exception:  # noqa: BLE001 - already-broken pools may throw
            pass


atexit.register(_discard_pool)


def _get_pool(jobs: int) -> ProcessPoolExecutor:
    """The reusable pool for ``jobs`` workers.

    Rebuilt when the job count changes, when a previous call found the
    pool broken, or when :mod:`repro.parallel.shared` was primed since
    the workers forked (a stale worker must never serve newer shared
    state).  Reuse is what deletes the fork + interpreter warm-up cost
    from every ``parallel_map`` call after the first.
    """
    global _POOL, _POOL_JOBS, _POOL_GENERATION
    generation = shared.generation()
    if _POOL is None or _POOL_JOBS != jobs or _POOL_GENERATION != generation:
        _discard_pool()
        _POOL = ProcessPoolExecutor(max_workers=jobs, mp_context=_mp_context())
        _POOL_JOBS = jobs
        _POOL_GENERATION = generation
    return _POOL


def warm_pool(jobs: int) -> None:
    """Fork the workers for ``jobs`` now (outside any timed region).

    Benchmarks call this before measuring so the first timed
    ``parallel_map`` exercises dispatch + merge, not process creation.
    """
    jobs = max(1, int(jobs))
    if jobs == 1:
        return
    pool = _get_pool(jobs)
    try:
        for future in [pool.submit(_warm_up, i) for i in range(jobs)]:
            future.result()
    except BrokenExecutor:  # pragma: no cover - recreated on next use
        _discard_pool()


_UNSET = object()


def _retry_in_parent(
    fn: Callable[[Any], Any], index: int, item: Any, cause: str
) -> Any:
    """Second (and last) attempt, in the parent, after a worker failure."""
    try:
        return fn(item)
    except Exception as exc:  # noqa: BLE001 - converted to a typed failure
        raise InfrastructureFailure(
            index, item, f"{cause}; retry: {type(exc).__name__}: {exc}"
        ) from exc


def parallel_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    progress: Optional[Callable[[int], None]] = None,
    stats: Optional[Dict[str, Any]] = None,
) -> List[Any]:
    """``[fn(item) for item in items]`` across worker processes.

    ``fn`` must be picklable (module-level) and pure in its argument.
    ``jobs=None`` reads ``REPRO_JOBS``; ``jobs<=1`` runs serially in
    this process with the identical retry discipline, so the serial and
    parallel paths produce the same values *and* the same failures.
    ``progress`` receives the running count of completed tasks.

    ``stats``, when given a dict, is filled with fan-out accounting:
    ``jobs``, ``chunks``, and ``chunk_cpu_s`` (worker-side CPU seconds
    per completed chunk, in chunk order — what the benchmark's
    critical-path model schedules).
    """
    items = list(items)
    jobs = job_count() if jobs is None else max(1, int(jobs))
    if stats is not None:
        stats["jobs"] = jobs
        stats["chunks"] = 0
        stats["chunk_cpu_s"] = []
    if jobs == 1 or len(items) <= 1:
        return _serial_map(fn, items, progress)

    results: List[Any] = [_UNSET] * len(items)
    chunks = _chunked(items, jobs, chunk_size)
    chunk_cpu: List[Optional[float]] = [None] * len(chunks)
    done = 0
    failed_tasks: List[Tuple[int, Any, str]] = []
    dead_chunks: List[List[Tuple[int, Any]]] = []
    broke = False
    pool = _get_pool(jobs)
    pending = {
        pool.submit(_run_chunk, fn, chunk): chunk_no
        for chunk_no, chunk in enumerate(chunks)
    }
    while pending:
        finished, _ = wait(pending, return_when=FIRST_COMPLETED)
        for future in finished:
            chunk_no = pending.pop(future)
            try:
                packed, cpu_s = future.result()
            except BrokenExecutor:
                # The worker died mid-chunk (OOM kill, segfault in an
                # extension, ...).  Nothing came back: re-run the whole
                # chunk in the parent, and recycle the pool so the next
                # call starts from healthy workers.
                dead_chunks.append(chunks[chunk_no])
                broke = True
                continue
            except Exception:  # noqa: BLE001 - e.g. unpicklable result
                dead_chunks.append(chunks[chunk_no])
                continue
            chunk_cpu[chunk_no] = cpu_s
            # Batched merge: one pass over the chunk's results, straight
            # into the pre-sized slot table (progress stays per-task).
            for index, ok, value in packed:
                if ok:
                    results[index] = value
                else:
                    failed_tasks.append((index, items[index], value))
                done += 1
                if progress is not None:
                    progress(done)
    if broke:
        _discard_pool()
    if stats is not None:
        stats["chunks"] = len(chunks)
        stats["chunk_cpu_s"] = [c for c in chunk_cpu if c is not None]

    for chunk in dead_chunks:
        for index, item in chunk:
            results[index] = _retry_in_parent(
                fn, index, item, "worker process died"
            )
            done += 1
            if progress is not None:
                progress(done)
    for index, item, cause in failed_tasks:
        results[index] = _retry_in_parent(fn, index, item, cause)

    missing = [i for i, value in enumerate(results) if value is _UNSET]
    if missing:  # pragma: no cover - belt and braces over the merge
        raise InfrastructureFailure(
            missing[0], items[missing[0]], "no result returned for task"
        )
    return results


def _serial_map(
    fn: Callable[[Any], Any],
    items: List[Any],
    progress: Optional[Callable[[int], None]],
) -> List[Any]:
    results: List[Any] = []
    for index, item in enumerate(items):
        try:
            results.append(fn(item))
        except Exception as exc:  # noqa: BLE001 - same discipline as parallel
            results.append(
                _retry_in_parent(
                    fn, index, item, f"{type(exc).__name__}: {exc}"
                )
            )
        if progress is not None:
            progress(index + 1)
    return results
