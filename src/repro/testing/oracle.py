"""The differential oracle: ground truth the auditors never compute.

Conformance needs two independent answers to "what should have been
detected?".  The auditors give one — by consuming the delivered event
stream through their own windows, thresholds and check periods.  The
oracle gives the other — by reading the *trace itself* (timestamps,
deriver annotations, scan markers: data recorded by the simulator, not
by any auditor) and applying the paper's detection claims directly:

* **GOSHD** (§VII-A): a vCPU whose thread-switch timestamps leave a
  silent gap longer than the detection threshold is hung.  The oracle
  sorts per-vCPU timestamps — ground truth is a property of guest time,
  not of delivery order — and brackets the claim with the check period:
  gaps beyond ``threshold + 2*check_period`` *must* be detected, gaps
  under ``threshold`` must not, and the band between is ambiguous
  (detection legitimately depends on check phase) and never flagged.
* **HRKD** (§VII-B): a pid that *ever executed* before a scan (it has
  an annotated thread-switch sighting) and is absent from the scan's
  untrusted view is hidden.  Deliberately no freshness window: HRKD's
  10 s sighting window is an implementation trade-off an adversary can
  evade by delaying the scan (Heckler-style), and exactly that evasion
  is what the differential should surface.  Comparison is pid-level —
  HRKD's count-based path can raise an alert without naming the pid,
  which still counts as a miss of that pid.
* **HT-Ninja** (§VII-C): walking events in timestamp order, a process
  whose annotation says unauthorized root (the shared
  :class:`~repro.auditors.ninja_rules.NinjaPolicy`) at its thread's
  first switch or at an IO syscall must be flagged.

The trust direction matters: the oracle is allowed to read everything
(it lives outside the monitoring stack), while the auditors are
statically confined by the ``trust-boundary`` rule to hardware-derived
inputs.  Agreement between two computations with disjoint failure
modes is the evidence; see DESIGN.md for the full argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.auditors.goshd import DEFAULT_CHECK_PERIOD_NS, DEFAULT_THRESHOLD_NS
from repro.auditors.ninja_rules import NinjaPolicy, ProcessFacts

# The kernel ABI spec for IO syscall numbers, same sanctioned source
# HT-Ninja itself uses.
from repro.core.derive import PF_KTHREAD
from repro.guest.syscalls import IO_SYSCALLS, SYSCALL_NUMBERS
from repro.replay.format import KIND_EVENT, KIND_SCAN, Trace, decode_scan
from repro.replay.source import HORIZON_SLACK_NS
from repro.errors import TraceFormatError

_IO_SYSCALL_NUMBERS = frozenset(SYSCALL_NUMBERS[name] for name in IO_SYSCALLS)

_THREAD_SWITCH = "thread_switch"
_SYSCALL = "syscall"


def _horizon_ns(trace: Trace) -> Optional[int]:
    """The same acceptance horizon replay enforces.

    Ground truth must be computed over the records the auditors could
    have seen: a record replay rejects as malformed (timestamp beyond
    ``end_ns`` plus slack) must not count as an expected detection, or
    every ``corrupt``-timestamp mutation would read as an auditor miss.
    """
    end_ns = trace.header.end_ns
    if end_ns is None:
        return None
    return end_ns + HORIZON_SLACK_NS


def _within_horizon(t: Any, horizon: Optional[int]) -> bool:
    return isinstance(t, int) and (horizon is None or t <= horizon)


# ======================================================================
# Findings
# ======================================================================
@dataclass
class Discrepancy:
    """One disagreement between oracle expectation and auditor output."""

    #: ``miss`` — oracle expects a detection the auditor never raised;
    #: ``false_alarm`` — the auditor named a subject the oracle rules out;
    #: ``crash`` — the auditing container failed outright.
    kind: str
    auditor: str
    #: What the disagreement is about (``{"vcpu": 1}``, ``{"pid": 77}``).
    subject: Dict[str, Any] = field(default_factory=dict)
    detail: str = ""

    def key(self) -> str:
        return finding_key(self.kind, self.auditor, self.subject)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "auditor": self.auditor,
            "subject": dict(self.subject),
            "detail": self.detail,
            "key": self.key(),
        }


def finding_key(kind: str, auditor: str, subject: Dict[str, Any]) -> str:
    """Stable identity of a finding across runs/mutations/shrinking."""
    parts = ",".join(f"{k}={subject[k]}" for k in sorted(subject))
    return f"{kind}:{auditor}:{parts}"


# ======================================================================
# Per-auditor ground truth
# ======================================================================
def _annotated_pid(record: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    task = record.get("task")
    if not isinstance(task, dict):
        return None
    pid = task.get("pid")
    if not isinstance(pid, int):
        return None
    return task


@dataclass
class GoshdOracle:
    """Per-vCPU silent-gap ground truth from sorted timestamps."""

    threshold_ns: int = DEFAULT_THRESHOLD_NS
    check_period_ns: int = DEFAULT_CHECK_PERIOD_NS

    auditor = "goshd"

    def expected_hangs(self, trace: Trace) -> Tuple[Set[int], Set[int]]:
        """(certainly hung vCPUs, ambiguous vCPUs)."""
        switches: Dict[int, List[int]] = {
            i: [] for i in range(trace.header.num_vcpus)
        }
        horizon = _horizon_ns(trace)
        for record in trace.records:
            if not isinstance(record, dict):
                continue
            if record.get("kind", KIND_EVENT) != KIND_EVENT:
                continue
            if record.get("type") != _THREAD_SWITCH:
                continue
            t, vcpu = record.get("t"), record.get("vcpu")
            if (
                _within_horizon(t, horizon)
                and isinstance(vcpu, int)
                and vcpu in switches
            ):
                switches[vcpu].append(t)
        start = trace.header.start_ns
        end = trace.header.end_ns if trace.header.end_ns is not None else start
        certain: Set[int] = set()
        ambiguous: Set[int] = set()
        # A check is guaranteed to land inside a gap that exceeds the
        # threshold by two full check periods; inside one period the
        # verdict depends on check phase.
        certain_bar = self.threshold_ns + 2 * self.check_period_ns
        for vcpu, times in switches.items():
            times.sort()
            gap = 0
            prev = start
            for t in times:
                gap = max(gap, t - prev)
                prev = max(prev, t)
            gap = max(gap, end - prev)
            if gap > certain_bar:
                certain.add(vcpu)
            elif gap > self.threshold_ns:
                ambiguous.add(vcpu)
        return certain, ambiguous

    def check(
        self, trace: Trace, alerts: List[dict]
    ) -> List[Discrepancy]:
        certain, ambiguous = self.expected_hangs(trace)
        flagged = {
            a.get("vcpu")
            for a in alerts
            if a.get("kind") == "vcpu_hang"
        }
        out = []
        for vcpu in sorted(certain - flagged):
            out.append(Discrepancy(
                "miss", self.auditor, {"vcpu": vcpu},
                "silent gap exceeds threshold + 2 check periods, "
                "no vcpu_hang raised",
            ))
        for vcpu in sorted(flagged - certain - ambiguous):
            out.append(Discrepancy(
                "false_alarm", self.auditor, {"vcpu": vcpu},
                "vcpu_hang raised but no timestamp gap exceeds the "
                "threshold",
            ))
        return out


@dataclass
class HrkdOracle:
    """Hidden-pid ground truth from sightings vs scan markers."""

    auditor = "hrkd"

    def expected_hidden(self, trace: Trace) -> Set[int]:
        """Pids sighted executing before a scan that omits them."""
        sightings: List[Tuple[int, int, bool]] = []  # (t, pid, kthread)
        scans: List[Dict[str, Any]] = []
        horizon = _horizon_ns(trace)
        for record in trace.records:
            if not isinstance(record, dict):
                continue
            kind = record.get("kind", KIND_EVENT)
            if kind == KIND_SCAN:
                try:
                    scans.append(decode_scan(record))
                except TraceFormatError:
                    continue
            elif kind == KIND_EVENT and record.get("type") == _THREAD_SWITCH:
                task = _annotated_pid(record)
                t = record.get("t")
                if task is not None and _within_horizon(t, horizon):
                    flags = task.get("flags", 0)
                    kthread = isinstance(flags, int) and bool(
                        flags & PF_KTHREAD
                    )
                    sightings.append((t, task["pid"], kthread))
        expected: Set[int] = set()
        for scan in scans:
            untrusted = set(scan["untrusted_pids"])
            for t, pid, kthread in sightings:
                if t <= scan["t"] and pid != 0 and not kthread:
                    if pid not in untrusted:
                        expected.add(pid)
        return expected

    def check(
        self, trace: Trace, alerts: List[dict]
    ) -> List[Discrepancy]:
        expected = self.expected_hidden(trace)
        named: Set[int] = set()
        for alert in alerts:
            if alert.get("kind") != "hidden_tasks":
                continue
            for pid in alert.get("hidden_pids") or ():
                if isinstance(pid, int):
                    named.add(pid)
        out = []
        for pid in sorted(expected - named):
            out.append(Discrepancy(
                "miss", self.auditor, {"pid": pid},
                "pid executed before a scan that omits it, but no "
                "hidden_tasks alert names it",
            ))
        # Pid-level false alarms only: the count-based detection path
        # (trusted_count > untrusted_count) legitimately fires without
        # naming pids and is not modelled here.
        for pid in sorted(named - expected):
            out.append(Discrepancy(
                "false_alarm", self.auditor, {"pid": pid},
                "hidden_tasks names a pid with no pre-scan sighting "
                "absent from the untrusted view",
            ))
        return out


@dataclass
class NinjaOracle:
    """Unauthorized-root ground truth from event annotations."""

    policy: NinjaPolicy = field(default_factory=NinjaPolicy)

    auditor = "ht-ninja"

    def _facts(self, task: Dict[str, Any], parent: Any) -> Optional[ProcessFacts]:
        try:
            parent = parent if isinstance(parent, dict) else {}
            return ProcessFacts(
                pid=int(task["pid"]),
                uid=int(task.get("uid", 0)),
                euid=int(task.get("euid", 0)),
                exe=str(task.get("exe", "")),
                comm=str(task.get("comm", "")),
                is_kthread=bool(int(task.get("flags", 0)) & PF_KTHREAD),
                parent_pid=int(parent.get("pid", 0)),
                parent_uid=int(parent.get("uid", 0)),
                parent_euid=int(parent.get("euid", 0)),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def expected_escalations(self, trace: Trace) -> Set[int]:
        horizon = _horizon_ns(trace)
        records = [
            r
            for r in trace.records
            if isinstance(r, dict)
            and r.get("kind", KIND_EVENT) == KIND_EVENT
            and _within_horizon(r.get("t"), horizon)
        ]
        records.sort(key=lambda r: r["t"])
        seen_threads: Set[int] = set()
        expected: Set[int] = set()
        for record in records:
            rtype = record.get("type")
            checkpoint = False
            if rtype == _THREAD_SWITCH:
                rsp0 = record.get("rsp0")
                if isinstance(rsp0, int) and rsp0 not in seen_threads:
                    seen_threads.add(rsp0)
                    checkpoint = True
            elif rtype == _SYSCALL:
                checkpoint = record.get("nr") in _IO_SYSCALL_NUMBERS
            if not checkpoint:
                continue
            task = _annotated_pid(record)
            if task is None:
                continue
            facts = self._facts(task, record.get("parent"))
            if facts is not None and self.policy.is_unauthorized_root(facts):
                expected.add(facts.pid)
        return expected

    def check(
        self, trace: Trace, alerts: List[dict]
    ) -> List[Discrepancy]:
        expected = self.expected_escalations(trace)
        flagged = {
            a.get("pid")
            for a in alerts
            if a.get("kind") == "privilege_escalation"
        }
        out = []
        for pid in sorted(expected - flagged):
            out.append(Discrepancy(
                "miss", self.auditor, {"pid": pid},
                "unauthorized-root checkpoint in the trace, no "
                "privilege_escalation alert for the pid",
            ))
        for pid in sorted(p for p in flagged - expected if isinstance(p, int)):
            out.append(Discrepancy(
                "false_alarm", self.auditor, {"pid": pid},
                "privilege_escalation raised for a pid with no "
                "unauthorized-root checkpoint in the trace",
            ))
        return out


# ======================================================================
# The differential check
# ======================================================================
class DifferentialOracle:
    """Compares per-auditor ground truth against a replay's alerts."""

    def __init__(self) -> None:
        self._oracles = {
            "goshd": GoshdOracle(),
            "hrkd": HrkdOracle(),
            "ht-ninja": NinjaOracle(),
        }

    def oracle_for(self, auditor_name: str):
        return self._oracles.get(auditor_name)

    def check(self, trace: Trace, report) -> List[Discrepancy]:
        """All discrepancies between ``trace`` ground truth and a
        :class:`~repro.replay.source.ReplayReport`."""
        out: List[Discrepancy] = []
        if report.container_failed:
            out.append(Discrepancy(
                "crash", "container", {},
                report.failure_reason or "auditing container failed",
            ))
        for name, alerts in sorted(report.alerts.items()):
            oracle = self._oracles.get(name)
            if oracle is not None:
                out.extend(oracle.check(trace, alerts))
        return out
