"""repro.obs — deterministic pipeline telemetry.

Counters, fixed-bucket histograms and event-flow spans for the
EF -> EM -> auditor pipeline, all keyed to the virtual clock so the
same (scenario, seed) yields byte-identical exports live, replayed,
and at any ``REPRO_JOBS``.  See ``python -m repro.obs --help`` for the
report / top / diff CLI and DESIGN.md §5f for the determinism
argument.
"""

from repro.obs.metrics import (
    BUCKET_BOUNDS_NS,
    INFRA_AUDITORS,
    STAGE_COUNTER_LABELS,
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    metric_scope,
)
from repro.obs.report import (
    collect_live,
    collect_replay,
    collect_seeds,
    collect_trace,
    diff_rows,
    export_lines,
    export_text,
    load_trace_observed,
    parse_export,
    rows_for_path,
    top_rows,
)

__all__ = [
    "BUCKET_BOUNDS_NS",
    "Counter",
    "Histogram",
    "INFRA_AUDITORS",
    "MetricsRegistry",
    "STAGE_COUNTER_LABELS",
    "collect_live",
    "collect_replay",
    "collect_seeds",
    "collect_trace",
    "diff_rows",
    "export_lines",
    "export_text",
    "load_trace_observed",
    "merge_snapshots",
    "metric_scope",
    "parse_export",
    "rows_for_path",
    "top_rows",
]
