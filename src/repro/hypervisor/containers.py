"""Auditing containers: LXC-like isolation for auditors.

The paper runs each VM's auditors as user processes inside containers
on the host, arguing three benefits: failure isolation between VMs'
auditors (and from the host), cheap event delivery, and easy
deployment.  Here the container boundary is a fault-containment
wrapper: an auditor that throws is quarantined and its events dropped,
while the EM and every other container keep running.

Delivery outcomes are accounted per ``(vm, auditor, type)`` in the
shared registry (``flow.delivered`` / ``flow.dropped`` with a
``reason`` of ``crash`` for the quarantining delivery itself or
``quarantined`` for everything dropped afterwards).  Infrastructure
riders — the trace recorder, the fuzzer's coverage probe
(:data:`~repro.obs.metrics.INFRA_AUDITORS`) — are excluded so the same
registry rows come out of a live run and a replay of its trace.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import AuditorCrash
from repro.obs.metrics import INFRA_AUDITORS, Counter, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.auditor import Auditor
    from repro.core.events import GuestEvent


class AuditingContainer:
    """One container hosting the auditors of one VM."""

    def __init__(
        self,
        vm_id: str,
        liveness=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.vm_id = vm_id
        self.auditors: List["Auditor"] = []
        self.failed = False
        self.failure_reason: Optional[str] = None
        self.delivered = 0
        self.dropped = 0
        #: Duck-typed liveness observer: anything with
        #: ``heartbeat(t_ns, channel=...)`` (the RHC qualifies).  Only
        #: *successful* deliveries beat — a quarantined container goes
        #: silent on its channel, which is exactly the signal a
        #: per-channel health check needs.
        self.liveness = liveness
        self.metrics = metrics
        self._cells: Dict[Tuple[str, str, str], Counter] = {}

    def add_auditor(self, auditor: "Auditor") -> None:
        self.auditors.append(auditor)

    def _count(self, name: str, auditor_name: str, event: "GuestEvent",
               reason: Optional[str] = None) -> None:
        key = (name, auditor_name, event.type.value)
        cell = self._cells.get(key) if reason is None else None
        if cell is None:
            labels = {
                "vm": self.vm_id,
                "auditor": auditor_name,
                "type": event.type.value,
            }
            if reason is not None:
                labels["reason"] = reason
            cell = self.metrics.counter(name, **labels)
            if reason is None:
                self._cells[key] = cell
        cell.value += 1

    def deliver(self, auditor: "Auditor", event: "GuestEvent") -> None:
        """Deliver one event; a crash quarantines the whole container
        (its process group dies) without touching the EM."""
        observed = (
            self.metrics is not None and auditor.name not in INFRA_AUDITORS
        )
        if self.failed:
            self.dropped += 1
            if observed:
                self._count(
                    "flow.dropped", auditor.name, event, reason="quarantined"
                )
            return
        try:
            auditor.on_event(event)
            self.delivered += 1
        except Exception as exc:  # noqa: BLE001 - the container boundary
            self.failed = True
            self.failure_reason = f"{type(exc).__name__}: {exc}"
            self.dropped += 1
            if observed:
                self._count(
                    "flow.dropped", auditor.name, event, reason="crash"
                )
            return
        if observed:
            self._count("flow.delivered", auditor.name, event)
            self.metrics.span_hop(
                "deliver", event.time_ns, auditor.name
            )
        if self.liveness is not None:
            self.liveness.heartbeat(
                getattr(event, "time_ns", 0), channel=self.vm_id
            )

    def raise_if_failed(self) -> None:
        """Test helper: surface a container crash as an exception."""
        if self.failed:
            raise AuditorCrash(self.failure_reason or "container failed")
