"""HT-Ninja: Privilege Escalation Detection on HyperTap (§VII-C).

Two changes relative to O-Ninja/H-Ninja, exactly as the paper states:

* **Passive -> active.**  Processes are checked at (i) their first
  context switch and (ii) every IO-related system call — i.e. *before*
  unauthorized file/network actions complete.  There is no interval to
  measure, spam past, or race.
* **OS invariants -> architectural invariants.**  The identity of the
  checked process is derived from hardware state (TR/TSS.RSP0 at the
  trapped event) through the ``ArchDeriver`` chain, not from /proc or
  a task-list walk, so DKOM hiding is irrelevant.

The auditor is *blocking*: the audit happens synchronously with the
trapped operation (this is also why HT-Ninja dominates the syscall
micro-benchmark overhead in Fig 7).
"""

from __future__ import annotations

from typing import Optional, Set

from repro.auditors.ninja_rules import NinjaPolicy, ProcessFacts
from repro.core.auditor import Auditor
from repro.core.derive import DerivedTaskInfo, PF_KTHREAD
from repro.core.events import (
    EventType,
    GuestEvent,
    SyscallEvent,
    ThreadSwitchEvent,
)

# hypertap: allow(trust-boundary) — syscall-number table is the kernel ABI spec, not runtime guest state
from repro.guest.syscalls import IO_SYSCALLS, SYSCALL_NUMBERS

#: Syscall numbers HT-Ninja treats as IO-related.
IO_SYSCALL_NUMBERS = frozenset(
    SYSCALL_NUMBERS[name] for name in IO_SYSCALLS
)


class HTNinja(Auditor):
    """Active, invariant-rooted privilege escalation detector."""

    name = "ht-ninja"
    subscriptions = {EventType.THREAD_SWITCH, EventType.SYSCALL}
    blocking = True

    def __init__(
        self,
        policy: Optional[NinjaPolicy] = None,
        pause_on_detect: bool = False,
    ) -> None:
        super().__init__()
        self.policy = policy if policy is not None else NinjaPolicy()
        self.pause_on_detect = pause_on_detect
        self._seen_threads: Set[int] = set()
        self._flagged_pids: Set[int] = set()
        self.checks_performed = 0

    def wants_blocking(self, event: GuestEvent) -> bool:
        """Synchronous only where the policy gates an action: IO
        syscalls, and the first sighting of a thread (its first
        context switch).  Everything else is observe-only."""
        if isinstance(event, SyscallEvent):
            return event.number in IO_SYSCALL_NUMBERS
        if isinstance(event, ThreadSwitchEvent):
            return event.rsp0 not in self._seen_threads
        return False

    @property
    def detections(self):
        return [a for a in self.alerts if a["kind"] == "privilege_escalation"]

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    # ------------------------------------------------------------------
    def audit(self, event: GuestEvent) -> None:
        if isinstance(event, ThreadSwitchEvent):
            if event.rsp0 in self._seen_threads:
                return
            self._seen_threads.add(event.rsp0)
            info = self.hypertap.deriver.task_info_from_rsp0(event.rsp0)
            self._check(info)
        elif isinstance(event, SyscallEvent):
            if event.number not in IO_SYSCALL_NUMBERS:
                return
            info = self.hypertap.deriver.current_task_info(event.vcpu_index)
            self._check(info)

    # ------------------------------------------------------------------
    def _check(self, info: Optional[DerivedTaskInfo]) -> None:
        if info is None:
            return
        self.checks_performed += 1
        if info.flags & PF_KTHREAD or info.pid <= 1:
            return
        if info.euid != 0:
            return
        parent = (
            self.hypertap.deriver.task_info_at(info.parent_gva)
            if info.parent_gva
            else None
        )
        facts = ProcessFacts(
            pid=info.pid,
            uid=info.uid,
            euid=info.euid,
            exe=info.exe,
            comm=info.comm,
            is_kthread=bool(info.flags & PF_KTHREAD),
            parent_pid=parent.pid if parent else 0,
            parent_uid=parent.uid if parent else 0,
            parent_euid=parent.euid if parent else 0,
        )
        if not self.policy.is_unauthorized_root(facts):
            return
        if info.pid in self._flagged_pids:
            return
        self._flagged_pids.add(info.pid)
        self.raise_alert(
            "privilege_escalation",
            pid=info.pid,
            comm=info.comm,
            exe=info.exe,
            parent_uid=facts.parent_uid,
        )
        if self.pause_on_detect:
            self.hypertap.pause_vm()
