"""Fault-campaign classification edges (Fig 4's outcome taxonomy).

The interesting cases sit on boundaries: a vCPU whose last context
switch is *exactly* the GOSHD threshold old (the oracle uses strict
``>``), and trials where the external SSH probe and the simulator's
oracle counters disagree about whether anything actually failed —
which is precisely the NOT_DETECTED / NOT_MANIFESTED split the paper's
coverage number hinges on.

``_classify`` only reads a handful of attributes from each
collaborator, so plain namespaces stand in for the full stack.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.faults.campaign import (
    CampaignSummary,
    Outcome,
    TrialConfig,
    TrialResult,
    _classify,
    _scheduler_stalled,
)
from repro.faults.sites import build_site_catalog
from repro.sim.clock import SECOND

THRESHOLD = 4 * SECOND


def fake_testbed(now_ns, last_switches):
    return SimpleNamespace(
        engine=SimpleNamespace(clock=SimpleNamespace(now=now_ns)),
        kernel=SimpleNamespace(
            cpus=[SimpleNamespace(last_switch_ns=t) for t in last_switches]
        ),
    )


def fake_goshd(hang_detected=False, is_full_hang=False):
    return SimpleNamespace(hang_detected=hang_detected, is_full_hang=is_full_hang)


def classify(
    *,
    now=10 * SECOND,
    last_switches=(10 * SECOND, 10 * SECOND),
    hang_detected=False,
    is_full_hang=False,
    activated=True,
    probe_dead=False,
):
    return _classify(
        fake_testbed(now, list(last_switches)),
        fake_goshd(hang_detected, is_full_hang),
        SimpleNamespace(activated=activated),
        SimpleNamespace(reports_dead=probe_dead),
        TrialConfig(goshd_threshold_ns=THRESHOLD),
    )


# ======================================================================
# Oracle boundary: strict > at exactly the threshold
# ======================================================================
class TestSchedulerStalledBoundary:
    def test_exactly_at_threshold_is_not_stalled(self):
        testbed = fake_testbed(10 * SECOND, [10 * SECOND - THRESHOLD])
        assert not _scheduler_stalled(testbed, THRESHOLD)

    def test_one_ns_past_threshold_is_stalled(self):
        testbed = fake_testbed(10 * SECOND, [10 * SECOND - THRESHOLD - 1])
        assert _scheduler_stalled(testbed, THRESHOLD)

    def test_any_single_stale_vcpu_counts(self):
        # One fresh vCPU does not mask a stalled sibling — partial
        # hangs are the paper's headline case.
        testbed = fake_testbed(10 * SECOND, [10 * SECOND, 1 * SECOND])
        assert _scheduler_stalled(testbed, THRESHOLD)

    def test_classification_flips_across_the_exact_boundary(self):
        at = classify(last_switches=(10 * SECOND - THRESHOLD,))
        past = classify(last_switches=(10 * SECOND - THRESHOLD - 1,))
        assert at is Outcome.NOT_MANIFESTED
        assert past is Outcome.NOT_DETECTED


# ======================================================================
# NOT_DETECTED vs NOT_MANIFESTED when the signals disagree
# ======================================================================
class TestProbeOracleDisagreement:
    def test_both_quiet_is_not_manifested(self):
        assert classify() is Outcome.NOT_MANIFESTED

    def test_probe_dead_oracle_fresh_is_a_miss(self):
        # The SSH probe sees a dead VM even though every vCPU still
        # context-switches (e.g. a livelock the counters cannot see):
        # the trial is still a detection miss, not "nothing happened".
        assert classify(probe_dead=True) is Outcome.NOT_DETECTED

    def test_oracle_stalled_probe_alive_is_a_miss(self):
        # Converse disagreement: one vCPU stalled (true partial hang)
        # while the probe's vCPU stays responsive.  GOSHD said nothing,
        # so this too must count against coverage.
        assert (
            classify(last_switches=(10 * SECOND, 1 * SECOND))
            is Outcome.NOT_DETECTED
        )

    def test_detection_beats_the_disagreement(self):
        # Once GOSHD alarmed, probe/oracle disagreement is moot.
        assert (
            classify(hang_detected=True, probe_dead=True)
            is Outcome.PARTIAL_HANG
        )
        assert (
            classify(hang_detected=True, is_full_hang=True, probe_dead=True)
            is Outcome.FULL_HANG
        )

    def test_not_activated_trumps_everything(self):
        # A trial whose fault never fired is NOT_ACTIVATED even if the
        # VM looks unhealthy for unrelated reasons.
        assert (
            classify(activated=False, probe_dead=True)
            is Outcome.NOT_ACTIVATED
        )


# ======================================================================
# Latency bookkeeping and coverage accounting on the same edges
# ======================================================================
SITE = build_site_catalog(limit=1)[0]


def result(outcome, activation_ns=None, first_alert_ns=None):
    return TrialResult(
        site=SITE,
        config=TrialConfig(),
        outcome=outcome,
        activated=activation_ns is not None,
        activation_ns=activation_ns,
        first_alert_ns=first_alert_ns,
        hung_vcpus=(),
        full_hang_ns=None,
        probe_dead=False,
    )


class TestLatencyAndCoverage:
    def test_latency_none_without_both_endpoints(self):
        assert result(Outcome.NOT_MANIFESTED).detection_latency_ns is None
        assert (
            result(Outcome.PARTIAL_HANG, activation_ns=SECOND).detection_latency_ns
            is None
        )

    def test_latency_clamped_at_zero(self):
        # An alarm time stamped before activation (same-instant races
        # in the event log) clamps to zero, never negative.
        r = result(
            Outcome.PARTIAL_HANG,
            activation_ns=2 * SECOND,
            first_alert_ns=1 * SECOND,
        )
        assert r.detection_latency_ns == 0

    def test_coverage_counts_only_true_hangs(self):
        summary = CampaignSummary()
        summary.add(result(Outcome.FULL_HANG, 1, 2))
        summary.add(result(Outcome.PARTIAL_HANG, 1, 2))
        summary.add(result(Outcome.NOT_DETECTED, 1))
        summary.add(result(Outcome.NOT_MANIFESTED, 1))
        summary.add(result(Outcome.NOT_ACTIVATED))
        assert summary.coverage() == 2 / 3
        counts = summary.outcome_counts()
        assert counts[Outcome.NOT_DETECTED] == 1
        assert counts[Outcome.NOT_MANIFESTED] == 1
