"""TraceReader against broken streams: truncation, corruption, garbage.

The contract under test: malformed JSONL *lines* are counted and
skipped (graceful degradation for torn tails), but a broken gzip
*stream* — truncated member, corrupt deflate bytes, trailing garbage
after the member — raises a typed :class:`TraceFormatError` naming the
last record read, never a raw ``EOFError``/``BadGzipFile``/
``json.JSONDecodeError`` leaking out of the stdlib.
"""

from __future__ import annotations

import gzip
import json

import pytest

from repro.errors import TraceFormatError
from repro.replay.format import Trace, TraceHeader
from repro.replay.trace_io import TraceReader, load_trace, save_trace


def make_trace(n_records=20):
    records = [
        {"kind": "event", "type": "io", "t": i * 1000, "vcpu": 0,
         "vm": "vm0", "port": 0x64, "direction": "in", "size": 1}
        for i in range(n_records)
    ]
    return Trace(header=TraceHeader(end_ns=n_records * 1000), records=records)


def gz_bytes(trace) -> bytes:
    lines = [json.dumps(trace.header.to_record())]
    lines += [json.dumps(r) for r in trace.records]
    return gzip.compress(("\n".join(lines) + "\n").encode("utf-8"))


# ======================================================================
# Broken gzip streams raise typed errors with a record index
# ======================================================================
class TestBrokenGzip:
    def test_truncated_member_raises_trace_format_error(self, tmp_path):
        # Big enough that the header decompresses from the first chunk
        # and the cut lands mid-body.
        path = tmp_path / "t.jsonl.gz"
        payload = gz_bytes(make_trace(5000))
        path.write_bytes(payload[: len(payload) // 2])
        reader = TraceReader(str(path))
        with pytest.raises(TraceFormatError) as err:
            list(reader)
        assert "after record" in str(err.value)

    def test_error_names_the_last_good_record(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        payload = gz_bytes(make_trace(5000))
        path.write_bytes(payload[:-8])  # sever the CRC/size trailer
        reader = TraceReader(str(path))
        consumed = []
        with pytest.raises(TraceFormatError) as err:
            for record in reader:
                consumed.append(record)
        assert f"after record {reader.records_read}" in str(err.value)
        assert len(consumed) == reader.records_read

    def test_corrupt_deflate_bytes(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        payload = bytearray(gz_bytes(make_trace(5000)))
        mid = len(payload) // 2
        payload[mid:mid + 16] = b"\xff" * 16  # stomp the deflate stream
        path.write_bytes(bytes(payload))
        with pytest.raises(TraceFormatError):
            # Corruption may hit before or after the header line; both
            # must surface as the same typed error.
            list(TraceReader(str(path)))

    def test_trailing_garbage_after_the_member(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        path.write_bytes(gz_bytes(make_trace(5)) + b"NOT GZIP DATA")
        reader = TraceReader(str(path))
        with pytest.raises(TraceFormatError) as err:
            list(reader)
        assert "after record 5" in str(err.value)

    def test_corrupt_header_read_is_typed_and_closes(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        path.write_bytes(b"\x1f\x8b\x08\x00garbage-after-magic")
        with pytest.raises(TraceFormatError) as err:
            TraceReader(str(path))
        assert "header" in str(err.value)

    def test_non_gzip_bytes_with_gz_suffix(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        path.write_bytes(b'{"kind": "header"}\n')
        with pytest.raises(TraceFormatError):
            TraceReader(str(path))


# ======================================================================
# Line-level damage stays graceful (and distinct from stream damage)
# ======================================================================
class TestTornLines:
    def test_trailing_json_garbage_is_counted_not_raised(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(str(path), make_trace(5))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "event", "type": "io", "t": 12\n')  # torn
            fh.write("complete garbage\n")
        reader = TraceReader(str(path))
        records = list(reader)
        assert len(records) == 5
        assert reader.malformed_lines == 2

    def test_bad_header_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"kind": "header", "version": \n', encoding="utf-8")
        with pytest.raises(TraceFormatError):
            TraceReader(str(path))

    def test_load_trace_round_trip_survives_gzip(self, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        trace = make_trace(7)
        save_trace(str(path), trace)
        loaded = load_trace(str(path))
        assert loaded.records == trace.records
        assert loaded.header.event_counts == {"io": 7}
