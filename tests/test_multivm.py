"""Tests for multi-VM hosting (Fig 2's deployment shape)."""

import pytest

from repro.auditors.goshd import GuestOSHangDetector
from repro.auditors.ht_ninja import HTNinja
from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.guest.programs import KCompute, LockAcquire
from repro.harness import SharedHost, TestbedConfig


class Crasher(Auditor):
    name = "crasher"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        raise RuntimeError("bug")


class Counter(Auditor):
    name = "counter"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        pass


def busy(ctx):
    while True:
        yield ctx.compute(300_000)
        yield ctx.sys_write(1, 8)


@pytest.fixture
def host():
    return SharedHost(num_vms=2, base_config=TestbedConfig(seed=31)).boot_all()


class TestSharedHost:
    def test_both_guests_run_on_one_timeline(self, host):
        host.run_s(2.0)
        for vm in host.vms:
            assert vm.kernel.syscall_count > 0
            assert sum(c.context_switches for c in vm.kernel.cpus) > 0

    def test_events_routed_by_vm(self, host):
        counters = []
        for index, vm in enumerate(host.vms):
            counter = Counter()
            counters.append(counter)
            host.monitor(index, [counter])
        # Load only vm0.
        host.vms[0].kernel.spawn_process(busy, "b", uid=1000)
        host.run_s(2.0)
        vm0_events = sum(counters[0].events_seen.values())
        vm1_events = sum(counters[1].events_seen.values())
        assert vm0_events > vm1_events

    def test_container_isolation_between_vms(self, host):
        crasher = Crasher()
        counter = Counter()
        host.monitor(0, [crasher])
        host.monitor(1, [counter])
        for vm in host.vms:
            vm.kernel.spawn_process(busy, "b", uid=1000)
        host.run_s(2.0)
        assert host.vms[0].hypertap.container.failed
        assert not host.vms[1].hypertap.container.failed
        assert sum(counter.events_seen.values()) > 0

    def test_independent_detections(self, host):
        """A hang in vm0 must not alarm vm1's GOSHD, and vice versa."""
        goshd0 = GuestOSHangDetector()
        goshd1 = GuestOSHangDetector()
        host.monitor(0, [goshd0])
        host.monitor(1, [goshd1])
        host.run_s(1.0)

        kernel0 = host.vms[0].kernel
        kernel0.locks.get("test_driver_lock").leak()

        def spinner(kernel, task):
            yield LockAcquire("test_driver_lock")
            yield KCompute(1)

        kernel0.spawn_kthread(spinner, "wedge", cpu=0)
        host.run_s(8.0)
        assert goshd0.hang_detected
        assert not goshd1.hang_detected

    def test_shared_rhc(self):
        host = SharedHost(
            num_vms=2,
            base_config=TestbedConfig(seed=3, rhc_timeout_s=3),
            with_rhc=True,
        ).boot_all()
        host.monitor(0, [Counter()])
        host.monitor(1, [Counter()])
        for vm in host.vms:
            vm.kernel.spawn_process(busy, "b", uid=1000)
        host.run_s(4.0)
        assert host.rhc.heartbeats > 0
        assert not host.rhc.alarmed

    def test_attack_on_one_vm_detected_there_only(self, host):
        from repro.attacks.strategies import TransientAttack
        from repro.attacks.exploits import ExploitPlan

        ninja0 = HTNinja()
        ninja1 = HTNinja()
        host.monitor(0, [ninja0])
        host.monitor(1, [ninja1])
        host.run_s(0.5)
        TransientAttack(
            host.vms[0].kernel, ExploitPlan(exit_after=False)
        ).launch()
        host.run_s(1.0)
        assert ninja0.detected
        assert not ninja1.detected
