"""HTTP server workload + ApacheBench-style external load driver.

The server is a guest process: it blocks in ``socket_recv``, then
serves the request (CPU for parsing/templating, a disk read for the
document, ``socket_send`` for the response).  The driver lives outside
the VM (like ApacheBench on a separate machine): it injects request
packets through the NIC at a configured rate and counts responses by
watching the NIC's transmit counter.
"""

from __future__ import annotations

from typing import Optional

from repro.guest.kernel import GuestKernel
from repro.guest.programs import GuestContext
from repro.guest.task import Task
from repro.sim.clock import MILLISECOND


def make_http_server(stats: Optional[dict] = None):
    """Program factory; ``stats['served']`` counts completed requests."""
    if stats is None:
        stats = {}
    stats.setdefault("served", 0)

    def _program(ctx: GuestContext):
        while True:
            yield ctx.sys_socket_recv()
            yield ctx.compute(400_000)  # parse request, build response
            yield ctx.sys_disk_read(1)  # fetch the document
            yield ctx.sys_socket_send(1460)
            stats["served"] += 1

    return _program


class ApacheBenchDriver:
    """Open-loop request generator on the 'external machine'."""

    def __init__(
        self,
        kernel: GuestKernel,
        request_period_ns: int = 20 * MILLISECOND,
        target_vcpu: int = 0,
    ) -> None:
        self.kernel = kernel
        self.request_period_ns = request_period_ns
        self.target_vcpu = target_vcpu
        self.requests_sent = 0
        self.stats: dict = {"served": 0}
        self.server_task: Optional[Task] = None
        self._running = False

    def start(self, server_processes: int = 2) -> None:
        for i in range(server_processes):
            task = self.kernel.spawn_process(
                make_http_server(self.stats),
                f"httpd/{i}",
                uid=30,  # wwwrun
                exe="/usr/sbin/httpd",
            )
            if self.server_task is None:
                self.server_task = task
        self._running = True
        self.kernel.engine.schedule(
            self.request_period_ns, self._tick, label="ab-request"
        )

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.requests_sent += 1
        self.kernel.deliver_packet(512, vcpu_index=self.target_vcpu)
        self.kernel.engine.schedule(
            self.request_period_ns, self._tick, label="ab-request"
        )

    @property
    def responses(self) -> int:
        return self.stats["served"]
