"""Seeded trace mutations: fuzzing the monitoring stack's input edge.

IRIS-style replay makes the auditor pipeline a pure function of a
trace file — which makes it fuzzable without a guest.  The operators
here model what a hostile or broken recorder could feed the stack:

* ``drop``        — lose records (EF overload, torn buffers);
* ``duplicate``   — deliver a record twice (retransmission);
* ``reorder``     — swap records, breaking time monotonicity;
* ``corrupt``     — damage one field (bit-rot, truncation, type holes);
* ``silence_gap`` — shift the tail of the trace later in time,
  opening a heartbeat-free window (what the RHC must catch).

All randomness comes from one seeded :class:`random.Random`, so a
(seed, n) pair names a mutation deterministically.
"""

from __future__ import annotations

import copy
import random
from typing import Any, Dict, List, Tuple

from repro.replay.format import KIND_EVENT, Trace
from repro.sim.clock import SECOND

#: Values ``corrupt`` may write over an existing field.
_CORRUPTIONS: List[Any] = [
    None,
    -1,
    "XX-CORRUPT-XX",
    2**63,
    [],
    {"$enum": "NoSuchEnum", "v": "?"},
    3.14159,
    True,
]

MUTATION_OPERATORS = ("drop", "duplicate", "reorder", "corrupt", "silence_gap")


class TraceMutator:
    """Applies seeded mutation operators to in-memory traces."""

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)
        #: Net time shift applied by ``silence_gap`` during one
        #: :meth:`mutate` call; the only mutation allowed to move the
        #: trace horizon (a ``corrupt`` that writes an absurd timestamp
        #: must stay *beyond* the horizon so replay rejects it).
        self._shift_ns = 0

    # ------------------------------------------------------------------
    # Operators (each edits ``records`` in place, returns a description)
    # ------------------------------------------------------------------
    def _event_indexes(self, records: List[Dict[str, Any]]) -> List[int]:
        return [
            i
            for i, r in enumerate(records)
            if isinstance(r, dict) and r.get("kind") == KIND_EVENT
        ]

    def drop(self, records: List[Dict[str, Any]]) -> str:
        idxs = self._event_indexes(records)
        if not idxs:
            return "drop: no-op (no events)"
        victim = self.rng.choice(idxs)
        removed = records.pop(victim)
        return f"drop: record {victim} ({removed.get('type')})"

    def duplicate(self, records: List[Dict[str, Any]]) -> str:
        idxs = self._event_indexes(records)
        if not idxs:
            return "duplicate: no-op (no events)"
        victim = self.rng.choice(idxs)
        records.insert(victim, copy.deepcopy(records[victim]))
        return f"duplicate: record {victim} ({records[victim].get('type')})"

    def reorder(self, records: List[Dict[str, Any]]) -> str:
        idxs = self._event_indexes(records)
        if len(idxs) < 2:
            return "reorder: no-op (<2 events)"
        a, b = sorted(self.rng.sample(idxs, 2))
        records[a], records[b] = records[b], records[a]
        return f"reorder: records {a} <-> {b}"

    def corrupt(self, records: List[Dict[str, Any]]) -> str:
        idxs = self._event_indexes(records)
        if not idxs:
            return "corrupt: no-op (no events)"
        victim = self.rng.choice(idxs)
        record = records[victim]
        keys = sorted(record.keys())
        key = self.rng.choice(keys)
        value = self.rng.choice(_CORRUPTIONS)
        record[key] = copy.deepcopy(value)
        return f"corrupt: record {victim} field {key!r} -> {value!r}"

    def silence_gap(
        self, records: List[Dict[str, Any]], gap_ns: int = 0
    ) -> str:
        """Shift every record after a random split point ``gap_ns``
        later, creating a window with no events (and no heartbeats)."""
        idxs = self._event_indexes(records)
        if not idxs:
            return "silence_gap: no-op (no events)"
        if gap_ns <= 0:
            gap_ns = self.rng.randrange(1 * SECOND, 10 * SECOND)
        split = self.rng.choice(idxs)
        shifted = 0
        for record in records[split:]:
            if isinstance(record, dict) and isinstance(record.get("t"), int):
                record["t"] += gap_ns
                shifted += 1
        if shifted:
            self._shift_ns += gap_ns
        return f"silence_gap: +{gap_ns}ns after record {split} ({shifted} shifted)"

    # ------------------------------------------------------------------
    def mutate(
        self, trace: Trace, n_mutations: int = 1
    ) -> Tuple[Trace, List[str]]:
        """Return a mutated deep copy of ``trace`` plus an operation log."""
        mutated = Trace(
            header=copy.deepcopy(trace.header),
            records=copy.deepcopy(trace.records),
        )
        log: List[str] = []
        self._shift_ns = 0
        for _ in range(max(1, n_mutations)):
            op = self.rng.choice(MUTATION_OPERATORS)
            log.append(getattr(self, op)(mutated.records))
        if mutated.header.end_ns is not None and self._shift_ns:
            # Extend the horizon by exactly the silence-gap shifts —
            # never by whatever timestamp ``corrupt`` wrote, or one
            # 2**63 corruption would legitimize an absurd horizon and
            # drag every periodic auditor check across aeons.
            mutated.header.end_ns += self._shift_ns
        return mutated, log
