"""Self-service experiment runners for every paper artifact.

Each function reruns one of the paper's tables/figures at a chosen
scale and returns a plain-text report (the same content the benchmark
suite prints).  Command-line use::

    python -m repro.experiments list
    python -m repro.experiments table2
    python -m repro.experiments fig4 --scale 2.0
    python -m repro.experiments all

The benchmark suite (`pytest benchmarks/ --benchmark-only`) wraps the
same primitives with timing and shape assertions.
"""

from repro.experiments.runners import (
    EXPERIMENTS,
    run_experiment,
    run_fig4_fig5,
    run_fig7,
    run_ninja_curves,
    run_rhc,
    run_table2,
    run_table3,
    run_unified_ablation,
)

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "run_fig4_fig5",
    "run_fig7",
    "run_ninja_curves",
    "run_rhc",
    "run_table2",
    "run_table3",
    "run_unified_ablation",
]
