"""Tests for the guest syscall layer (both entry mechanisms)."""

import pytest

from repro.guest.syscalls import IO_SYSCALLS, SYSCALL_NUMBERS
from repro.guest.task import TaskState
from repro.harness import Testbed, TestbedConfig
from repro.sim.clock import MILLISECOND


def run_one_shot(testbed, program, uid=1000, timeout_s=10.0, **kwargs):
    """Spawn a program, run until it exits, return the task."""
    task = testbed.kernel.spawn_process(program, "t", uid=uid, **kwargs)
    deadline = testbed.engine.clock.now + int(timeout_s * 1e9)
    while task.state is not TaskState.ZOMBIE and testbed.engine.clock.now < deadline:
        testbed.engine.run_for(10 * MILLISECOND)
    assert task.state is TaskState.ZOMBIE, "program did not finish"
    return task


class TestBasicSyscalls:
    def test_getpid_returns_pid(self, testbed):
        seen = {}

        def prog(ctx):
            seen["pid"] = yield ctx.sys_getpid()
            yield ctx.exit(0)

        task = run_one_shot(testbed, prog)
        assert seen["pid"] == task.pid

    def test_geteuid_getuid(self, testbed):
        seen = {}

        def prog(ctx):
            seen["uid"] = yield ctx.sys_getuid()
            seen["euid"] = yield ctx.sys_geteuid()
            yield ctx.exit(0)

        run_one_shot(testbed, prog, uid=1000)
        assert seen == {"uid": 1000, "euid": 1000}

    def test_write_reaches_console(self, testbed):
        def prog(ctx):
            yield ctx.sys_write(1, 10)
            yield ctx.exit(0)

        before = testbed.machine.console.bytes_written
        run_one_shot(testbed, prog)
        assert testbed.machine.console.bytes_written == before + 1

    def test_open_returns_growing_fds(self, testbed):
        fds = []

        def prog(ctx):
            fds.append((yield ctx.sys_open("/a")))
            fds.append((yield ctx.sys_open("/b")))
            yield ctx.exit(0)

        run_one_shot(testbed, prog)
        assert fds[1] == fds[0] + 1

    def test_nanosleep_duration(self, testbed):
        stamps = {}

        def prog(ctx):
            stamps["start"] = testbed.engine.clock.now
            yield ctx.sys_nanosleep(100 * MILLISECOND)
            stamps["end"] = testbed.engine.clock.now
            yield ctx.exit(0)

        run_one_shot(testbed, prog)
        elapsed = stamps["end"] - stamps["start"]
        assert elapsed >= 100 * MILLISECOND
        assert elapsed < 200 * MILLISECOND

    def test_disk_read_blocks_and_completes(self, testbed):
        def prog(ctx):
            got = yield ctx.sys_disk_read(2)
            assert got == 2
            yield ctx.exit(0)

        run_one_shot(testbed, prog)
        assert testbed.machine.disk.blocks_read == 2

    def test_uname(self, testbed):
        out = {}

        def prog(ctx):
            out["uname"] = yield ctx.sys_uname()
            yield ctx.exit(0)

        run_one_shot(testbed, prog)
        assert "linux" in out["uname"]

    def test_gettimeofday_advances(self, testbed):
        out = []

        def prog(ctx):
            out.append((yield ctx.sys_gettimeofday()))
            yield ctx.compute(1_000_000)
            out.append((yield ctx.sys_gettimeofday()))
            yield ctx.exit(0)

        run_one_shot(testbed, prog)
        assert out[1] > out[0]


class TestProcessLifecycle:
    def test_spawn_and_waitpid(self, testbed):
        events = []

        def child(ctx):
            events.append("child-ran")
            yield ctx.compute(100_000)
            yield ctx.exit(7)

        def parent(ctx):
            pid = yield ctx.sys_spawn(child, "child")
            code = yield ctx.sys_waitpid(pid)
            events.append(("reaped", code))
            yield ctx.exit(0)

        run_one_shot(testbed, parent)
        assert "child-ran" in events
        assert ("reaped", 7) in events

    def test_child_inherits_uid(self, testbed):
        seen = {}

        def child(ctx):
            seen["uid"] = yield ctx.sys_getuid()
            yield ctx.exit(0)

        def parent(ctx):
            pid = yield ctx.sys_spawn(child, "child")
            yield ctx.sys_waitpid(pid)
            yield ctx.exit(0)

        run_one_shot(testbed, parent, uid=1234)
        assert seen["uid"] == 1234

    def test_exit_evicts_address_space(self, testbed):
        def prog(ctx):
            yield ctx.compute(1000)
            yield ctx.exit(0)

        task = run_one_shot(testbed, prog)
        registry = testbed.machine.page_registry
        from repro.hw.paging import UNMAPPED_GVA

        assert (
            registry.gva_to_gpa(task.mm.pgd, 0x400000) == UNMAPPED_GVA
        )

    def test_exit_unlinks_from_task_list(self, testbed):
        def prog(ctx):
            yield ctx.compute(1000)
            yield ctx.exit(0)

        task = run_one_shot(testbed, prog)
        assert task.pid not in testbed.kernel.guest_view_pids()

    def test_kill_permission_denied_for_other_user(self, testbed):
        results = {}
        def victim_prog(ctx):
            while True:
                yield ctx.compute(10**9)

        victim = testbed.kernel.spawn_process(victim_prog, "victim", uid=0)

        def killer(ctx):
            results["rc"] = yield ctx.sys_kill(victim.pid)
            yield ctx.exit(0)

        run_one_shot(testbed, killer, uid=1000)
        assert results["rc"] == -1
        assert victim.state is not TaskState.ZOMBIE

    def test_kill_as_root_succeeds(self, testbed):
        def victim_prog(ctx):
            while True:
                yield ctx.compute(10**9)

        victim = testbed.kernel.spawn_process(victim_prog, "victim", uid=1000)

        def killer(ctx):
            rc = yield ctx.sys_kill(victim.pid)
            assert rc == 0
            yield ctx.exit(0)

        run_one_shot(testbed, killer, uid=0)
        assert victim.state is TaskState.ZOMBIE

    def test_setuid_requires_root(self, testbed):
        results = {}

        def prog(ctx):
            results["rc"] = yield ctx.sys_setuid(0)
            results["euid"] = yield ctx.sys_geteuid()
            yield ctx.exit(0)

        run_one_shot(testbed, prog, uid=1000)
        assert results["rc"] == -1
        assert results["euid"] == 1000

    def test_setuid_as_root_drops_privileges(self, testbed):
        results = {}

        def prog(ctx):
            rc = yield ctx.sys_setuid(500)
            results["rc"] = rc
            results["euid"] = yield ctx.sys_geteuid()
            yield ctx.exit(0)

        run_one_shot(testbed, prog, uid=0)
        assert results["rc"] == 0
        assert results["euid"] == 500


class TestVulnerableSyscalls:
    def test_sock_diag_escalates(self, testbed):
        results = {}

        def prog(ctx):
            yield ctx.syscall("vuln_sock_diag")
            results["euid"] = yield ctx.sys_geteuid()
            yield ctx.exit(0)

        run_one_shot(testbed, prog, uid=1000)
        assert results["euid"] == 0
        assert testbed.kernel.exploit_log
        assert testbed.kernel.exploit_log[0][2] == "CVE-2013-1763"

    def test_ld_origin_escalates_euid_only(self, testbed):
        results = {}

        def prog(ctx):
            yield ctx.syscall("vuln_ld_origin")
            results["euid"] = yield ctx.sys_geteuid()
            results["uid"] = yield ctx.sys_getuid()
            yield ctx.exit(0)

        run_one_shot(testbed, prog, uid=1000)
        assert results["euid"] == 0
        assert results["uid"] == 1000


class TestSyscallMechanisms:
    @pytest.mark.parametrize("mechanism", ["sysenter", "int80"])
    def test_both_mechanisms_work(self, mechanism):
        tb = Testbed(TestbedConfig(syscall_mechanism=mechanism))
        tb.boot()
        seen = {}

        def prog(ctx):
            seen["pid"] = yield ctx.sys_getpid()
            yield ctx.exit(0)

        run_one_shot(tb, prog)
        assert seen["pid"] > 0


class TestSyscallTableMetadata:
    def test_numbers_unique(self):
        values = list(SYSCALL_NUMBERS.values())
        assert len(values) == len(set(values))

    def test_io_syscalls_are_known(self):
        assert IO_SYSCALLS <= set(SYSCALL_NUMBERS)

    def test_unknown_syscall_raises(self, testbed):
        from repro.errors import SimulationError

        def prog(ctx):
            yield ctx.syscall("frobnicate")

        testbed.kernel.spawn_process(prog, "bad", uid=0)
        with pytest.raises(SimulationError):
            testbed.run_s(1.0)
