"""System-call policy enforcement and anomaly detection (§VII-D).

The paper points out that the class of security tools built on
system-call interposition — policy enforcement à la Systrace [30] and
sequence-anomaly intrusion detection à la Kosoresow & Hofmeyr [31] —
can run unmodified on HyperTap's logging channel, gaining the isolated
root of trust for free.  This module provides both:

* :class:`SyscallPolicyAuditor` — per-executable allow-lists.  The
  subject of each trapped syscall is derived architecturally
  (TR -> TSS.RSP0 -> task_struct), so a process cannot lie about who
  it is; violations raise alerts and can pause the VM.
* :class:`SyscallSequenceAnomalyDetector` — sliding-window n-gram
  model of per-process syscall sequences, trained online during a
  learning phase, flagging unseen n-grams afterwards.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, FrozenSet, Optional, Set, Tuple

from repro.core.auditor import Auditor
from repro.core.events import EventType, GuestEvent, SyscallEvent

# hypertap: allow(trust-boundary) — syscall-number table is the kernel ABI spec, not runtime guest state
from repro.guest.syscalls import SYSCALL_NUMBERS

#: Reverse map for readable alerts.
SYSCALL_NAMES = {number: name for name, number in SYSCALL_NUMBERS.items()}


@dataclass(frozen=True)
class SyscallPolicy:
    """Allow-list policy for one executable."""

    exe: str
    allowed: FrozenSet[int]

    @classmethod
    def allow(cls, exe: str, *names: str) -> "SyscallPolicy":
        return cls(
            exe=exe,
            allowed=frozenset(SYSCALL_NUMBERS[name] for name in names),
        )


class SyscallPolicyAuditor(Auditor):
    """Systrace-style enforcement from below the guest."""

    name = "syscall-policy"
    subscriptions = {EventType.SYSCALL}
    blocking = True  # enforcement must be synchronous

    def __init__(
        self,
        policies: Dict[str, SyscallPolicy],
        default_allow: bool = True,
        pause_on_violation: bool = False,
    ) -> None:
        super().__init__()
        self.policies = dict(policies)
        self.default_allow = default_allow
        self.pause_on_violation = pause_on_violation
        self.checked = 0

    def wants_blocking(self, event: GuestEvent) -> bool:
        return isinstance(event, SyscallEvent)

    def audit(self, event: GuestEvent) -> None:
        if not isinstance(event, SyscallEvent):
            return
        info = self.hypertap.deriver.current_task_info(event.vcpu_index)
        if info is None:
            return
        self.checked += 1
        policy = self.policies.get(info.exe)
        if policy is None:
            if self.default_allow:
                return
            self._violation(info, event, reason="no policy for exe")
            return
        if event.number not in policy.allowed:
            self._violation(info, event, reason="syscall not in allow-list")

    def _violation(self, info, event: SyscallEvent, reason: str) -> None:
        self.raise_alert(
            "policy_violation",
            pid=info.pid,
            exe=info.exe,
            syscall=SYSCALL_NAMES.get(event.number, event.number),
            reason=reason,
        )
        if self.pause_on_violation:
            self.hypertap.pause_vm()

    @property
    def violations(self):
        return [a for a in self.alerts if a["kind"] == "policy_violation"]


class SyscallSequenceAnomalyDetector(Auditor):
    """Per-process n-gram anomaly detection over the syscall stream.

    During the learning window the detector records every n-gram each
    executable emits; afterwards, n-grams never seen for that
    executable raise anomalies.  This mirrors the classic sequence-IDS
    design, with the trace sourced from trapped hardware events rather
    than in-guest hooks.
    """

    name = "syscall-anomaly"
    subscriptions = {EventType.SYSCALL}

    def __init__(self, ngram: int = 3, learning_window_ns: int = 0) -> None:
        super().__init__()
        if ngram < 2:
            raise ValueError("ngram must be >= 2")
        self.ngram = ngram
        self.learning_window_ns = learning_window_ns
        self._profiles: Dict[str, Set[Tuple[int, ...]]] = defaultdict(set)
        self._recent: Dict[int, Deque[int]] = {}
        self._learning_until: Optional[int] = None
        self.anomalies_found = 0

    # ------------------------------------------------------------------
    def on_attach(self) -> None:
        if self.learning_window_ns > 0:
            self._learning_until = (
                self.hypertap.machine.clock.now + self.learning_window_ns
            )

    def finish_learning(self) -> None:
        """Switch from training to detection immediately."""
        self._learning_until = self.hypertap.machine.clock.now if self.hypertap else 0

    @property
    def learning(self) -> bool:
        if self._learning_until is None:
            return True  # learn forever unless told otherwise
        return self.hypertap.machine.clock.now < self._learning_until

    def profile_size(self, exe: str) -> int:
        return len(self._profiles.get(exe, ()))

    # ------------------------------------------------------------------
    def audit(self, event: GuestEvent) -> None:
        if not isinstance(event, SyscallEvent):
            return
        info = self.hypertap.deriver.current_task_info(event.vcpu_index)
        if info is None:
            return
        window = self._recent.get(info.pid)
        if window is None:
            window = deque(maxlen=self.ngram)
            self._recent[info.pid] = window
        window.append(event.number)
        if len(window) < self.ngram:
            return
        gram = tuple(window)
        profile = self._profiles[info.exe]
        if self.learning:
            profile.add(gram)
            return
        if gram not in profile:
            self.anomalies_found += 1
            self.raise_alert(
                "syscall_anomaly",
                pid=info.pid,
                exe=info.exe,
                ngram=tuple(SYSCALL_NAMES.get(n, n) for n in gram),
            )
            profile.add(gram)  # alert once per novel gram
