"""Multi-VM fan-out: per-VM streams, per-container health channels.

Two layers under test.  The EventMultiplexer must keep each VM's
stream private — consumers and ring buffers are keyed by vm_id, and
one VM's traffic must never reach another's consumers.  Above it, the
channel-aware RHC must flag the one VM whose auditing container has
gone silent (quarantined after an auditor crash) while the host-wide
pipeline — kept busy by the other VM — stays green, which the global
heartbeat alone cannot express.
"""

from __future__ import annotations

from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.harness import SharedHost, TestbedConfig
from repro.hw.exits import ExitReason, VMExit
from repro.hypervisor.event_multiplexer import EventMultiplexer
from repro.hypervisor.rhc import RemoteHealthChecker
from repro.sim.clock import SECOND
from repro.sim.engine import Engine


def exit_at(t_ns, reason=ExitReason.EPT_VIOLATION, vcpu=0):
    return VMExit(reason=reason, vcpu_index=vcpu, time_ns=t_ns)


ALL_TSS = frozenset({ExitReason.EPT_VIOLATION})


class Counter(Auditor):
    name = "counter"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        pass


class Crasher(Auditor):
    name = "crasher"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        raise RuntimeError("bug")


def busy(ctx):
    while True:
        yield ctx.compute(300_000)
        yield ctx.sys_write(1, 8)



class TestReasonIndex:
    """The per-(vm, reason) consumer index must be invisible except for
    speed: order, counters, and unregistration behave exactly as the
    linear interest scan did."""

    def test_same_reason_consumers_fire_in_registration_order(self):
        em = EventMultiplexer()
        order = []
        em.register_consumer("vm0", ALL_TSS, lambda v, e: order.append("first"))
        em.register_consumer(
            "vm0",
            frozenset({ExitReason.EPT_VIOLATION, ExitReason.VMCALL}),
            lambda v, e: order.append("second"),
        )
        em.register_consumer("vm0", ALL_TSS, lambda v, e: order.append("third"))
        em.submit("vm0", None, exit_at(1))
        assert order == ["first", "second", "third"]

    def test_delivered_counts_every_matching_consumer(self):
        em = EventMultiplexer()
        em.register_consumer("vm0", ALL_TSS, lambda v, e: None)
        em.register_consumer("vm0", ALL_TSS, lambda v, e: None)
        em.register_consumer(
            "vm0", frozenset({ExitReason.VMCALL}), lambda v, e: None
        )
        em.submit("vm0", None, exit_at(1))
        assert em.submitted == 1
        assert em.delivered == 2

    def test_interest_count_matches_index(self):
        em = EventMultiplexer()
        em.register_consumer("vm0", ALL_TSS, lambda v, e: None)
        em.register_consumer(
            "vm0",
            frozenset({ExitReason.EPT_VIOLATION, ExitReason.VMCALL}),
            lambda v, e: None,
        )
        assert em.interest_count("vm0", ExitReason.EPT_VIOLATION) == 2
        assert em.interest_count("vm0", ExitReason.VMCALL) == 1
        assert em.interest_count("vm0", ExitReason.IO_INSTRUCTION) == 0
        em.unregister_vm("vm0")
        assert em.interest_count("vm0", ExitReason.EPT_VIOLATION) == 0
        em.submit("vm0", None, exit_at(1))
        assert em.delivered == 0

# ======================================================================
# EventMultiplexer: no cross-VM leakage
# ======================================================================
class TestMultiplexerIsolation:
    def test_consumers_only_see_their_vm(self):
        em = EventMultiplexer()
        seen = {"vm0": [], "vm1": []}
        em.register_consumer("vm0", ALL_TSS, lambda v, e: seen["vm0"].append(e))
        em.register_consumer("vm1", ALL_TSS, lambda v, e: seen["vm1"].append(e))
        for i in range(5):
            em.submit("vm0", None, exit_at(i))
        em.submit("vm1", None, exit_at(99))
        assert len(seen["vm0"]) == 5
        assert len(seen["vm1"]) == 1
        assert all(e.time_ns < 99 for e in seen["vm0"])

    def test_rings_are_per_vm(self):
        em = EventMultiplexer(ring_capacity=8)
        em.submit("vm0", None, exit_at(1))
        em.submit("vm1", None, exit_at(2))
        assert [e.time_ns for e in em.recent_events("vm0")] == [1]
        assert [e.time_ns for e in em.recent_events("vm1")] == [2]
        assert em.recent_events("vm2") == []

    def test_unregister_stops_delivery_for_that_vm_only(self):
        em = EventMultiplexer()
        seen = {"vm0": 0, "vm1": 0}

        def count(vm):
            def consumer(vcpu, exit_event):
                seen[vm] += 1
            return consumer

        em.register_consumer("vm0", ALL_TSS, count("vm0"))
        em.register_consumer("vm1", ALL_TSS, count("vm1"))
        em.unregister_vm("vm0")
        em.submit("vm0", None, exit_at(1))
        em.submit("vm1", None, exit_at(2))
        assert seen == {"vm0": 0, "vm1": 1}

    def test_uninterested_reasons_are_not_delivered(self):
        em = EventMultiplexer()
        hits = []
        em.register_consumer("vm0", ALL_TSS, lambda v, e: hits.append(e))
        em.submit("vm0", None, exit_at(1, reason=ExitReason.IO_INSTRUCTION))
        assert hits == []
        assert em.submitted == 1 and em.delivered == 0

    def test_full_stack_streams_do_not_cross(self):
        host = SharedHost(
            num_vms=2, base_config=TestbedConfig(seed=31)
        ).boot_all()
        counters = [Counter(), Counter()]
        host.monitor(0, [counters[0]])
        host.monitor(1, [counters[1]])
        # Load only vm0; vm1 idles (its idle loop still switches, so
        # compare magnitudes rather than demanding zero).
        host.vms[0].kernel.spawn_process(busy, "b", uid=1000)
        host.run_s(2.0)
        vm0_events = sum(counters[0].events_seen.values())
        vm1_events = sum(counters[1].events_seen.values())
        assert vm0_events > vm1_events


# ======================================================================
# Channel-aware RHC: one stalled container, the other VM stays live
# ======================================================================
class TestChannelAwareRhc:
    def test_stalled_channel_flagged_while_pipeline_green(self):
        engine = Engine()
        rhc = RemoteHealthChecker(engine, timeout_ns=3 * SECOND)
        rhc.watch("vm0")
        rhc.watch("vm1")
        rhc.start()

        def beat_vm0_only():
            rhc.heartbeat(engine.clock.now, channel="vm0")
            engine.schedule(SECOND // 2, beat_vm0_only)

        beat_vm0_only()
        engine.run_for(10 * SECOND)
        assert rhc.stalled_channels == {"vm1"}
        assert not rhc.alarmed  # the pipeline as a whole is alive
        assert [c for _, c in rhc.channel_alerts] == ["vm1"]

    def test_resumed_heartbeat_clears_the_channel(self):
        engine = Engine()
        rhc = RemoteHealthChecker(engine, timeout_ns=2 * SECOND)
        rhc.watch("vm0")
        rhc.start()
        engine.run_for(5 * SECOND)
        assert rhc.stalled_channels == {"vm0"}
        rhc.heartbeat(engine.clock.now, channel="vm0")
        assert rhc.stalled_channels == set()

    def test_quarantined_container_goes_silent_other_vm_stays_live(self):
        host = SharedHost(
            num_vms=2,
            base_config=TestbedConfig(seed=3, rhc_timeout_s=3),
            with_rhc=True,
        ).boot_all()
        host.monitor(0, [Counter()])
        host.monitor(1, [Crasher()])
        for vm in host.vms:
            vm.kernel.spawn_process(busy, "b", uid=1000)
        host.run_s(8.0)
        # vm1's container crashed on its first delivery and went
        # silent; vm0's container kept beating its channel.
        assert host.vms[1].hypertap.container.failed
        assert not host.vms[0].hypertap.container.failed
        assert host.rhc.stalled_channels == {"vm1"}
        # The host-wide pipeline never alarmed: vm0 kept it busy.
        assert not host.rhc.alarmed
        assert sum(host.vms[0].hypertap.container.delivered for _ in (0,)) > 0
