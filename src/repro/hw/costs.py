"""Timing calibration for the simulated machine.

Every duration the simulation charges is defined here, in one table,
so the relationship between the paper's measurements and ours is
auditable.  The constants are calibrated to early-2010s hardware (the
paper used an Intel i5 3.07 GHz host and a Core2 Duo E8400):

* a VM Exit/Entry roundtrip costs on the order of a microsecond,
* a Linux context switch costs a handful of microseconds,
* a trivial system call costs a few microseconds,
* disk operations cost hundreds of microseconds.

The *percent overheads* of Fig 7 are emergent: monitors add exits and
forwarding work, and the ratio of that work to the baseline op cost is
what produces the reported bands (syscall-heavy ~19%, context-switch
~10%, disk <5%, CPU <2%).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class CostModel:
    """All simulated durations, in nanoseconds."""

    # --- virtualization hardware -------------------------------------
    #: VM Exit + VM Entry roundtrip (world switch both ways).
    vm_exit_roundtrip_ns: int = 1_100
    #: Hypervisor-side work to decode and emulate a trapped operation.
    exit_emulation_ns: int = 250
    #: Event Forwarder cost per forwarded event (the "<100 LoC" patch).
    ef_forward_ns: int = 150
    #: Event Multiplexer enqueue cost (non-blocking path).
    em_enqueue_ns: int = 80
    #: Extra cost when an auditor requests blocking (synchronous) audit.
    blocking_audit_ns: int = 350

    # --- guest kernel primitives --------------------------------------
    #: Full process context switch (save/restore, runqueue bookkeeping).
    context_switch_ns: int = 30_000
    #: Thread switch within the same address space (no CR3 reload).
    thread_switch_ns: int = 25_000
    #: Syscall entry/exit + dispatch, excluding handler body.
    syscall_dispatch_ns: int = 5_000
    #: Body of a trivial syscall (getpid-class).
    syscall_trivial_body_ns: int = 1_500
    #: Cost of one scheduler tick handler.
    timer_tick_handler_ns: int = 2_000
    #: Acquiring / releasing an uncontended spinlock.
    spinlock_op_ns: int = 120
    #: One iteration of a spin-wait loop on a contended lock.
    spin_poll_ns: int = 12_000
    #: Page-table maintenance when creating/destroying a process.
    mm_setup_ns: int = 55_000
    #: fork() kernel work besides mm setup.
    fork_ns: int = 80_000
    #: Reading one /proc entry (seq_file formatting).
    procfs_read_ns: int = 6_500

    # --- devices -------------------------------------------------------
    #: One 4 KiB block transferred to/from the (cached) virtual disk.
    disk_block_ns: int = 140_000
    #: Console byte write.
    console_write_ns: int = 1_500
    #: NIC packet send/receive handling.
    net_packet_ns: int = 18_000
    #: Interrupt delivery cost inside the guest (IRQ entry/exit).
    irq_delivery_ns: int = 1_800

    # --- scheduling ------------------------------------------------------
    #: Local APIC timer period (Linux HZ=250 -> 4 ms).
    timer_period_ns: int = 4_000_000
    #: Default scheduler timeslice.
    timeslice_ns: int = 6_000_000
    #: Housekeeping kernel-thread wakeup period.  This bounds the longest
    #: context-switch-free interval on a healthy vCPU (the paper profiled
    #: a 2 s maximum and set the GOSHD threshold to twice that).
    housekeeping_period_ns: int = 1_000_000_000


#: Default, shared cost model instance.  Experiments that want to ablate
#: timing assumptions construct their own CostModel.
DEFAULT_COSTS = CostModel()
