"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
prints it (uncaptured) so `pytest benchmarks/ --benchmark-only` leaves
a readable report.  Scale knobs:

* default        — CI-friendly subset (minutes, shape-preserving)
* REPRO_SCALE=N  — multiply trial counts by N (float)
* REPRO_FULL=1   — paper-scale grids (hours)
"""

from __future__ import annotations

import os

SCALE = float(os.environ.get("REPRO_SCALE", "1.0"))
FULL = os.environ.get("REPRO_FULL", "") == "1"


def scaled(n: int, minimum: int = 1) -> int:
    """Apply the scale factor to a trial count."""
    return max(minimum, int(round(n * SCALE)))


# ----------------------------------------------------------------------
# The Fig 4 / Fig 5 campaign is expensive; run it once per session and
# share the summary between both benchmarks.
# ----------------------------------------------------------------------
_campaign_cache = {}


def get_campaign_summary():
    """Run (once) the scaled §VIII-A fault-injection campaign."""
    if "summary" in _campaign_cache:
        return _campaign_cache["summary"]

    from repro.faults.campaign import TrialConfig, run_campaign
    from repro.faults.injector import InjectionMode
    from repro.faults.sites import build_site_catalog
    from repro.sim.clock import SECOND

    catalog = build_site_catalog()
    if FULL:
        sites = catalog  # all 374 locations
        seeds = (0, 1, 2)  # 3 repetitions, like the paper's 17,952
        workloads = ("hanoi", "make-j1", "make-j2", "http")
        preempts = (False, True)
    else:
        # Stratified subset: every function and fault class appears.
        first_pass = [s for s in catalog if s.activation_pass == 1]
        sites = first_pass[:: max(1, len(first_pass) // scaled(8))][: scaled(8)]
        seeds = (0,)
        workloads = ("hanoi", "make-j1", "make-j2", "http")
        preempts = (False, True)

    summary = run_campaign(
        sites,
        workloads=workloads,
        modes=(InjectionMode.TRANSIENT, InjectionMode.PERSISTENT),
        preempt_options=preempts,
        seeds=seeds,
        base_config=TrialConfig(
            warmup_ns=1 * SECOND,
            detect_window_ns=12 * SECOND,
            classify_window_ns=20 * SECOND,
        ),
    )
    _campaign_cache["summary"] = summary
    return summary
