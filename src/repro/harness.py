"""Testbed assembly: one call builds the whole stack.

Most consumers (tests, benchmarks, examples) want "a booted 2-vCPU VM
with KVM attached and optionally HyperTap monitoring".  This module
provides that in one place so experiment code stays about experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.auditor import Auditor
from repro.core.hypertap import HyperTap
from repro.guest.kernel import GuestKernel, KernelConfig
from repro.hw.costs import CostModel
from repro.hw.machine import Machine, MachineConfig
from repro.hypervisor.event_multiplexer import EventMultiplexer
from repro.hypervisor.kvm import KvmHypervisor
from repro.hypervisor.rhc import RemoteHealthChecker
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import MILLISECOND, SECOND
from repro.sim.engine import Engine
from repro.sim.perturb import SchedulePerturbation


@dataclass
class TestbedConfig:
    """Shape of the whole simulated deployment."""

    __test__ = False  # not a pytest class, despite the name

    num_vcpus: int = 2
    ram_bytes: int = 1024 * 1024 * 1024
    seed: int = 0
    preemptible: bool = False
    syscall_mechanism: str = "sysenter"
    costs: CostModel = field(default_factory=CostModel)
    with_rhc: bool = False
    rhc_timeout_s: int = 5
    monitoring_mode: str = "unified"
    #: Optional seeded schedule perturbation (repro.sim.perturb) —
    #: jittered timeslices / same-instant shuffles for adversarial
    #: conformance runs.  None keeps the engine's documented ordering.
    perturb: Optional[SchedulePerturbation] = None


class Testbed:
    """A booted VM with hypervisor, EM, and (optionally) HyperTap."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(self, config: Optional[TestbedConfig] = None) -> None:
        self.config = config if config is not None else TestbedConfig()
        self.engine = Engine(schedule_policy=self.config.perturb)
        self.machine = Machine(
            MachineConfig(
                num_vcpus=self.config.num_vcpus,
                ram_bytes=self.config.ram_bytes,
                seed=self.config.seed,
                costs=self.config.costs,
            ),
            engine=self.engine,
        )
        #: One observability registry for the whole deployment: the
        #: hypervisor, the EM, the channels and the auditors all count
        #: into it (see repro.obs).
        self.metrics = MetricsRegistry()
        self.kvm = KvmHypervisor(self.machine, vm_id="vm0", metrics=self.metrics)
        self.rhc: Optional[RemoteHealthChecker] = None
        if self.config.with_rhc:
            self.rhc = RemoteHealthChecker(
                self.engine, timeout_ns=self.config.rhc_timeout_s * SECOND
            )
        self.multiplexer = EventMultiplexer(rhc=self.rhc, metrics=self.metrics)
        self.kernel = GuestKernel(
            self.machine,
            KernelConfig(
                preemptible=self.config.preemptible,
                syscall_mechanism=self.config.syscall_mechanism,
            ),
        )
        self.hypertap: Optional[HyperTap] = None

    # ------------------------------------------------------------------
    def boot(self) -> "Testbed":
        self.kernel.boot()
        if self.rhc is not None:
            self.rhc.start()
        return self

    def monitor(self, auditors: List[Auditor]) -> HyperTap:
        """Attach HyperTap with the given auditors."""
        self.hypertap = HyperTap(
            self.machine,
            self.kvm,
            multiplexer=self.multiplexer,
            vm_id="vm0",
            mode=self.config.monitoring_mode,
        )
        for auditor in auditors:
            self.hypertap.register_auditor(auditor)
        self.hypertap.attach()
        if self.rhc is not None:
            # Silent-stall detection: heartbeats alone cannot tell a
            # healthy pipeline from one whose event flow flatlined
            # while something else keeps the heartbeat alive; watching
            # the EM's submission counter can.
            registry = self.metrics
            self.rhc.watch_flow(
                "vm0.em.submitted",
                lambda: registry.total("em.submitted", vm="vm0"),
            )
        return self.hypertap

    # ------------------------------------------------------------------
    def run_ms(self, ms: int) -> None:
        self.engine.run_for(ms * MILLISECOND)

    def run_s(self, seconds: float) -> None:
        self.engine.run_for(int(seconds * SECOND))

    @property
    def now_s(self) -> float:
        return self.engine.clock.now / SECOND


def build_testbed(
    auditors: Optional[List[Auditor]] = None, **kwargs
) -> Testbed:
    """Convenience: configured, booted, optionally monitored testbed.

    Keyword arguments map to :class:`TestbedConfig` fields.
    """
    testbed = Testbed(TestbedConfig(**kwargs))
    testbed.boot()
    if auditors:
        testbed.monitor(auditors)
    return testbed


class VmInstance:
    """One guest VM on a shared host (see :class:`SharedHost`)."""

    def __init__(self, vm_id, machine, kvm, kernel):
        self.vm_id = vm_id
        self.machine = machine
        self.kvm = kvm
        self.kernel = kernel
        self.hypertap: Optional[HyperTap] = None


class SharedHost:
    """Fig 2's deployment: several user VMs on one physical host, one
    Event Multiplexer fanning events out to per-VM auditing containers,
    and one Remote Health Checker watching the whole pipeline.

    All VMs share a single simulation engine (one physical timeline).
    """

    def __init__(
        self,
        num_vms: int = 2,
        base_config: Optional[TestbedConfig] = None,
        with_rhc: bool = False,
    ) -> None:
        self.config = base_config if base_config is not None else TestbedConfig()
        self.engine = Engine()
        self.metrics = MetricsRegistry()
        self.rhc: Optional[RemoteHealthChecker] = None
        if with_rhc or self.config.with_rhc:
            self.rhc = RemoteHealthChecker(
                self.engine, timeout_ns=self.config.rhc_timeout_s * SECOND
            )
        self.multiplexer = EventMultiplexer(rhc=self.rhc, metrics=self.metrics)
        self.vms: List[VmInstance] = []
        for index in range(num_vms):
            machine = Machine(
                MachineConfig(
                    num_vcpus=self.config.num_vcpus,
                    ram_bytes=self.config.ram_bytes,
                    seed=self.config.seed + index,
                    costs=self.config.costs,
                ),
                engine=self.engine,
            )
            vm_id = f"vm{index}"
            kvm = KvmHypervisor(machine, vm_id=vm_id, metrics=self.metrics)
            kernel = GuestKernel(
                machine,
                KernelConfig(
                    preemptible=self.config.preemptible,
                    syscall_mechanism=self.config.syscall_mechanism,
                ),
            )
            self.vms.append(VmInstance(vm_id, machine, kvm, kernel))

    def boot_all(self) -> "SharedHost":
        for vm in self.vms:
            vm.kernel.boot()
        if self.rhc is not None:
            self.rhc.start()
        return self

    def monitor(self, vm_index: int, auditors: List[Auditor]) -> HyperTap:
        """Attach HyperTap to one VM; its auditors get their own
        container but share the host-wide EM."""
        vm = self.vms[vm_index]
        vm.hypertap = HyperTap(
            vm.machine,
            vm.kvm,
            multiplexer=self.multiplexer,
            vm_id=vm.vm_id,
        )
        for auditor in auditors:
            vm.hypertap.register_auditor(auditor)
        vm.hypertap.attach()
        if self.rhc is not None:
            # Per-container heartbeat channel: a quarantined container
            # is flagged by name while the other VMs' pipelines stay
            # green (the host-wide heartbeat alone cannot tell).
            self.rhc.watch(vm.vm_id)
            vm.hypertap.container.liveness = self.rhc
            # And the silent-stall probe: this VM's event flow must
            # keep moving while the host-wide heartbeat does.
            registry = self.metrics
            vm_id = vm.vm_id
            self.rhc.watch_flow(
                f"{vm_id}.em.submitted",
                lambda: registry.total("em.submitted", vm=vm_id),
            )
        return vm.hypertap

    def run_s(self, seconds: float) -> None:
        self.engine.run_for(int(seconds * SECOND))
