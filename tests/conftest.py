"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.harness import Testbed, TestbedConfig


@pytest.fixture
def testbed() -> Testbed:
    """A booted 2-vCPU VM (the paper's default guest shape)."""
    tb = Testbed(TestbedConfig(num_vcpus=2, seed=42))
    tb.boot()
    return tb


@pytest.fixture
def testbed_1cpu() -> Testbed:
    tb = Testbed(TestbedConfig(num_vcpus=1, seed=42))
    tb.boot()
    return tb


def spin_forever(ctx):
    """A guest program that burns CPU forever (test helper)."""
    while True:
        yield ctx.compute(500_000)


def chatty_worker(ctx):
    """Computes and writes in a loop (drives syscall + tty paths)."""
    while True:
        yield ctx.compute(300_000)
        yield ctx.sys_write(1, 64)


@pytest.fixture
def spawn_spinner(testbed):
    def _spawn(name: str = "spinner", uid: int = 1000, **kwargs):
        return testbed.kernel.spawn_process(
            spin_forever, name, uid=uid, exe=f"/bin/{name}", **kwargs
        )

    return _spawn
