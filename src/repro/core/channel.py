"""The unified logging channel.

One channel per VM owns the interception algorithms and the auditor
subscription list.  It registers with the Event Multiplexer for the
union of exit reasons its interceptors need — so an exit is trapped,
forwarded and processed once no matter how many auditors consume the
derived events.  That sharing is the paper's core performance claim
(Fig 7: combined overhead ~= slowest individual, not the sum).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.core.auditor import Auditor
from repro.core.events import EventType, GuestEvent, REQUIRED_EXIT_REASONS
from repro.core.interception import (
    FastSyscallInterceptor,
    FineGrainedTracer,
    Int80SyscallInterceptor,
    Interceptor,
    IOInterceptor,
    ProcessSwitchInterceptor,
    RawExitInterceptor,
    ThreadSwitchInterceptor,
    TssIntegrityChecker,
)
from repro.hw.cpu import VCPU
from repro.hw.exits import VMExit
from repro.hw.machine import Machine
from repro.hypervisor.containers import AuditingContainer


class UnifiedChannel:
    """Shared logging channel for one VM."""

    def __init__(self, machine: Machine, vm_id: str) -> None:
        self.machine = machine
        self.vm_id = vm_id
        self.interceptors: List[Interceptor] = []
        #: (auditor, container) pairs subscribed to derived events.
        self._subscribers: List[Tuple[Auditor, AuditingContainer]] = []
        self.events_published: Counter = Counter()
        # Named handles for interceptors auditors may query directly.
        self.process_switches: Optional[ProcessSwitchInterceptor] = None
        self.thread_switches: Optional[ThreadSwitchInterceptor] = None
        self.tss_integrity: Optional[TssIntegrityChecker] = None
        self.fast_syscalls: Optional[FastSyscallInterceptor] = None
        self.int80_syscalls: Optional[Int80SyscallInterceptor] = None
        self.io: Optional[IOInterceptor] = None
        self.tracer: Optional[FineGrainedTracer] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build_for_event_types(self, needed: set) -> None:
        """Instantiate interceptors for the requested event types."""
        if EventType.PROCESS_SWITCH in needed or EventType.THREAD_SWITCH in needed:
            self.process_switches = ProcessSwitchInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.process_switches)
        if EventType.THREAD_SWITCH in needed:
            self.thread_switches = ThreadSwitchInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.thread_switches)
        if EventType.SYSCALL in needed:
            self.fast_syscalls = FastSyscallInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.int80_syscalls = Int80SyscallInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.fast_syscalls)
            self.interceptors.append(self.int80_syscalls)
        if EventType.IO in needed:
            self.io = IOInterceptor(self.machine, self.vm_id, self.publish)
            self.interceptors.append(self.io)
        if EventType.MEM_ACCESS in needed:
            self.tracer = FineGrainedTracer(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.tracer)
        if EventType.TSS_INTEGRITY in needed:
            self.tss_integrity = TssIntegrityChecker(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.tss_integrity)
        if EventType.RAW_EXIT in needed:
            self.interceptors.append(
                RawExitInterceptor(self.machine, self.vm_id, self.publish)
            )

    def enable_all(self) -> None:
        for interceptor in self.interceptors:
            interceptor.enable()

    def disable_all(self) -> None:
        for interceptor in self.interceptors:
            interceptor.disable()

    @property
    def exit_reasons(self) -> frozenset:
        """Union of exit reasons the interceptor set needs."""
        union = frozenset()
        for interceptor in self.interceptors:
            union |= interceptor.reasons
        return union

    # ------------------------------------------------------------------
    # Subscription and delivery
    # ------------------------------------------------------------------
    def subscribe(self, auditor: Auditor, container: AuditingContainer) -> None:
        self._subscribers.append((auditor, container))

    def on_exit(self, vcpu: VCPU, exit_event: VMExit) -> None:
        """EM consumer entry point: raw exit -> interception -> events."""
        self._current_vcpu = vcpu
        for interceptor in self.interceptors:
            if exit_event.reason in interceptor.reasons:
                interceptor.on_exit(vcpu, exit_event)

    def publish(self, event: GuestEvent) -> None:
        """Deliver a derived event to every subscribed auditor."""
        self.events_published[event.type] += 1
        for auditor, container in self._subscribers:
            if event.type in auditor.subscriptions:
                if auditor.blocking and auditor.wants_blocking(event):
                    vcpu = getattr(self, "_current_vcpu", None)
                    if vcpu is not None:
                        vcpu.charge(self.machine.costs.blocking_audit_ns)
                container.deliver(auditor, event)
