"""Seeded emulator bugs: ground truth for the hut mutation-kill audit.

A fuzzer whose oracles never fire is indistinguishable from one whose
oracles can't fire.  Each entry here is a small, realistic emulator
defect — the kind of bug the differential is *for* — injected into one
harness instance (never globally monkey-patched: the patches bind to
the instance's own objects, so parallel shards and the pytest suite
never see each other's bugs).  ``tests/test_hut_fuzzer.py`` asserts
that ``hut-fuzz`` on the bug's designated target detects every one of
these within a fixed budget, and the shipped ``tests/corpus/hut-*``
entries replay shrunk witnesses against re-injected bugs.

The injection point is the ``bug`` callback of
:class:`~repro.testing.hut.harness.HutHarness`, which runs after setup
and before the first op.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.hw.exits import MemAccess
from repro.testing.hut.harness import HutHarness

_U32 = 0xFFFF_FFFF


def _bug_ept_exec_bypass(harness: HutHarness) -> None:
    """Execute-permission checks silently pass (missed NX violation).

    The exact failure HyperTap's SYSENTER interception cannot afford:
    an execute-protected page that doesn't trap is an invisible guest.
    """
    ept = harness.machine.ept
    original = ept.translate

    def translate(gpa: int, access: MemAccess) -> int:
        if access is MemAccess.EXECUTE:
            return ept.translate_nofault(gpa)
        return original(gpa, access)

    ept.translate = translate


def _bug_ept_remap_noop(harness: HutHarness) -> None:
    """``remap`` validates its arguments but never updates the entry."""
    ept = harness.machine.ept
    from repro.errors import SimulationError

    def remap(gpa: int, hfn: int) -> None:
        if hfn < 0:
            raise SimulationError("negative host frame")

    ept.remap = remap


def _bug_msr_truncate(harness: HutHarness) -> None:
    """MSR writes truncate to 32 bits (a classic width bug)."""
    for vcpu in harness.machine.vcpus:
        msrs = vcpu.msrs
        original = msrs.host_write

        def host_write(index: int, value: int, _orig=original) -> None:
            _orig(index, int(value) & _U32)

        msrs.host_write = host_write


def _bug_ef_miscount(harness: HutHarness) -> None:
    """The Event Forwarder drops every other WRMSR event but still
    counts it as forwarded — conservation holds, delivery doesn't."""
    ef = harness.ef
    original = ef.on_vm_exit
    state = {"n": 0}

    def on_vm_exit(vm_id, vcpu, exit_event):
        from repro.hw.exits import ExitReason

        if exit_event.reason is ExitReason.WRMSR:
            state["n"] += 1
            if state["n"] % 2 == 0:
                ef.forwarded += 1  # claimed, never submitted
                return
        original(vm_id, vcpu, exit_event)

    ef.on_vm_exit = on_vm_exit


def _bug_vmcs_unrecorded(harness: HutHarness) -> None:
    """Exits stop being recorded in the VMCS (stale last_exit/count)."""
    for vcpu in harness.machine.vcpus:
        vcpu.vmcs.record_exit = lambda exit_event: None


def _bug_shared_msr_file(harness: HutHarness) -> None:
    """All vCPUs share vCPU 0's MSR file — per-vCPU state bleeding
    across, the archetypal interleaving-dependent defect: the final
    value of each MSR depends on which vCPU wrote last."""
    shared = harness.machine.vcpus[0].msrs
    for vcpu in harness.machine.vcpus[1:]:
        vcpu.msrs = shared


#: name -> injector.
SEEDED_BUGS: Dict[str, Callable[[HutHarness], None]] = {
    "ept-exec-bypass": _bug_ept_exec_bypass,
    "ept-remap-noop": _bug_ept_remap_noop,
    "msr-truncate": _bug_msr_truncate,
    "ef-miscount": _bug_ef_miscount,
    "vmcs-unrecorded": _bug_vmcs_unrecorded,
    "shared-msr-file": _bug_shared_msr_file,
}

#: The target whose op mix reliably reaches each bug (the kill audit
#: runs ``hut-fuzz`` here with a small fixed budget).
BUG_TARGETS: Dict[str, str] = {
    "ept-exec-bypass": "ept",
    "ept-remap-noop": "ept",
    "msr-truncate": "msr",
    "ef-miscount": "msr",
    "vmcs-unrecorded": "dispatch",
    "shared-msr-file": "interleave",
}
