"""The repro.obs reproducibility contract: byte-identical exports
live vs replayed, at any job count, and against the committed golden
snapshot — plus the CLI surfaces fuzz triage keys on."""

from __future__ import annotations

import os

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.sites import FaultClass, build_site_catalog
from repro.faults.injector import InjectionMode
from repro.faults.campaign import TrialConfig
from repro.obs.__main__ import main as obs_main
from repro.obs.report import (
    collect_live,
    collect_replay,
    collect_seeds,
    export_lines,
    export_text,
)
from repro.replay.recorder import record_scenario
from repro.sim.clock import SECOND
from repro.testing.fuzzer import FuzzConfig, fuzz

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TRACE = os.path.join(DATA_DIR, "golden_exploit.jsonl")
GOLDEN_OBS = os.path.join(DATA_DIR, "golden_exploit_obs.jsonl")


class TestLiveVsReplay:
    @pytest.mark.parametrize("scenario", ["exploit", "rootkit"])
    def test_pipeline_scope_is_byte_identical(self, scenario):
        run = record_scenario(scenario, seed=0)
        live = export_lines(run.metrics)
        replay = export_lines(collect_replay(run.trace))
        assert live == replay

    def test_live_export_contains_verdict_accounting(self):
        lines = export_text(collect_live("exploit", seed=0))
        assert '"verdicts"' in lines
        assert '"latency.exit_to_verdict_ns"' in lines
        assert '"kind": "span"' in lines

    def test_host_scope_only_exists_live(self):
        run = record_scenario("exploit", seed=0)
        live_host = export_lines(run.metrics, scope="host")
        replay_host = export_lines(collect_replay(run.trace), scope="host")
        assert any('"exits"' in line for line in live_host)
        assert not any('"exits"' in line for line in replay_host)


class TestJobCountInvariance:
    def test_seed_fanout_identical_at_1_2_8_jobs(self):
        exports = [
            export_lines(
                collect_seeds("exploit", [0, 1, 2, 3], jobs=jobs)
            )
            for jobs in (1, 2, 8)
        ]
        assert exports[0] == exports[1] == exports[2]

    def test_campaign_metrics_identical_serial_vs_parallel(self):
        sites = [
            s
            for s in build_site_catalog()
            if s.function == "tty_write"
            and s.fault_class is FaultClass.MISSING_RELEASE
        ][:1]
        kwargs = dict(
            workloads=("hanoi",),
            modes=(InjectionMode.TRANSIENT,),
            preempt_options=(False, True),
            seeds=(0,),
            base_config=TrialConfig(
                warmup_ns=1 * SECOND,
                detect_window_ns=6 * SECOND,
                classify_window_ns=8 * SECOND,
            ),
        )
        serial = run_campaign(sites, jobs=1, **kwargs)
        fanned = run_campaign(sites, jobs=2, **kwargs)
        a = export_lines(serial.merged_metrics().snapshot(), scope="all")
        b = export_lines(fanned.merged_metrics().snapshot(), scope="all")
        assert a == b
        assert any('"exits"' in line for line in a)

    def test_fuzz_campaign_metrics_are_reproducible(self):
        config = FuzzConfig(scenario="exploit", seed=5, budget=3)
        first = fuzz(config)
        second = fuzz(config)
        assert first.metrics == second.metrics
        assert export_lines(first.metrics)  # non-empty pipeline scope


class TestGoldenSnapshot:
    def test_golden_trace_reproduces_committed_obs_export(self):
        # The CI obs-smoke step runs this same comparison from the
        # command line; regenerate with
        #   python -m repro.obs report tests/data/golden_exploit.jsonl
        with open(GOLDEN_OBS, "r", encoding="utf-8") as fh:
            committed = fh.read().splitlines()
        from repro.obs.report import collect_trace

        fresh = export_lines(collect_trace(GOLDEN_TRACE))
        assert fresh == committed


class TestCli:
    def test_report_trace_then_diff_identical(self, tmp_path, capsys):
        assert obs_main(["report", GOLDEN_TRACE]) == 0
        out = capsys.readouterr().out
        export = tmp_path / "a.jsonl"
        export.write_text(out, encoding="utf-8")
        assert obs_main(["diff", str(export), GOLDEN_OBS]) == 0
        assert "identical" in capsys.readouterr().out

    def test_diff_nonidentical_exits_1(self, tmp_path, capsys):
        with open(GOLDEN_OBS, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        mutated = tmp_path / "b.jsonl"
        mutated.write_text(
            "\n".join(lines[:-1]) + "\n", encoding="utf-8"
        )
        assert obs_main(["diff", GOLDEN_OBS, str(mutated)]) == 1
        assert "only in A" in capsys.readouterr().out

    def test_report_without_source_is_usage_error(self, capsys):
        assert obs_main(["report"]) == 2
        assert "trace path or --scenario" in capsys.readouterr().err

    def test_bad_input_is_graceful_exit_2(self, tmp_path, capsys):
        # Same contract as python -m repro.replay: bad input must give
        # a one-line error and exit 2, never a traceback.
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json\n", encoding="utf-8")
        assert obs_main(["diff", GOLDEN_OBS, str(garbage)]) == 2
        assert "error:" in capsys.readouterr().err
        assert obs_main(["top", str(tmp_path / "missing.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_top_renders_largest_counters(self, capsys):
        assert obs_main(["top", GOLDEN_OBS, "-n", "3"]) == 0
        out = capsys.readouterr().out.strip().splitlines()
        assert len(out) == 3
        assert "flow.published" in "".join(out)

    def test_report_scenario_live_equals_replay(self, capsys):
        assert obs_main(
            ["report", "--scenario", "exploit", "--source", "live"]
        ) == 0
        live = capsys.readouterr().out
        assert obs_main(
            ["report", "--scenario", "exploit", "--source", "replay"]
        ) == 0
        assert live == capsys.readouterr().out
