"""HyperTap reproduction.

Reproduction of "Reliability and Security Monitoring of Virtual
Machines Using Hardware Architectural Invariants" (Pham, Estrada, Cao,
Kalbarczyk, Iyer — DSN 2014) on a simulated hardware-assisted
virtualization substrate.

Public entry points:

* :func:`repro.harness.build_testbed` — one-call assembly of machine,
  hypervisor, guest kernel and monitoring.
* :class:`repro.core.HyperTap` — the monitoring framework.
* :mod:`repro.auditors` — GOSHD, HRKD and the three Ninjas.
* :mod:`repro.faults` — the hang fault-injection campaign of §VIII-A.
* :mod:`repro.attacks` — the rootkit zoo and privilege-escalation
  attack strategies of §VIII-B/C.
* :mod:`repro.workloads` — hanoi / make / HTTP / UnixBench-like loads.
"""

from repro.harness import Testbed, TestbedConfig, build_testbed

__version__ = "1.0.0"

__all__ = ["Testbed", "TestbedConfig", "build_testbed", "__version__"]
