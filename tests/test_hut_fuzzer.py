"""hut-fuzz campaign contracts: determinism, bug kill, shrink.

Three acceptance properties of the turned-around fuzzer:

* **byte reproducibility** — the same ``(target, seed, budget)`` names
  the same campaign report, at any job count (sharding is fixed at
  ``HUT_SHARDS``, never derived from ``jobs``);
* **mutation kill** — every seeded emulator bug is detected by its
  designated target within a small fixed budget (the audit that the
  oracle actually has teeth);
* **shrink** — ``shrink_finding`` reduces a witness deterministically
  and its predicate rejects non-reproducing op subsets.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.testing.hut import (
    BUG_TARGETS,
    HutFindingPredicate,
    HutFuzzConfig,
    SEEDED_BUGS,
    TARGETS,
    fuzz_hut,
    generate_program,
    run_candidate,
    shrink_finding,
)
from repro.testing.hut.mutators import MUTATORS, mutate_program


def _report_json(result) -> str:
    return json.dumps(result.report(), sort_keys=True)


@pytest.mark.parametrize("target", TARGETS)
def test_campaign_byte_reproducible(target):
    config = HutFuzzConfig(target=target, seed=13, budget=10, length=24)
    first = fuzz_hut(config)
    second = fuzz_hut(config)
    assert _report_json(first) == _report_json(second)


def test_campaign_identical_at_jobs_1_and_2():
    config = HutFuzzConfig(target="ept", seed=13, budget=12, length=24)
    serial = fuzz_hut(config, jobs=1)
    parallel = fuzz_hut(config, jobs=2)
    assert _report_json(serial) == _report_json(parallel)
    assert serial.executions == 12


@pytest.mark.parametrize("target", TARGETS)
def test_clean_campaign_is_silent(target):
    # No false positives: a bug-free emulator never diverges from the
    # reference, never trips self-consistency, never crashes.
    result = fuzz_hut(
        HutFuzzConfig(target=target, seed=3, budget=12, length=32)
    )
    assert result.findings == []
    assert result.crashes == 0
    assert len(result.coverage) > 0


@pytest.mark.parametrize(
    "bug,target", sorted(BUG_TARGETS.items()), ids=sorted(BUG_TARGETS)
)
def test_every_seeded_bug_is_killed(bug, target):
    # The mutation-kill audit: budget and seed are fixed, so a detector
    # regression shows up as a deterministic test failure, not flake.
    result = fuzz_hut(
        HutFuzzConfig(target=target, seed=1, budget=20, length=48, bug=bug)
    )
    assert result.findings, f"seeded bug {bug!r} survived {target} campaign"


def test_bug_targets_cover_all_seeded_bugs():
    assert sorted(BUG_TARGETS) == sorted(SEEDED_BUGS)
    assert set(BUG_TARGETS.values()) <= set(TARGETS)


def test_config_rejects_unknown_target_and_bug():
    with pytest.raises(ValueError):
        HutFuzzConfig(target="gpu", seed=1)
    with pytest.raises(ValueError):
        HutFuzzConfig(target="ept", seed=1, bug="no-such-bug")


def test_every_mutator_class_applies():
    # Each mutator must actually fire on at least one target's programs
    # — a silently dead mutator class would shrink the search space
    # without failing any test.
    applied = set()
    rng = random.Random(7)
    for target in TARGETS:
        program = generate_program(target, 5, length=32)
        for _ in range(40):
            _mutated, names = mutate_program(program, rng, n_mutations=2)
            applied.update(names)
    assert applied == set(MUTATORS)


def test_finding_key_reproduces_and_shrinks():
    bug = "msr-truncate"
    program = generate_program("msr", 1, length=48)
    findings, _features, _harness = run_candidate(program, bug=bug)
    assert findings
    key = findings[0].key()

    predicate = HutFindingPredicate(program, key, bug=bug)
    assert predicate(program.ops)
    assert not predicate([])  # ddmin never tries it, but the contract holds

    shrunk = shrink_finding(program, key, bug=bug)
    assert 0 < len(shrunk.ops) < len(program.ops)
    assert predicate(shrunk.ops)
    # 1-minimality: dropping any single op loses the finding.
    for index in range(len(shrunk.ops)):
        subset = shrunk.ops[:index] + shrunk.ops[index + 1:]
        if subset:
            assert not predicate(subset)


def test_shrink_identical_at_jobs_1_and_2():
    bug = "ept-exec-bypass"
    program = generate_program("ept", 1, length=48)
    findings, _features, _harness = run_candidate(program, bug=bug)
    assert findings
    key = findings[0].key()
    serial = shrink_finding(program, key, bug=bug, jobs=1)
    parallel = shrink_finding(program, key, bug=bug, jobs=2)
    assert [op.to_record() for op in serial.ops] == [
        op.to_record() for op in parallel.ops
    ]


def test_shrink_rejects_non_reproducing_key():
    program = generate_program("ept", 1, length=16)
    with pytest.raises(ValueError):
        shrink_finding(program, "divergence:hut-ref:at=nowhere,target=ept")
