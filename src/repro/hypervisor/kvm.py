"""KVM-like hypervisor: the VM Exit dispatch loop.

Each trapped guest operation lands in :meth:`KvmHypervisor.handle_exit`,
which (i) lets the Event Forwarder see the exit — that is HyperTap's
entire intrusion into the hypervisor — and (ii) emulates the operation:
IO goes to the device bus, monitor-induced EPT violations are completed
transparently, everything else is applied as the guest intended.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Optional

from repro.hw.cpu import VCPU
from repro.hw.exits import ExitAction, ExitReason, VMExit
from repro.hw.machine import Machine
from repro.hypervisor.event_forwarder import EventForwarder
from repro.obs.metrics import MetricsRegistry


class KvmHypervisor:
    """Hypervisor instance bound to one machine/VM."""

    def __init__(
        self,
        machine: Machine,
        vm_id: str = "vm0",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.machine = machine
        self.vm_id = vm_id
        self.event_forwarder: Optional[EventForwarder] = None
        self.exit_counts: Counter = Counter()
        self.handled_exits = 0
        #: Exit-rate accounting (``exits{vm, reason}``) in the shared
        #: registry; handles cached per reason off the dispatch path.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._exit_cells: dict = {}
        machine.set_exit_dispatcher(self.handle_exit)

    def attach_forwarder(self, forwarder: EventForwarder) -> None:
        """Install the HyperTap Event Forwarder patch."""
        self.event_forwarder = forwarder

    def detach_forwarder(self) -> None:
        self.event_forwarder = None

    def exit_reason_counts(self) -> Dict[str, int]:
        """Handled exits per reason, keyed by reason value (sorted).

        Introspection hook for the hut self-consistency oracle: the sum
        over this map must equal ``handled_exits``, the machine's
        ``total_exits``, and — when a forwarder is attached for the
        whole run — the forwarder's ``seen``.
        """
        return {
            reason.value: count
            for reason, count in sorted(
                self.exit_counts.items(), key=lambda kv: kv[0].value
            )
        }

    # ------------------------------------------------------------------
    def handle_exit(self, vcpu: VCPU, exit_event: VMExit) -> ExitAction:
        self.handled_exits += 1
        self.exit_counts[exit_event.reason] += 1
        cell = self._exit_cells.get(exit_event.reason)
        if cell is None:
            cell = self.metrics.counter(
                "exits", vm=self.vm_id, reason=exit_event.reason.value
            )
            self._exit_cells[exit_event.reason] = cell
        cell.value += 1
        vcpu.charge(self.machine.costs.exit_emulation_ns)

        # HyperTap hook: forward before the operation is emulated, so
        # auditors see events *before* their effects (active monitoring
        # can veto by pausing the VM).
        if self.event_forwarder is not None:
            # Host-hop trace prefix: spans opened for this exit's
            # derived events inherit the exit->EF->EM path (live-only
            # context; the pipeline-scope export strips it).
            self.metrics.host_begin(
                "exit", exit_event.time_ns, exit_event.reason.value
            )
            self.event_forwarder.on_vm_exit(self.vm_id, vcpu, exit_event)

        reason = exit_event.reason
        if reason is ExitReason.IO_INSTRUCTION:
            result = self.machine.io_bus.access(
                vcpu,
                exit_event.qual("port"),
                exit_event.qual("direction"),
                exit_event.qual("value", 0),
            )
            exit_event.qualification["result"] = result
            return ExitAction.EMULATE
        if reason is ExitReason.EPT_VIOLATION:
            # Monitor-narrowed permissions: complete the access on the
            # guest's behalf (write-and-continue emulation).
            return ExitAction.EMULATE
        if reason is ExitReason.EXTERNAL_INTERRUPT:
            return ExitAction.REFLECT
        # CR_ACCESS, WRMSR, EXCEPTION, HLT, APIC_ACCESS: apply as-is.
        return ExitAction.EMULATE
