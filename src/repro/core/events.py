"""Derived guest events: what the unified logging channel publishes.

Raw VM Exits are hypervisor-level; the interception algorithms lift
them into OS-meaningful events whose *provenance is still hardware*:
every field below is computed from exit-time register snapshots and
EPT-qualified addresses, never from guest self-reporting.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.errors import TraceFormatError
from repro.hw.exits import ExitAction, ExitReason, GuestStateSnapshot, MemAccess


class EventType(enum.Enum):
    PROCESS_SWITCH = "process_switch"
    THREAD_SWITCH = "thread_switch"
    SYSCALL = "syscall"
    IO = "io"
    MEM_ACCESS = "mem_access"
    TSS_INTEGRITY = "tss_integrity"
    RAW_EXIT = "raw_exit"

    # Members are singletons, so identity hash is equivalent to the
    # default name hash — but it runs in C.  The replay hot loop keys
    # several dicts per event on this enum (channel fan-out table,
    # stage counters, published-event tallies); Python-level
    # ``Enum.__hash__`` was the single largest per-event tax there.
    __hash__ = object.__hash__


#: Exit reasons each event type's interception requires (what HyperTap
#: must configure the VMCS/EPT to trap).
REQUIRED_EXIT_REASONS: Dict[EventType, frozenset] = {
    EventType.PROCESS_SWITCH: frozenset({ExitReason.CR_ACCESS}),
    EventType.THREAD_SWITCH: frozenset(
        {ExitReason.CR_ACCESS, ExitReason.EPT_VIOLATION}
    ),
    EventType.SYSCALL: frozenset(
        {ExitReason.WRMSR, ExitReason.EPT_VIOLATION, ExitReason.EXCEPTION}
    ),
    EventType.IO: frozenset(
        {
            ExitReason.IO_INSTRUCTION,
            ExitReason.EXTERNAL_INTERRUPT,
            ExitReason.APIC_ACCESS,
        }
    ),
    EventType.MEM_ACCESS: frozenset({ExitReason.EPT_VIOLATION}),
    EventType.TSS_INTEGRITY: frozenset(set(ExitReason)),
    EventType.RAW_EXIT: frozenset(set(ExitReason)),
}


#: Fields of :class:`GuestStateSnapshot`, in serialization order.
_SNAPSHOT_FIELDS = (
    "cr3", "tr_base", "rsp", "rip",
    "rax", "rbx", "rcx", "rdx", "rsi", "rdi", "cpl",
)

#: Expected ``map(type, values)`` shape for a well-formed snapshot.
_SNAPSHOT_TYPES = [int] * len(_SNAPSHOT_FIELDS)

#: Enums that may appear inside qualification/detail dictionaries.
_QUAL_ENUMS: Dict[str, type] = {
    "ExitReason": ExitReason,
    "ExitAction": ExitAction,
    "MemAccess": MemAccess,
}


def _require_int(value: Any, what: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise TraceFormatError(f"{what} must be an integer, got {value!r}")
    return value


def _snapshot_to_record(snap: Optional[GuestStateSnapshot]):
    """Positional list in ``_SNAPSHOT_FIELDS`` order (compact + fast)."""
    if snap is None:
        return None
    return [getattr(snap, name) for name in _SNAPSHOT_FIELDS]


def _snapshot_from_record(record: Any) -> Optional[GuestStateSnapshot]:
    if record is None:
        return None
    if type(record) is list:
        if len(record) != len(_SNAPSHOT_FIELDS):
            raise TraceFormatError(
                f"hw snapshot needs {len(_SNAPSHOT_FIELDS)} values, "
                f"got {len(record)}"
            )
        values = record
    elif isinstance(record, dict):
        # Tolerated for hand-written records: keyed form.
        try:
            values = [record[name] for name in _SNAPSHOT_FIELDS]
        except KeyError as exc:
            raise TraceFormatError(f"hw snapshot missing field {exc}") from exc
    else:
        raise TraceFormatError(
            f"hw snapshot must be a list or dict, got {record!r}"
        )
    # One C-speed scan instead of a Python loop over 11 fields: map the
    # type constructor across the values and compare against the
    # expected all-int shape.  The mismatch path re-finds the culprit.
    if list(map(type, values)) != _SNAPSHOT_TYPES:
        index = next(i for i, v in enumerate(values) if type(v) is not int)
        raise TraceFormatError(
            f"hw.{_SNAPSHOT_FIELDS[index]} must be an integer, "
            f"got {values[index]!r}"
        )
    # Frozen-dataclass __init__ routes every field through
    # object.__setattr__; building the immutable value directly keeps
    # trace decoding off that slow path (this is the replay hot loop).
    snap = object.__new__(GuestStateSnapshot)
    snap.__dict__.update(zip(_SNAPSHOT_FIELDS, values))
    return snap


def _encode_value(value: Any) -> Any:
    """JSON-safe encoding for qualification/detail values."""
    if isinstance(value, enum.Enum):
        return {"$enum": type(value).__name__, "v": value.value}
    if isinstance(value, dict):
        return {str(k): _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Last resort for exotic harness-injected values: keep *something*
    # human-readable rather than failing the whole record.
    return repr(value)


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"$enum", "v"}:
            cls = _QUAL_ENUMS.get(value["$enum"])
            if cls is None:
                raise TraceFormatError(f"unknown enum tag {value['$enum']!r}")
            try:
                return cls(value["v"])
            except ValueError as exc:
                raise TraceFormatError(str(exc)) from exc
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def _decode_dict(value: Any, what: str) -> Dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, dict):
        raise TraceFormatError(f"{what} must be a dict, got {value!r}")
    # Scalar values (the common case) need no recursive decoding: one
    # cheap scan, then a C-speed copy.
    for v in value.values():
        if type(v) is dict or type(v) is list:
            return {
                k: _decode_value(v) if isinstance(v, (dict, list)) else v
                for k, v in value.items()
            }
    return dict(value)


@dataclass
class GuestEvent:
    """Base event: timestamp, vCPU, and the hardware state snapshot."""

    time_ns: int
    vcpu_index: int
    vm_id: str
    hw_state: GuestStateSnapshot

    @property
    def type(self) -> EventType:  # pragma: no cover - overridden
        return EventType.RAW_EXIT

    # ------------------------------------------------------------------
    # Codec (shared by the trace recorder and ``repro.replay``)
    # ------------------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """Subclass-specific fields, JSON-safe.  Overridden below."""
        return {}

    def to_record(self) -> Dict[str, Any]:
        """Serialize to a JSON-safe dict (see ``repro.replay.format``).

        Keys: ``t`` (time ns), ``vcpu``, ``vm``, ``type`` and ``hw``
        (snapshot or ``None``), plus the subclass payload, flat.
        """
        record: Dict[str, Any] = {
            "t": self.time_ns,
            "vcpu": self.vcpu_index,
            "vm": self.vm_id,
            "type": self.type.value,
            "hw": _snapshot_to_record(self.hw_state),
        }
        record.update(self.payload())
        return record

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        """Decode the subclass payload into constructor kwargs."""
        return {}

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "GuestEvent":
        """Decode any event class; raises :class:`TraceFormatError`."""
        if not isinstance(record, dict):
            raise TraceFormatError(f"event record must be a dict, got {record!r}")
        try:
            type_value = record["type"]
            time_ns = record["t"]
            vcpu_index = record["vcpu"]
        except KeyError as exc:
            raise TraceFormatError(f"event record missing {exc}") from exc
        # Cached dispatch: (class, bound payload decoder) per type value,
        # so the replay hot loop pays one dict hit instead of a registry
        # lookup plus a classmethod bind per record.
        entry = (
            _CODEC_DISPATCH.get(type_value)
            if type(type_value) is str else None
        )
        if entry is None:
            cls = (
                EVENT_CLASSES.get(type_value)
                if isinstance(type_value, (str, int)) else None
            )
            if cls is None:
                raise TraceFormatError(f"unknown event type {type_value!r}")
            entry = (cls, cls._from_payload)
            if type(type_value) is str:
                _CODEC_DISPATCH[type_value] = entry
        cls, decode_payload = entry
        if type(time_ns) is not int or time_ns < 0:
            raise TraceFormatError(f"bad timestamp {time_ns!r}")
        if type(vcpu_index) is not int:
            raise TraceFormatError(f"vcpu must be an integer, got {vcpu_index!r}")
        vm_id = record.get("vm", "vm0")
        if not isinstance(vm_id, str):
            raise TraceFormatError(f"vm must be a string, got {vm_id!r}")
        # Same decode-hot-path shortcut as _snapshot_from_record: the
        # payload is already validated, so skip the generated __init__.
        event = object.__new__(cls)
        fields = event.__dict__
        fields["time_ns"] = time_ns
        fields["vcpu_index"] = vcpu_index
        fields["vm_id"] = vm_id
        fields["hw_state"] = _snapshot_from_record(record.get("hw"))
        fields.update(decode_payload(record))
        return event


@dataclass
class ProcessSwitchEvent(GuestEvent):
    """CR3 was written: a process (address space) switch (Fig 3A)."""

    new_pdba: int = 0
    old_pdba: int = 0

    @property
    def type(self) -> EventType:
        return EventType.PROCESS_SWITCH

    def payload(self) -> Dict[str, Any]:
        return {"new_pdba": self.new_pdba, "old_pdba": self.old_pdba}

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "new_pdba": _require_int(record.get("new_pdba", 0), "new_pdba"),
            "old_pdba": _require_int(record.get("old_pdba", 0), "old_pdba"),
        }


@dataclass
class ThreadSwitchEvent(GuestEvent):
    """TSS.RSP0 was written: a thread switch; ``rsp0`` identifies the
    scheduled-in thread (Fig 3B)."""

    rsp0: int = 0

    @property
    def type(self) -> EventType:
        return EventType.THREAD_SWITCH

    def payload(self) -> Dict[str, Any]:
        return {"rsp0": self.rsp0}

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        return {"rsp0": _require_int(record.get("rsp0", 0), "rsp0")}


@dataclass
class SyscallEvent(GuestEvent):
    """A system call entered the kernel (Fig 3D/E)."""

    number: int = 0
    args: Tuple[int, ...] = ()
    mechanism: str = "sysenter"  # or "int80"

    @property
    def type(self) -> EventType:
        return EventType.SYSCALL

    def payload(self) -> Dict[str, Any]:
        return {
            "nr": self.number,
            "args": list(self.args),
            "mechanism": self.mechanism,
        }

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        args = record.get("args", [])
        if not isinstance(args, (list, tuple)):
            raise TraceFormatError(f"args must be a list, got {args!r}")
        for a in args:
            if type(a) is not int:
                raise TraceFormatError(f"args must be integers, got {a!r}")
        mechanism = record.get("mechanism", "sysenter")
        if not isinstance(mechanism, str):
            raise TraceFormatError(f"mechanism must be a string, got {mechanism!r}")
        return {
            "number": _require_int(record.get("nr", 0), "nr"),
            "args": tuple(args),
            "mechanism": mechanism,
        }


@dataclass
class IOEvent(GuestEvent):
    """Programmed IO, MMIO, or an IO interrupt (Section VI-C)."""

    kind: str = "pio"  # "pio" | "interrupt" | "apic"
    detail: Dict[str, Any] = field(default_factory=dict)

    @property
    def type(self) -> EventType:
        return EventType.IO

    def payload(self) -> Dict[str, Any]:
        # "io_kind", not "kind": trace records reserve "kind" for the
        # record-kind envelope (header/event/scan/footer).
        return {"io_kind": self.kind, "detail": _encode_value(self.detail)}

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        kind = record.get("io_kind", "pio")
        if not isinstance(kind, str):
            raise TraceFormatError(f"io_kind must be a string, got {kind!r}")
        return {
            "kind": kind,
            "detail": _decode_dict(record.get("detail"), "detail"),
        }


@dataclass
class MemoryAccessEvent(GuestEvent):
    """Fine-grained interception: an access to a watched page."""

    gva: int = 0
    gpa: int = 0
    access: str = "w"

    @property
    def type(self) -> EventType:
        return EventType.MEM_ACCESS

    def payload(self) -> Dict[str, Any]:
        return {"gva": self.gva, "gpa": self.gpa, "access": self.access}

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        access = record.get("access", "w")
        if not isinstance(access, str):
            raise TraceFormatError(f"access must be a string, got {access!r}")
        return {
            "gva": _require_int(record.get("gva", 0), "gva"),
            "gpa": _require_int(record.get("gpa", 0), "gpa"),
            "access": access,
        }


@dataclass
class TssIntegrityAlert(GuestEvent):
    """The TR register moved: the TSS was relocated (Fig 3C), which no
    legitimate OS does after boot — an attack indicator."""

    saved_tr: int = 0
    current_tr: int = 0

    @property
    def type(self) -> EventType:
        return EventType.TSS_INTEGRITY

    def payload(self) -> Dict[str, Any]:
        return {"saved_tr": self.saved_tr, "current_tr": self.current_tr}

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "saved_tr": _require_int(record.get("saved_tr", 0), "saved_tr"),
            "current_tr": _require_int(record.get("current_tr", 0), "current_tr"),
        }


@dataclass
class RawExitEvent(GuestEvent):
    """Unprocessed exit, for auditors that want the firehose."""

    reason: ExitReason = ExitReason.HLT
    qualification: Dict[str, Any] = field(default_factory=dict)

    @property
    def type(self) -> EventType:
        return EventType.RAW_EXIT

    def payload(self) -> Dict[str, Any]:
        return {
            "reason": self.reason.value,
            "qual": _encode_value(self.qualification),
        }

    @classmethod
    def _from_payload(cls, record: Dict[str, Any]) -> Dict[str, Any]:
        try:
            reason = ExitReason(record.get("reason", ExitReason.HLT.value))
        except ValueError as exc:
            raise TraceFormatError(str(exc)) from exc
        return {
            "reason": reason,
            "qualification": _decode_dict(record.get("qual"), "qual"),
        }


#: Lazy decode-dispatch cache for :meth:`GuestEvent.from_record`:
#: type value -> (class, payload decoder).  Populated exclusively from
#: ``EVENT_CLASSES`` (the single registry below), never by hand, so it
#: cannot drift from the codec.
_CODEC_DISPATCH: Dict[
    str, Tuple[Type["GuestEvent"], Callable[[Dict[str, Any]], Dict[str, Any]]]
] = {}

#: Serialized ``type`` value -> event class, for :meth:`GuestEvent.from_record`.
EVENT_CLASSES: Dict[str, Type[GuestEvent]] = {
    EventType.PROCESS_SWITCH.value: ProcessSwitchEvent,
    EventType.THREAD_SWITCH.value: ThreadSwitchEvent,
    EventType.SYSCALL.value: SyscallEvent,
    EventType.IO.value: IOEvent,
    EventType.MEM_ACCESS.value: MemoryAccessEvent,
    EventType.TSS_INTEGRITY.value: TssIntegrityAlert,
    EventType.RAW_EXIT.value: RawExitEvent,
}
