"""The guest kernel: boot, scheduling, syscall dispatch, execution.

This is the OS under test.  It is a real (if small) kernel in the sense
that matters for the paper:

* all task state lives in guest physical memory in fixed layouts,
* context switches perform the two architectural writes HyperTap
  intercepts — ``TSS.RSP0`` (thread identity) and ``CR3`` (process
  identity),
* system calls enter through the SYSENTER target or ``INT 0x80``,
* spinlocks disable preemption, so lock-protocol faults wedge vCPUs,
* ``/proc`` content comes from walking the in-memory task list.

The *executor* drives each vCPU as a chain of discrete-event steps:
service interrupts, honour preemption, advance the current task's
generator by one operation, charge the accrued simulated time, and
schedule the next step.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.guest.kalloc import KernelAllocator
from repro.guest.layouts import (
    KERNEL_TEXT_BASE,
    KERNEL_TEXT_GPA,
    KERNEL_TEXT_SIZE,
    MM_STRUCT,
    PF_KTHREAD,
    SYSENTER_ENTRY_GVA,
    TASK_STRUCT,
    THREAD_INFO,
    THREAD_SIZE,
    USER_STACK_TOP,
    USER_TEXT_BASE,
    direct_map_gpa,
    StructRef,
)
from repro.guest.locks import LockTable
from repro.guest.programs import (
    BlockOn,
    Compute,
    DiskRequest,
    ExitProgram,
    FaultEffect,
    FaultPoint,
    GuestContext,
    KCompute,
    KMemRead,
    KMemWrite,
    LockAcquire,
    LockRelease,
    PortIo,
    Syscall,
)
from repro.guest.scheduler import CpuState, least_loaded
from repro.guest.syscalls import DEFAULT_SYSCALL_TABLE, SYSCALL_NUMBERS
from repro.guest.task import MmHandle, Task, TaskState
from repro.hw.cpu import VCPU
from repro.hw.machine import Machine
from repro.hw.memory import PAGE_SIZE
from repro.hw.msr import IA32_SYSENTER_CS, IA32_SYSENTER_EIP, IA32_SYSENTER_ESP
from repro.hw.tss import RSP0_OFFSET
from repro.hw.vmcs import VECTOR_DISK, VECTOR_NET, VECTOR_TIMER
from repro.sim.clock import MICROSECOND, MILLISECOND

#: Minimum executor step (prevents zero-length event loops).
MIN_STEP_NS = 2 * MICROSECOND
#: Idle loop granularity.
IDLE_SLICE_NS = 2 * MILLISECOND
#: Spin-wait sampling backoff cap (the vCPU still "spins" continuously
#: in simulated time; we merely sample the lock less often).
SPIN_BACKOFF_CAP_NS = 10 * MILLISECOND

FaultHook = Callable[[Task, int, str, str], Optional[FaultEffect]]


@dataclass
class KernelConfig:
    """Guest kernel build/runtime options."""

    #: CONFIG_PREEMPT: allow preemption of kernel code (outside
    #: spinlock critical sections).  The paper evaluates both builds.
    preemptible: bool = False
    #: "sysenter" (fast syscalls) or "int80" (legacy gate).
    syscall_mechanism: str = "sysenter"
    timeslice_ns: int = 6 * MILLISECOND
    housekeeping_period_ns: int = 1_000 * MILLISECOND

    def validate(self) -> None:
        if self.syscall_mechanism not in ("sysenter", "int80"):
            raise SimulationError(
                f"unknown syscall mechanism {self.syscall_mechanism!r}"
            )


class GuestKernel:
    """One booted guest OS instance on a :class:`Machine`."""

    def __init__(self, machine: Machine, config: Optional[KernelConfig] = None):
        self.machine = machine
        self.config = config if config is not None else KernelConfig()
        self.config.validate()
        self.costs = machine.costs
        self.engine = machine.engine
        self.allocator = KernelAllocator(machine)
        self.locks = LockTable()
        self.syscall_table = dict(DEFAULT_SYSCALL_TABLE)
        self.cpus: List[CpuState] = []
        self.tasks: Dict[int, Task] = {}
        self._next_pid = 1
        self._next_fd: Dict[int, int] = {}
        self.pending_rx: Deque[int] = deque()
        self._disk_waiters: Deque[Task] = deque()
        self._wait_channels: Dict[str, Deque[Task]] = {}
        self._block_seq = 0
        self.fault_hook: Optional[FaultHook] = None
        self.exploit_log: List[Tuple[int, int, str]] = []  # (time, pid, cve)
        self.syscall_count = 0
        self.booted = False
        self.running = False
        self.swapper_pdba = 0
        self.init_task_gva = 0
        self.kernel_pdba = 0
        self._swappers: List[Task] = []

    # ==================================================================
    # Boot
    # ==================================================================
    def boot(self) -> None:
        """Bring the guest up: memory map, swapper tasks, TSS, MSRs."""
        if self.booted:
            raise SimulationError("kernel already booted")
        machine = self.machine
        registry = machine.page_registry

        # Kernel text mapping (shared by every address space).
        gva, gpa = KERNEL_TEXT_BASE, KERNEL_TEXT_GPA
        for off in range(0, KERNEL_TEXT_SIZE, PAGE_SIZE):
            registry.kernel.map_page(gva + off, gpa + off)

        # The kernel's own address space (swapper / init_mm).
        swapper_space = registry.create_address_space()
        self.swapper_pdba = swapper_space.pdba
        self.kernel_pdba = swapper_space.pdba

        # Per-vCPU swapper (idle) tasks; swapper 0 is the task-list head.
        for vcpu in machine.vcpus:
            swapper = self._create_task_struct(
                pid=0,
                comm=f"swapper/{vcpu.index}",
                uid=0,
                euid=0,
                mm=None,
                is_kthread=True,
                exe="[swapper]",
            )
            self._swappers.append(swapper)
            self.cpus.append(CpuState(vcpu.index, swapper))
        self.init_task_gva = self._swappers[0].task_struct_gva
        head = self.task_ref(self._swappers[0])
        head.write("tasks_next", self.init_task_gva)
        head.write("tasks_prev", self.init_task_gva)

        # Per-vCPU architectural bring-up: CR3, TSS, TR, SYSENTER MSRs.
        for vcpu, swapper in zip(machine.vcpus, self._swappers):
            vcpu.guest_write_cr3(self.swapper_pdba)
            tss_gva = self.allocator.alloc_page()
            vcpu.guest_load_tr(tss_gva)
            vcpu.guest_mem_write_u64(tss_gva + RSP0_OFFSET, swapper.rsp0)
            vcpu.guest_wrmsr(IA32_SYSENTER_CS, 0x10)
            vcpu.guest_wrmsr(IA32_SYSENTER_ESP, swapper.rsp0)
            vcpu.guest_wrmsr(IA32_SYSENTER_EIP, SYSENTER_ENTRY_GVA)

        # IRQ handlers.
        machine.register_irq_handler(VECTOR_TIMER, self._irq_timer)
        machine.register_irq_handler(VECTOR_DISK, self._irq_disk)
        machine.register_irq_handler(VECTOR_NET, self._irq_net)

        # init is pid 1, then the standard kernel threads (per-CPU
        # housekeeping and writeback, like Linux's per-bdi flushers).
        self.spawn_process(_init_program, "init", uid=0, euid=0, exe="/sbin/init")
        for cpu in self.cpus:
            self.spawn_kthread(
                _khousekeepd, f"khousekeepd/{cpu.index}", cpu=cpu.index
            )
        for cpu in self.cpus:
            self.spawn_kthread(_kflushd, f"kflushd/{cpu.index}", cpu=cpu.index)
        self.spawn_kthread(_knetd, "knetd", cpu=self.cpus[-1].index)

        machine.start_timers()
        self.booted = True
        self.running = True
        for i, vcpu in enumerate(machine.vcpus):
            self.engine.schedule(
                MIN_STEP_NS + i * 137, self._step, vcpu, label=f"step-vcpu{i}"
            )

    def shutdown(self) -> None:
        """Stop executing (campaign teardown)."""
        self.running = False
        self.machine.stop_timers()

    # ==================================================================
    # Task and structure management
    # ==================================================================
    def task_ref(self, task: Task) -> StructRef:
        return StructRef(
            self.machine, self.kernel_pdba, TASK_STRUCT, task.task_struct_gva
        )

    def task_ref_at(self, gva: int) -> StructRef:
        return StructRef(self.machine, self.kernel_pdba, TASK_STRUCT, gva)

    def _create_task_struct(
        self,
        pid: int,
        comm: str,
        uid: int,
        euid: int,
        mm: Optional[MmHandle],
        is_kthread: bool,
        exe: str,
        parent_gva: int = 0,
    ) -> Task:
        """Allocate and initialize the guest-memory objects of a task."""
        ts_gva = self.allocator.alloc(TASK_STRUCT.size)
        stack_gva = self.allocator.alloc_stack(THREAD_SIZE)
        ti_gva = stack_gva  # thread_info lives at the stack bottom

        task = Task(
            pid=pid,
            comm=comm,
            task_struct_gva=ts_gva,
            thread_info_gva=ti_gva,
            kernel_stack_gva=stack_gva,
            mm=mm,
            is_kthread=is_kthread,
        )
        task.start_time_ns = self.machine.clock.now

        ref = self.task_ref(task)
        ref.write("pid", pid)
        ref.write("tgid", pid)
        ref.write("uid", uid)
        ref.write("euid", euid)
        ref.write("gid", uid)
        ref.write("state", 0)
        ref.write("flags", PF_KTHREAD if is_kthread else 0)
        ref.write("mm", mm.gva if mm is not None else 0)
        ref.write("stack", ti_gva)
        ref.write("parent", parent_gva)
        ref.write("start_time", task.start_time_ns)
        ref.write("utime", 0)
        ref.write_str("comm", comm)
        ref.write_str("exe", exe)

        ti = StructRef(self.machine, self.kernel_pdba, THREAD_INFO, ti_gva)
        ti.write("task", ts_gva)
        ti.write("cpu", 0)
        ti.write("preempt_count", 0)
        return task

    def _link_task(self, task: Task) -> None:
        """Insert into the circular task list (before the head)."""
        head = self.task_ref_at(self.init_task_gva)
        tail_gva = head.read("tasks_prev")
        tail = self.task_ref_at(tail_gva)
        me = self.task_ref(task)
        me.write("tasks_prev", tail_gva)
        me.write("tasks_next", self.init_task_gva)
        tail.write("tasks_next", task.task_struct_gva)
        head.write("tasks_prev", task.task_struct_gva)

    def _unlink_task(self, task: Task) -> None:
        """Remove from the circular task list (exit path).

        If a rootkit already unlinked the entry (DKOM), the pointers no
        longer reference this task; the unlink then is a no-op rather
        than a corruption.
        """
        me = self.task_ref(task)
        next_gva = me.read("tasks_next")
        prev_gva = me.read("tasks_prev")
        if next_gva == 0 or prev_gva == 0:
            return
        nxt = self.task_ref_at(next_gva)
        prv = self.task_ref_at(prev_gva)
        if prv.read("tasks_next") == task.task_struct_gva:
            prv.write("tasks_next", next_gva)
        if nxt.read("tasks_prev") == task.task_struct_gva:
            nxt.write("tasks_prev", prev_gva)
        me.write("tasks_next", 0)
        me.write("tasks_prev", 0)

    def spawn_process(
        self,
        program,
        name: str,
        parent: Optional[Task] = None,
        uid: Optional[int] = None,
        euid: Optional[int] = None,
        exe: str = "",
        argv: Tuple[Any, ...] = (),
        pin_cpu: Optional[int] = None,
    ) -> Task:
        """Create a user process running ``program`` (fork+exec)."""
        registry = self.machine.page_registry
        space = registry.create_address_space()
        # Map a text page and a stack page of real memory.
        text_gva = self.allocator.alloc_page()
        stack_page_gva = self.allocator.alloc_page()
        space.map_user_page(USER_TEXT_BASE, direct_map_gpa(text_gva))
        space.map_user_page(
            USER_STACK_TOP - PAGE_SIZE, direct_map_gpa(stack_page_gva)
        )
        mm_gva = self.allocator.alloc(MM_STRUCT.size)
        mm = MmHandle(mm_gva, space)

        if uid is None:
            uid = self.task_ref(parent).read("uid") if parent else 0
        if euid is None:
            euid = uid
        pid = self._next_pid
        self._next_pid += 1
        task = self._create_task_struct(
            pid=pid,
            comm=name[:15],
            uid=uid,
            euid=euid,
            mm=mm,
            is_kthread=False,
            exe=exe or name,
            parent_gva=parent.task_struct_gva if parent else self.init_task_gva,
        )
        mm_ref = StructRef(self.machine, self.kernel_pdba, MM_STRUCT, mm_gva)
        mm_ref.write("pgd", space.pdba)
        mm_ref.write("owner", task.task_struct_gva)
        mm_ref.write("vm_pages", 2)

        task.push_frame(program(GuestContext(argv)))
        self.tasks[pid] = task
        self._link_task(task)
        cpu = (
            self.cpus[pin_cpu]
            if pin_cpu is not None
            else least_loaded(self.cpus)
        )
        cpu.enqueue(task)
        return task

    def spawn_kthread(self, program_fn, name: str, cpu: int = 0) -> Task:
        """Create a kernel thread (no mm; borrows address spaces)."""
        pid = self._next_pid
        self._next_pid += 1
        task = self._create_task_struct(
            pid=pid,
            comm=name[:15],
            uid=0,
            euid=0,
            mm=None,
            is_kthread=True,
            exe=f"[{name}]",
            parent_gva=self.init_task_gva,
        )
        task.in_kernel = True
        task.push_frame(program_fn(self, task))
        self.tasks[pid] = task
        self._link_task(task)
        self.cpus[cpu].enqueue(task)
        return task

    def find_task(self, pid: int) -> Optional[Task]:
        return self.tasks.get(pid)

    def next_fd(self, task: Task) -> int:
        fd = self._next_fd.get(task.pid, 3)
        self._next_fd[task.pid] = fd + 1
        return fd

    def note_exploit(self, task: Task, cve: str) -> None:
        self.exploit_log.append((self.machine.clock.now, task.pid, cve))

    # ==================================================================
    # Guest views (task-list walks) and /proc content
    # ==================================================================
    #: vCPU currently executing kernel code (guest-access context).
    executing_vcpu: Optional[VCPU] = None

    def _read_u64(self, gva: int) -> int:
        if self.executing_vcpu is not None:
            return self.executing_vcpu.guest_mem_read_u64(gva)
        return self.machine.host_read_u64_gva(self.kernel_pdba, gva)

    def walk_task_list_guest(self) -> Iterator[Dict[str, Any]]:
        """Walk the in-memory task list, yielding one dict per task.

        This is the guest's own view (and traditional VMI's view): it
        follows the ``tasks_next`` pointers in guest memory, so a DKOM
        rootkit that unlinks an entry hides it from this walk.
        """
        head = self.init_task_gva
        cur = self._read_u64(head + TASK_STRUCT.offset("tasks_next"))
        steps = 0
        while cur != head and cur != 0 and steps < 65536:
            ref = self.task_ref_at(cur)
            yield {
                "pid": ref.read("pid"),
                "uid": ref.read("uid"),
                "euid": ref.read("euid"),
                "comm": ref.read_str("comm"),
                "exe": ref.read_str("exe"),
                "flags": ref.read("flags"),
                "parent_gva": ref.read("parent"),
                "task_struct_gva": cur,
            }
            cur = self._read_u64(cur + TASK_STRUCT.offset("tasks_next"))
            steps += 1

    def guest_view_pids(self) -> List[int]:
        """The pid list ``ps`` would print inside the guest.

        Dispatched through the syscall table — so a rootkit that
        hijacked the /proc readers censors this view, exactly like it
        censors Task Manager or ``ps`` on a real system.
        """
        handler = self.syscall_table["proc_list"]
        gen = handler(self, self._swappers[0], ())
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return list(stop.value or ())

    def guest_view_status(self, pid: int) -> Optional[Dict[str, Any]]:
        """/proc/<pid>/status as the guest sees it (hijackable)."""
        handler = self.syscall_table["proc_status"]
        gen = handler(self, self._swappers[0], (pid,))
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def proc_stat(self, pid: int) -> Optional[Dict[str, Any]]:
        """/proc/<pid>/stat content (state + utime), or None.

        Direct pid-hash lookup, like Linux's ``/proc/<pid>`` path.
        Rootkits that want these reads censored hook the syscall
        (see ``repro.attacks.rootkits``).
        """
        task = self.tasks.get(pid)
        if task is None:
            return None
        ref = self.task_ref(task)
        return {
            "pid": pid,
            "state": task.state.proc_char,
            "utime": ref.read("utime"),
            "comm": task.comm,
        }

    # ==================================================================
    # Wait channels, wakeups, blocking
    # ==================================================================
    def _channel(self, name: str) -> Deque[Task]:
        ch = self._wait_channels.get(name)
        if ch is None:
            ch = deque()
            self._wait_channels[name] = ch
        return ch

    def wake(self, channel: str, wake_all: bool = False) -> int:
        """Wake task(s) sleeping on ``channel``; returns count woken."""
        ch = self._channel(channel)
        woken = 0
        while ch:
            task = ch.popleft()
            if task.state in (TaskState.SLEEPING, TaskState.UNINTERRUPTIBLE):
                task.wait_channel = None
                self.cpus[task.cpu].enqueue(task)
                woken += 1
            if not wake_all and woken:
                break
        return woken

    def _block_current(
        self, vcpu: VCPU, task: Task, channel: str, timeout_ns: int,
        uninterruptible: bool = False,
    ) -> None:
        task.state = (
            TaskState.UNINTERRUPTIBLE if uninterruptible else TaskState.SLEEPING
        )
        task.wait_channel = channel
        self._channel(channel).append(task)
        self._block_seq += 1
        seq = self._block_seq
        task_block_seq = seq
        task._block_seq = seq  # type: ignore[attr-defined]
        if timeout_ns > 0:
            def _timeout() -> None:
                if (
                    task.state is TaskState.SLEEPING
                    and getattr(task, "_block_seq", None) == task_block_seq
                ):
                    ch = self._channel(channel)
                    try:
                        ch.remove(task)
                    except ValueError:
                        pass
                    task.wait_channel = None
                    self.cpus[task.cpu].enqueue(task)

            self.engine.schedule(timeout_ns, _timeout, label=f"timeout:{channel}")

    def request_resched(self, task: Task) -> None:
        self.cpus[task.cpu].need_resched = True

    def deliver_packet(self, size: int = 512, vcpu_index: int = 0) -> None:
        """External traffic arrival (ApacheBench, SSH probe...)."""
        self.pending_rx.append(size)
        self.machine.nic.inject_packet(self.machine.vcpus[vcpu_index])

    # ==================================================================
    # IRQ handlers (hardirq context; host-side Python, charged time)
    # ==================================================================
    def _irq_timer(self, vcpu: VCPU, vector: int) -> None:
        cpu = self.cpus[vcpu.index]
        cpu.ticks_seen += 1
        vcpu.charge(self.costs.timer_tick_handler_ns)
        now = self.machine.clock.now
        cur = cpu.current
        if cur is not cpu.idle_task:
            cur.slice_remaining_ns -= self.costs.timer_period_ns
            ref = self.task_ref(cur)
            ref.write("utime", ref.read("utime") + self.costs.timer_period_ns)
            if cur.slice_remaining_ns <= 0:
                cpu.need_resched = True
        if now - cpu.last_housekeep_ns >= self.config.housekeeping_period_ns:
            cpu.last_housekeep_ns = now
            self.wake(f"housekeep:{cpu.index}")
        # Idle balancing: an idle CPU steals runnable work queued
        # behind a busy (or wedged) sibling, like the Linux load
        # balancer.  This is also how hangs propagate: stolen tasks
        # that touch a poisoned lock wedge their new CPU too.
        if cpu.current is cpu.idle_task and not cpu.runqueue:
            self._steal_work(cpu)

    def _steal_work(self, idle_cpu: CpuState) -> None:
        for other in self.cpus:
            if other is idle_cpu or len(other.runqueue) == 0:
                continue
            # Don't steal the only queued task from a healthy CPU that
            # will run it momentarily; do steal from one whose current
            # task has monopolized the CPU past its timeslice.
            current_stuck = (
                other.current is not other.idle_task
                and other.current.slice_remaining_ns <= 0
            )
            if len(other.runqueue) > 1 or current_stuck:
                task = other.runqueue.popleft()
                idle_cpu.enqueue(task)
                return

    def _irq_disk(self, vcpu: VCPU, vector: int) -> None:
        vcpu.charge(3_000)
        if self._disk_waiters:
            task = self._disk_waiters.popleft()
            if task.state is TaskState.UNINTERRUPTIBLE:
                task.wait_channel = None
                self.cpus[task.cpu].enqueue(task)

    def _irq_net(self, vcpu: VCPU, vector: int) -> None:
        vcpu.charge(4_000)
        if self.fault_hook is not None:
            cur = self.cpus[vcpu.index].current
            effect = self.fault_hook(cur, vcpu.index, "net_rx_action", "net")
            if effect is not None:
                if effect.disable_irqs:
                    self.cpus[vcpu.index].irqs_enabled = False
                if effect.drop_work:
                    if self.pending_rx:
                        self.pending_rx.pop()
                    return
        self.wake("net_rx")

    # ==================================================================
    # Context switching (the architectural writes HyperTap traps)
    # ==================================================================
    def _context_switch(self, vcpu: VCPU, prev: Task, nxt: Task) -> None:
        cpu = self.cpus[vcpu.index]
        # 1. Thread identity: the TSS RSP0 write (EPT-trappable).
        vcpu.guest_mem_write_u64(vcpu.regs.tr_base + RSP0_OFFSET, nxt.rsp0)
        # 2. Process identity: CR3 reload unless the next task borrows
        #    the current mm (kernel threads; Linux footnote 3).
        cr3_changed = False
        if nxt.mm is not None and nxt.mm.pgd != vcpu.regs.cr3:
            vcpu.guest_write_cr3(nxt.mm.pgd)
            cr3_changed = True
        vcpu.charge(
            self.costs.context_switch_ns
            if cr3_changed
            else self.costs.thread_switch_ns
        )
        ti = StructRef(
            self.machine, self.kernel_pdba, THREAD_INFO, nxt.thread_info_gva
        )
        ti.write("cpu", vcpu.index)
        cpu.context_switches += 1
        cpu.last_switch_ns = self.machine.clock.now

    def _schedule(self, vcpu: VCPU) -> None:
        cpu = self.cpus[vcpu.index]
        prev = cpu.current
        if prev is not cpu.idle_task and prev.runnable():
            cpu.enqueue(prev)
        nxt = cpu.pick_next()
        cpu.need_resched = False
        if nxt is prev:
            nxt.state = TaskState.RUNNING
            nxt.slice_remaining_ns = self.config.timeslice_ns
            return
        self._context_switch(vcpu, prev, nxt)
        cpu.current = nxt
        nxt.state = TaskState.RUNNING
        nxt.cpu = vcpu.index
        nxt.slice_remaining_ns = self.config.timeslice_ns
        # The incoming task's saved RFLAGS has IF set (tasks don't
        # deliberately run with interrupts masked): switching restores
        # interrupt delivery even if the previous context wedged it.
        cpu.irqs_enabled = True

    def _can_preempt(self, cpu: CpuState, task: Task) -> bool:
        if task is cpu.idle_task:
            return True
        if not task.in_kernel:
            return True  # user code is always preemptible
        if task.preempt_count > 0:
            return False
        return self.config.preemptible

    # ==================================================================
    # Exit paths
    # ==================================================================
    def _exit_task(self, task: Task, code: int) -> None:
        task.exit_code = code
        task.state = TaskState.ZOMBIE
        task.frames.clear()
        task.frame_kinds.clear()
        task.retry_op = None
        self._unlink_task(task)
        # Free the task_struct (auto-reap): poison the pid so stale
        # pointers held by anyone — including monitors — read as dead.
        self.task_ref(task).write("pid", 0)
        self.task_ref(task).write("state", 0xDEAD)
        for cpu in self.cpus:
            cpu.remove(task)
        if task.mm is not None:
            # Any vCPU still using this address space moves to init_mm
            # before the paging structures die (Linux's exit_mm).
            for vcpu in self.machine.vcpus:
                if vcpu.regs.cr3 == task.mm.pgd:
                    vcpu.guest_write_cr3(self.swapper_pdba)
            self.machine.page_registry.destroy_address_space(
                task.mm.address_space
            )
        self.wake(f"exit:{task.pid}", wake_all=True)

    def force_exit(self, task: Task, code: int = -9) -> None:
        """Terminate a task from the outside (kill path)."""
        if task.state is TaskState.ZOMBIE:
            return
        # Remove it from any wait channel it sleeps on.
        if task.wait_channel:
            ch = self._channel(task.wait_channel)
            try:
                ch.remove(task)
            except ValueError:
                pass
        try:
            self._disk_waiters.remove(task)
        except ValueError:
            pass
        was_current = [
            cpu for cpu in self.cpus if cpu.current is task
        ]
        self._exit_task(task, code)
        for cpu in was_current:
            cpu.need_resched = True

    # ==================================================================
    # The executor
    # ==================================================================
    def _step(self, vcpu: VCPU) -> None:
        if not self.running:
            return
        if self.machine.vm_paused:
            # The hypervisor descheduled the VM; poll for resume.
            self.engine.schedule(
                MILLISECOND, self._step, vcpu, label=f"paused-vcpu{vcpu.index}"
            )
            return
        cpu = self.cpus[vcpu.index]

        # 1. Interrupts (if the local IRQ flag allows).
        if cpu.irqs_enabled:
            while vcpu.pending_interrupts:
                vector = vcpu.pending_interrupts.popleft()
                vcpu.accept_external_interrupt(vector)
                handler = self.machine.irq_handler(vector)
                if handler is not None:
                    handler(vcpu, vector)

        # 2. Preemption.
        cur = cpu.current
        if cur.state is TaskState.ZOMBIE or (
            cur is not cpu.idle_task and not cur.runnable()
        ):
            self._schedule(vcpu)
            cur = cpu.current
        elif cpu.need_resched and self._can_preempt(cpu, cur):
            self._schedule(vcpu)
            cur = cpu.current

        # 3. Run.
        if cur is cpu.idle_task:
            if cpu.runqueue:
                self._schedule(vcpu)
                cur = cpu.current
            if cur is cpu.idle_task:
                vcpu.charge(IDLE_SLICE_NS)
            else:
                self._run_task_op(vcpu, cur)
        else:
            self._run_task_op(vcpu, cur)

        # 4. Next step after the accrued simulated work.
        spent = vcpu.collect_charges()
        self.engine.schedule(
            max(spent, MIN_STEP_NS), self._step, vcpu,
            label=f"step-vcpu{vcpu.index}",
        )

    # ------------------------------------------------------------------
    def _run_task_op(self, vcpu: VCPU, task: Task) -> None:
        self.executing_vcpu = vcpu
        try:
            if task.retry_op is not None:
                op = task.retry_op
            else:
                frame = task.current_frame
                if frame is None:
                    self._exit_task(task, 0)
                    self._schedule(vcpu)
                    return
                try:
                    op = frame.send(task.send_value)
                    task.send_value = None
                except StopIteration as stop:
                    self._on_frame_done(vcpu, task, stop.value)
                    return
            self._apply_op(vcpu, task, op)
            if not task.runnable():
                self._schedule(vcpu)
        finally:
            self.executing_vcpu = None

    def _on_frame_done(self, vcpu: VCPU, task: Task, value: Any) -> None:
        kind = task.frame_kinds[-1] if task.frame_kinds else "user"
        task.pop_frame()
        if kind == "syscall":
            task.in_kernel = False
            vcpu.return_to_user_mode()
            task.send_value = value
        elif kind == "kops":
            task.send_value = None
        else:  # the user program itself finished
            self._exit_task(task, int(value) if isinstance(value, int) else 0)
            self._schedule(vcpu)

    # ------------------------------------------------------------------
    def _apply_op(self, vcpu: VCPU, task: Task, op: Any) -> None:
        if isinstance(op, Compute):
            vcpu.charge(op.ns)
        elif isinstance(op, KCompute):
            vcpu.charge(op.ns)
        elif isinstance(op, Syscall):
            self._enter_syscall(vcpu, task, op)
        elif isinstance(op, ExitProgram):
            self._exit_task(task, op.code)
            self._schedule(vcpu)
        elif isinstance(op, FaultPoint):
            self._at_fault_point(vcpu, task, op)
        elif isinstance(op, LockAcquire):
            self._lock_acquire(vcpu, task, op)
        elif isinstance(op, LockRelease):
            self._lock_release(vcpu, task, op)
        elif isinstance(op, DiskRequest):
            self._disk_request(vcpu, task, op)
        elif isinstance(op, BlockOn):
            self._block_current(vcpu, task, op.channel, op.timeout_ns)
        elif isinstance(op, PortIo):
            vcpu.guest_io(op.port, op.direction, value=op.value)
        elif isinstance(op, KMemWrite):
            self._kmem_access(vcpu, task, op.gva, op.value)
        elif isinstance(op, KMemRead):
            task.send_value = self._kmem_access(vcpu, task, op.gva, None)
        else:
            raise SimulationError(f"unknown guest op {op!r}")

    def _kmem_access(self, vcpu: VCPU, task: Task, gva: int, value):
        """/dev/kmem access: root-only guest reads/writes of kernel
        memory, performed by the CPU so EPT protections apply."""
        if self.task_ref(task).read("euid") != 0:
            return 0  # EPERM: silently reads zero / drops the write
        vcpu.charge(1_000)
        if value is None:
            return vcpu.guest_mem_read_u64(gva)
        vcpu.guest_mem_write_u64(gva, value)
        return None

    def _enter_syscall(self, vcpu: VCPU, task: Task, op: Syscall) -> None:
        nr = SYSCALL_NUMBERS.get(op.name)
        if nr is None:
            raise SimulationError(f"unknown syscall {op.name!r}")
        # Parameters into GPRs (the state Fig 3D/E algorithms read).
        vcpu.regs.write_gpr("rax", nr)
        for reg, arg in zip(("rbx", "rcx", "rdx"), op.args):
            if isinstance(arg, int):
                vcpu.regs.write_gpr(reg, arg & 0xFFFFFFFFFFFFFFFF)
        # The architectural gate.
        if self.config.syscall_mechanism == "sysenter":
            entry = vcpu.guest_rdmsr(IA32_SYSENTER_EIP)
            vcpu.guest_exec(entry)
        else:
            vcpu.guest_software_interrupt(0x80)
        vcpu.enter_kernel_mode()
        vcpu.charge(self.costs.syscall_dispatch_ns)
        self.syscall_count += 1
        handler = self.syscall_table.get(op.name)
        if handler is None:
            raise SimulationError(f"no handler for syscall {op.name!r}")
        gen = handler(self, task, op.args)
        task.in_kernel = True
        task.push_frame(gen, kind="syscall")
        task.send_value = None

    def _at_fault_point(self, vcpu: VCPU, task: Task, op: FaultPoint) -> None:
        if self.fault_hook is None:
            return
        effect = self.fault_hook(task, vcpu.index, op.function, op.module)
        if effect is None:
            return
        if effect.leak_lock:
            self.locks.get(effect.leak_lock).leak()
        if effect.disable_irqs:
            self.cpus[vcpu.index].irqs_enabled = False
        if effect.splice_ops:
            ops = list(effect.splice_ops)

            def _splice():
                for spliced in ops:
                    yield spliced

            task.push_frame(_splice(), kind="kops")
            task.send_value = None

    def _lock_acquire(self, vcpu: VCPU, task: Task, op: LockAcquire) -> None:
        lock = self.locks.get(op.lock_name)
        if not getattr(op, "_prepared", False):
            # spin_lock: preemption off before the first test-and-set;
            # irqsave variants also clear the local IRQ flag.
            task.preempt_count += 1
            if op.irqsave:
                self.cpus[vcpu.index].irqs_enabled = False
            op._prepared = True  # type: ignore[attr-defined]
            op._spins = 0  # type: ignore[attr-defined]
        vcpu.charge(self.costs.spinlock_op_ns)
        if lock.holder is None and lock.try_acquire(task):
            task.held_locks.append(op.lock_name)
            task.retry_op = None
            if task.state is TaskState.SPINNING:
                task.state = TaskState.RUNNING
            return
        # Contended: busy-wait.  The sampling interval backs off so a
        # permanently wedged vCPU stays cheap to simulate; in simulated
        # time the CPU never stops spinning.
        task.state = TaskState.SPINNING
        task.retry_op = op
        spins = getattr(op, "_spins", 0)
        op._spins = spins + 1  # type: ignore[attr-defined]
        backoff = min(
            self.costs.spin_poll_ns * (1 << min(spins, 12)), SPIN_BACKOFF_CAP_NS
        )
        vcpu.charge(backoff)

    def _lock_release(self, vcpu: VCPU, task: Task, op: LockRelease) -> None:
        lock = self.locks.get(op.lock_name)
        vcpu.charge(self.costs.spinlock_op_ns)
        if lock.holder is task:
            lock.release(task)
        if op.lock_name in task.held_locks:
            task.held_locks.remove(op.lock_name)
        if task.preempt_count > 0:
            task.preempt_count -= 1
        if op.irqrestore:
            self.cpus[vcpu.index].irqs_enabled = True

    def _disk_request(self, vcpu: VCPU, task: Task, op: DiskRequest) -> None:
        from repro.hw.io import PORT_DISK_CMD

        vcpu.guest_io(
            PORT_DISK_CMD, "out", value=1 if op.kind == "read" else 2
        )
        task.state = TaskState.UNINTERRUPTIBLE
        task.wait_channel = "disk"
        self._disk_waiters.append(task)


# ======================================================================
# Built-in kernel threads and init
# ======================================================================
def _khousekeepd(kernel: GuestKernel, task: Task):
    """Per-CPU housekeeping thread; its periodic wakeups bound the
    longest context-switch-free interval on a healthy CPU.

    The slower maintenance duties (dentry-LRU pruning) run only every
    few wakeups, like real memory-pressure work: this heterogeneity is
    what spreads hang-propagation latencies over seconds (Fig 5)."""
    cpu_index = task.cpu
    wakes = 0
    while True:
        yield BlockOn(f"housekeep:{cpu_index}",
                      timeout_ns=kernel.config.housekeeping_period_ns * 2)
        wakes += 1
        yield FaultPoint("run_timer_softirq", "core")
        yield LockAcquire("timer_lock")
        yield KCompute(30_000)
        yield LockRelease("timer_lock")
        yield FaultPoint("rebalance_domains", "core")
        yield LockAcquire("runqueue_lock")
        yield KCompute(15_000)
        yield LockRelease("runqueue_lock")
        if wakes % 8 == (cpu_index * 3) % 8:
            # Occasional dcache pruning (dentry LRU shrink).
            yield FaultPoint("prune_dcache", "core")
            yield LockAcquire("dcache_lock")
            yield KCompute(8_000)
            yield LockRelease("dcache_lock")


def _kflushd(kernel: GuestKernel, task: Task):
    """Dirty-buffer writeback thread (ext3/block module code paths)."""
    rounds = 0
    while True:
        yield BlockOn("kflush", timeout_ns=500 * MILLISECOND)
        rounds += 1
        yield FaultPoint("writeback_inodes", "ext3")
        yield LockAcquire("journal_lock")
        yield LockAcquire("buffer_lock")
        yield KCompute(20_000)
        yield LockRelease("buffer_lock")
        yield LockRelease("journal_lock")
        if rounds % 4 == 0:
            yield FaultPoint("submit_bio", "block")
            yield LockAcquire("queue_lock")
            yield KCompute(1_500)
            yield LockRelease("queue_lock")
            yield DiskRequest("write")


def _knetd(kernel: GuestKernel, task: Task):
    """Network housekeeping thread (ARP refresh / TCP keepalives):
    gives the transmit-path locks a periodic kernel-side user, like
    the timers and workqueue items a real network stack runs."""
    from repro.hw.io import PORT_NET_CMD

    while True:
        yield BlockOn("knetd", timeout_ns=5_000 * MILLISECOND)
        yield FaultPoint("dev_queue_xmit", "net")
        yield LockAcquire("sock_lock")
        yield KCompute(6_000)
        yield PortIo(PORT_NET_CMD, "out", value=1)
        yield LockRelease("sock_lock")


def _init_program(ctx: GuestContext):
    """pid 1: sleeps, periodically logging to the console like a real
    init/syslog pair (its tty writes give the console path a constant
    background user on whatever CPU it lands on)."""
    while True:
        yield ctx.sys_nanosleep(2_000 * MILLISECOND)
        yield ctx.compute(50_000)
        yield ctx.sys_write(1, 48)
