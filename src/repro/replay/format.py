"""Versioned trace format: the schema of recorded event streams.

A trace is a sequence of JSON records (one per line on disk):

* exactly one **header** (first line) — format version, VM identity,
  seed, vCPU count, scenario name, time span, event counts and free
  metadata (the live run's verdicts live here);
* any number of **event** records — the shared
  :meth:`~repro.core.events.GuestEvent.to_record` codec output, plus
  optional ``task``/``parent`` annotations (the record-time output of
  the architectural deriver, so replay can serve the same derivations
  without guest memory);
* any number of **scan** markers — points where the live harness asked
  an auditor to cross-validate against an untrusted view (HRKD scans);
* at most one **footer** — authoritative event counts for streams
  whose header was written before the counts were known.

Everything decoding-related raises :class:`~repro.errors.TraceFormatError`
on malformed input; replay treats that as a graceful, counted rejection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.derive import DerivedTaskInfo
from repro.core.events import GuestEvent
from repro.errors import TraceFormatError

#: Bump on any incompatible record-schema change.
FORMAT_VERSION = 1

#: Record kinds a trace line may carry.
KIND_HEADER = "header"
KIND_EVENT = "event"
KIND_SCAN = "scan"
KIND_FOOTER = "footer"

#: Alert-detail keys that are volatile across live/replay runs (clock
#: phase, liveness-evicted process counts) and excluded from verdicts.
_VOLATILE_ALERT_KEYS = frozenset({"trusted_count", "untrusted_count"})

_TASK_FIELDS = (
    "task_struct_gva", "pid", "uid", "euid", "comm", "exe", "flags",
    "parent_gva",
)


# ======================================================================
# Header
# ======================================================================
@dataclass
class TraceHeader:
    """In-band first record of every trace."""

    version: int = FORMAT_VERSION
    vm_id: str = "vm0"
    seed: int = 0
    num_vcpus: int = 2
    scenario: str = ""
    start_ns: int = 0
    end_ns: Optional[int] = None
    event_counts: Dict[str, int] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_record(self) -> Dict[str, Any]:
        return {
            "kind": KIND_HEADER,
            "version": self.version,
            "vm_id": self.vm_id,
            "seed": self.seed,
            "num_vcpus": self.num_vcpus,
            "scenario": self.scenario,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "event_counts": dict(self.event_counts),
            "meta": self.meta,
        }

    @staticmethod
    def from_record(record: Dict[str, Any]) -> "TraceHeader":
        if not isinstance(record, dict) or record.get("kind") != KIND_HEADER:
            raise TraceFormatError(f"not a trace header: {record!r}")
        version = record.get("version")
        if version != FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version!r} "
                f"(this build reads version {FORMAT_VERSION})"
            )
        num_vcpus = record.get("num_vcpus", 2)
        if not isinstance(num_vcpus, int) or num_vcpus < 1:
            raise TraceFormatError(f"bad num_vcpus {num_vcpus!r}")
        end_ns = record.get("end_ns")
        if end_ns is not None and not isinstance(end_ns, int):
            raise TraceFormatError(f"bad end_ns {end_ns!r}")
        counts = record.get("event_counts") or {}
        if not isinstance(counts, dict):
            raise TraceFormatError(f"bad event_counts {counts!r}")
        return TraceHeader(
            version=version,
            vm_id=str(record.get("vm_id", "vm0")),
            seed=int(record.get("seed", 0)),
            num_vcpus=num_vcpus,
            scenario=str(record.get("scenario", "")),
            start_ns=int(record.get("start_ns", 0)),
            end_ns=end_ns,
            event_counts={str(k): int(v) for k, v in counts.items()},
            meta=record.get("meta") or {},
        )

    @property
    def total_events(self) -> int:
        return sum(self.event_counts.values())


# ======================================================================
# Event records (+ deriver annotations)
# ======================================================================
def task_to_record(info: DerivedTaskInfo) -> Dict[str, Any]:
    """Serialize one deriver result for in-trace annotation."""
    return {name: getattr(info, name) for name in _TASK_FIELDS}


def task_from_record(record: Any) -> DerivedTaskInfo:
    if not isinstance(record, dict):
        raise TraceFormatError(f"task annotation must be a dict: {record!r}")
    try:
        gva = record["task_struct_gva"]
        pid = record["pid"]
        uid = record["uid"]
        euid = record["euid"]
        comm = record["comm"]
        exe = record["exe"]
        flags = record["flags"]
        parent_gva = record["parent_gva"]
    except KeyError as exc:
        raise TraceFormatError(f"task annotation missing {exc}") from exc
    # Well-formed annotations (the overwhelming majority) skip coercion
    # — and the frozen-dataclass __init__, whose per-field
    # object.__setattr__ round trips dominate this function's cost in
    # the replay hot loop.
    if (
        type(gva) is int and type(pid) is int and type(uid) is int
        and type(euid) is int and type(flags) is int
        and type(parent_gva) is int
        and type(comm) is str and type(exe) is str
    ):
        info = object.__new__(DerivedTaskInfo)
        info.__dict__.update(
            task_struct_gva=gva,
            pid=pid,
            uid=uid,
            euid=euid,
            comm=comm,
            exe=exe,
            flags=flags,
            parent_gva=parent_gva,
        )
        return info
    try:
        return DerivedTaskInfo(
            int(gva), int(pid), int(uid), int(euid),
            str(comm), str(exe), int(flags), int(parent_gva),
        )
    except (TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad task annotation: {exc}") from exc


def event_to_record(
    event: GuestEvent,
    task: Optional[DerivedTaskInfo] = None,
    parent: Optional[DerivedTaskInfo] = None,
) -> Dict[str, Any]:
    """One trace line for ``event``, with optional deriver annotations."""
    record = event.to_record()
    record["kind"] = KIND_EVENT
    if task is not None:
        record["task"] = task_to_record(task)
    if parent is not None:
        record["parent"] = task_to_record(parent)
    return record


def decode_event(
    record: Dict[str, Any],
) -> Tuple[GuestEvent, Optional[DerivedTaskInfo], Optional[DerivedTaskInfo]]:
    """Decode an event record back to (event, task, parent).

    Raises :class:`TraceFormatError` on any malformed field.
    """
    if not isinstance(record, dict):
        raise TraceFormatError(f"event record must be a dict: {record!r}")
    if record.get("kind", KIND_EVENT) != KIND_EVENT:
        raise TraceFormatError(f"not an event record: kind={record.get('kind')!r}")
    event = GuestEvent.from_record(record)
    task = record.get("task")
    parent = record.get("parent")
    return (
        event,
        task_from_record(task) if task is not None else None,
        task_from_record(parent) if parent is not None else None,
    )


def scan_marker(
    t_ns: int,
    auditor: str,
    view: str,
    untrusted_pids: List[int],
    untrusted_count: Optional[int] = None,
) -> Dict[str, Any]:
    """A cross-validation checkpoint (the untrusted view is data, so it
    must be recorded — replay cannot re-ask a guest that isn't there)."""
    return {
        "kind": KIND_SCAN,
        "t": int(t_ns),
        "auditor": auditor,
        "view": view,
        "untrusted_pids": [int(p) for p in untrusted_pids],
        "untrusted_count": untrusted_count,
    }


def decode_scan(record: Dict[str, Any]) -> Dict[str, Any]:
    if not isinstance(record, dict) or record.get("kind") != KIND_SCAN:
        raise TraceFormatError(f"not a scan marker: {record!r}")
    try:
        pids = [int(p) for p in record["untrusted_pids"]]
        count = record.get("untrusted_count")
        return {
            "t": int(record["t"]),
            "auditor": str(record["auditor"]),
            "view": str(record["view"]),
            "untrusted_pids": pids,
            "untrusted_count": int(count) if count is not None else None,
        }
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"bad scan marker: {exc}") from exc


# ======================================================================
# Whole traces
# ======================================================================
@dataclass
class Trace:
    """An in-memory trace: header + raw body records (no header line)."""

    header: TraceHeader
    records: List[Dict[str, Any]] = field(default_factory=list)

    def events(self) -> List[GuestEvent]:
        """Decode just the event records (strict: raises on malformed)."""
        return [
            decode_event(r)[0]
            for r in self.records
            if isinstance(r, dict) and r.get("kind") == KIND_EVENT
        ]

    def recount(self) -> Dict[str, int]:
        """Recompute ``header.event_counts`` from the body."""
        counts: Dict[str, int] = {}
        for record in self.records:
            if isinstance(record, dict) and record.get("kind") == KIND_EVENT:
                key = str(record.get("type"))
                counts[key] = counts.get(key, 0) + 1
        self.header.event_counts = counts
        return counts


# ======================================================================
# Verdict normalization
# ======================================================================
def normalize_alerts(alerts_by_auditor: Dict[str, List[dict]]) -> List[dict]:
    """Canonical, comparable form of auditor verdicts.

    Timestamps (every ``*_ns`` key) and liveness-dependent counters are
    dropped: replay re-derives *what* was detected and on *which*
    vCPU/pid, but its periodic checks fire on a clock whose phase
    differs from the live run by less than one check period.
    """
    normalized = []
    for auditor, alerts in sorted(alerts_by_auditor.items()):
        for alert in alerts:
            entry = {"auditor": auditor}
            for key, value in alert.items():
                if key == "auditor" or key.endswith("_ns"):
                    continue
                if key in _VOLATILE_ALERT_KEYS:
                    continue
                if isinstance(value, (set, frozenset)):
                    value = sorted(value)
                entry[key] = value
            normalized.append(entry)
    normalized.sort(key=lambda e: sorted((k, repr(v)) for k, v in e.items()))
    return normalized
