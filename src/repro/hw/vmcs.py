"""Virtual Machine Control Structure (per vCPU).

The VMCS holds the *execution controls* that decide which guest
operations trap (HyperTap's logging phase turns these on) and records
the most recent exit.  Field names follow Intel's VT-x nomenclature
loosely: ``cr3_load_exiting``, ``exception_bitmap`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.hw.exits import VMExit

#: Interrupt/exception vectors used by the simulated platform.
VECTOR_SOFTWARE_INT_LINUX = 0x80
VECTOR_SOFTWARE_INT_WINDOWS = 0x2E
VECTOR_TIMER = 0xEF
VECTOR_DISK = 0x2C
VECTOR_NET = 0x2D
VECTOR_IPI_RESCHED = 0xFD


@dataclass
class ExecutionControls:
    """Which guest operations cause VM Exits.

    Defaults mirror a stock KVM configuration with EPT: CR3 loads do
    *not* exit (EPT makes shadow paging unnecessary), external
    interrupts and IO do, and no software interrupts are in the
    exception bitmap.  HyperTap selectively enables the rest.
    """

    cr3_load_exiting: bool = False
    exception_bitmap: Set[int] = field(default_factory=set)
    msr_write_exiting: bool = True
    io_exiting: bool = True
    external_interrupt_exiting: bool = True
    hlt_exiting: bool = True
    apic_access_exiting: bool = True


@dataclass
class Vmcs:
    """Control structure for one vCPU."""

    controls: ExecutionControls = field(default_factory=ExecutionControls)
    last_exit: Optional[VMExit] = None
    exit_count: int = 0

    def record_exit(self, exit_event: VMExit) -> None:
        self.last_exit = exit_event
        self.exit_count += 1
