"""Tests for named random streams."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(1).stream("x").random()
        assert a == b

    def test_different_names_independent(self):
        streams = RandomStreams(1)
        a = streams.stream("a").random()
        b = streams.stream("b").random()
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(1).stream("x").random()
        b = RandomStreams(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        streams = RandomStreams(0)
        assert streams.stream("x") is streams.stream("x")

    def test_adding_stream_does_not_perturb_existing(self):
        s1 = RandomStreams(9)
        first = [s1.stream("main").random() for _ in range(3)]
        s2 = RandomStreams(9)
        s2.stream("other").random()  # interleaved draw on another stream
        second = [s2.stream("main").random() for _ in range(3)]
        assert first == second

    def test_jitter_bounds(self):
        streams = RandomStreams(3)
        for _ in range(200):
            value = streams.jitter_ns("j", 1000, 0.1)
            assert 900 <= value <= 1100

    def test_jitter_zero_base(self):
        assert RandomStreams(0).jitter_ns("j", 0, 0.5) == 0

    def test_jitter_never_negative(self):
        streams = RandomStreams(0)
        for _ in range(100):
            assert streams.jitter_ns("j", 1, 0.99) >= 1
