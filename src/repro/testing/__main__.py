"""CLI: ``python -m repro.testing
{fuzz,shrink,hut-fuzz,hut-shrink,corpus,report}``.

* ``fuzz``   — run a seeded coverage-guided campaign, write findings as
  JSONL (byte-reproducible for a given ``--seed``/``--budget``); with
  ``--corpus-dir``, exit non-zero only on findings whose key is not
  already covered by a checked-in (shrunk) corpus entry — the nightly
  contract;
* ``shrink`` — reduce a failing trace (or the built-in seeded
  known-miss) to a minimal reproducer and optionally save it as a
  corpus entry;
* ``hut-fuzz``   — the fuzzer turned around: differential fuzzing of
  the hypervisor/hardware emulation itself (``repro.testing.hut``);
  same reproducibility and ``--corpus-dir`` nightly contract, plus
  ``--jobs`` shard fan-out and ``--obs-out`` metrics export;
* ``hut-shrink`` — ddmin a hut witness program to a 1-minimal repro,
  optionally saving it as a ``tests/corpus/hut-*.jsonl`` entry;
* ``corpus`` — list or re-verify the checked-in regression entries
  (both trace entries and hut program entries);
* ``report`` — summarize a findings JSONL by key/kind/auditor.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import TraceFormatError
from repro.replay.recorder import SCENARIOS
from repro.replay.btrace import load_any_trace
from repro.replay.trace_io import save_trace
from repro.testing.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_entries,
    corpus_keys,
    save_finding,
    verify_entry,
)
from repro.testing.fuzzer import FuzzConfig, Fuzzer
from repro.testing.oracle import Discrepancy
from repro.testing.seeds import AUDITOR_SCENARIOS, known_miss_trace
from repro.testing.shrink import (
    make_finding_predicate,
    materialize_schedule,
    shrink_trace,
)


def _findings_lines(findings: List[dict]) -> List[str]:
    return [json.dumps(f, sort_keys=True) for f in findings]


# ======================================================================
# Subcommands
# ======================================================================
def cmd_fuzz(args) -> int:
    scenario = args.scenario
    if args.auditor:
        scenario = AUDITOR_SCENARIOS[args.auditor]
    config = FuzzConfig(
        scenario=scenario,
        seed=args.seed,
        budget=args.budget,
        mutations=args.mutations,
        perturb=not args.no_perturb,
        artifacts_dir=args.artifacts,
    )
    result = Fuzzer(config).run()

    lines = _findings_lines(result.findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
    print(f"fuzzed scenario {scenario!r}: {result.iterations} replays "
          f"(seed {config.seed})")
    print(f"  coverage features:  {len(result.coverage)} "
          f"({result.coverage_events} iterations added new ones)")
    print(f"  seed pool:          {result.pool_size} traces")
    print(f"  findings:           {len(result.findings)} "
          f"({len(result.unique_keys)} unique keys)")
    for key in result.unique_keys:
        print(f"    {key}")
    if args.out:
        print(f"  findings written to {args.out}")

    if args.corpus_dir is not None:
        known = set(corpus_keys(args.corpus_dir))
        new = [k for k in result.unique_keys if k not in known]
        if new:
            print(f"NEW unshrunk findings (not in {args.corpus_dir}):",
                  file=sys.stderr)
            for key in new:
                print(f"  {key}", file=sys.stderr)
            print("shrink each with `python -m repro.testing shrink` and "
                  "check the result into the corpus.", file=sys.stderr)
            return 1
        print(f"  all finding keys already covered by {args.corpus_dir}")
        return 0
    return 0


def cmd_shrink(args) -> int:
    if args.known_miss:
        trace, key = known_miss_trace(seed=args.seed)
        perturb_params = None
    else:
        if not args.trace:
            print("error: provide a trace file or --known-miss",
                  file=sys.stderr)
            return 2
        trace = load_any_trace(args.trace)
        finding = trace.header.meta.get("finding") or {}
        key = args.key or finding.get("key")
        perturb_params = finding.get("perturb")
        if key is None:
            print("error: no --key given and none recorded in the trace "
                  "header", file=sys.stderr)
            return 2

    # A perturbation finding shrinks poorly (removing records shifts
    # the seeded schedule): bake the adversarial delivery order into
    # the trace first, when the finding survives materialization.
    if perturb_params:
        materialized = materialize_schedule(trace, perturb_params)
        if make_finding_predicate(key)(materialized):
            print("materialized the perturbed schedule into the trace")
            trace, perturb_params = materialized, None

    original = len(trace.records)
    predicate = make_finding_predicate(key, perturb_params=perturb_params)
    reduced = shrink_trace(trace, predicate, max_tests=args.max_tests)
    ratio = len(reduced.records) / max(1, original)
    print(f"shrunk {original} -> {len(reduced.records)} records "
          f"({ratio:.1%}) for {key}")

    if args.corpus_dir is not None:
        kind, auditor, subject_txt = key.split(":", 2)
        subject = {}
        for part in subject_txt.split(","):
            if "=" in part:
                k, v = part.split("=", 1)
                subject[k] = int(v) if v.lstrip("-").isdigit() else v
        path = save_finding(
            args.corpus_dir,
            reduced,
            Discrepancy(kind=kind, auditor=auditor, subject=subject),
            perturb_params=perturb_params,
            original_records=original,
        )
        print(f"saved corpus entry {path}")
    elif args.out:
        save_trace(args.out, reduced)
        print(f"saved shrunk trace to {args.out}")
    return 0


def cmd_hut_fuzz(args) -> int:
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.report import export_lines
    from repro.testing.hut import (
        HutFuzzConfig,
        fuzz_hut,
        hut_corpus_keys,
        save_hut_finding,
    )

    config = HutFuzzConfig(
        target=args.target,
        seed=args.seed,
        budget=args.budget,
        length=args.length,
        mutations=args.mutations,
        bug=args.inject_bug,
    )
    result = fuzz_hut(config, jobs=args.jobs)

    lines = _findings_lines(result.findings)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")
    bug_note = f" (bug {config.bug})" if config.bug else ""
    print(f"hut-fuzzed target {config.target!r}{bug_note}: "
          f"{result.executions} executions (seed {config.seed})")
    print(f"  coverage features:  {len(result.coverage)}")
    print(f"  crashes:            {result.crashes}")
    print(f"  findings:           {len(result.findings)} unique keys")
    for key in result.unique_keys:
        print(f"    {key}")
    if args.out:
        print(f"  findings written to {args.out}")

    if args.artifacts:
        for entry in result.findings:
            path = save_hut_finding(
                args.artifacts,
                result.programs[entry["key"]],
                entry,
                bug=config.bug,
                perturb_seed=entry.get("perturb_seed"),
            )
            print(f"  witness saved: {path}")

    if args.obs_out:
        metrics = MetricsRegistry()
        metrics.counter(
            "hut.execs", target=config.target
        ).value = result.executions
        metrics.counter(
            "hut.crashes", target=config.target
        ).value = result.crashes
        by_kind: dict = {}
        for entry in result.findings:
            by_kind[entry["kind"]] = by_kind.get(entry["kind"], 0) + 1
        for kind, count in sorted(by_kind.items()):
            metrics.counter(
                "hut.findings", target=config.target, kind=kind
            ).value = count
        with open(args.obs_out, "w", encoding="utf-8") as fh:
            for line in export_lines(metrics.snapshot(), scope="pipeline"):
                fh.write(line + "\n")
        print(f"  obs export written to {args.obs_out}")

    if args.corpus_dir is not None:
        known = set(hut_corpus_keys(args.corpus_dir))
        new = [k for k in result.unique_keys if k not in known]
        if new:
            print(f"NEW unshrunk hut findings (not in {args.corpus_dir}):",
                  file=sys.stderr)
            for key in new:
                print(f"  {key}", file=sys.stderr)
            print("shrink each with `python -m repro.testing hut-shrink` "
                  "and check the result into the corpus.", file=sys.stderr)
            return 1
        print(f"  all finding keys already covered by {args.corpus_dir}")
    return 0


def cmd_hut_shrink(args) -> int:
    from repro.testing.hut import (
        load_program,
        save_program,
        save_hut_finding,
        shrink_finding,
    )

    program = load_program(args.program)
    finding = program.meta.get("finding") or {}
    key = args.key or finding.get("key")
    if key is None:
        print("error: no --key given and none recorded in the program "
              "header", file=sys.stderr)
        return 2
    bug = args.inject_bug or program.meta.get("bug")
    perturb_seed = program.meta.get("perturb_seed")
    if args.perturb_seed is not None:
        perturb_seed = args.perturb_seed

    original = len(program.ops)
    reduced = shrink_finding(
        program, key, bug=bug, perturb_seed=perturb_seed,
        max_tests=args.max_tests, jobs=args.jobs,
    )
    ratio = len(reduced.ops) / max(1, original)
    print(f"shrunk {original} -> {len(reduced.ops)} ops "
          f"({ratio:.1%}) for {key}")

    if args.corpus_dir is not None:
        if not finding:
            finding = {"key": key}
        path = save_hut_finding(
            args.corpus_dir, reduced, finding,
            bug=bug, perturb_seed=perturb_seed,
            original_ops=original,
        )
        print(f"saved hut corpus entry {path}")
    elif args.out:
        save_program(args.out, reduced)
        print(f"saved shrunk program to {args.out}")
    return 0


def cmd_corpus(args) -> int:
    from repro.testing.hut import (
        hut_corpus_entries,
        load_program,
        verify_hut_entry,
    )

    entries = corpus_entries(args.dir)
    hut_entries = hut_corpus_entries(args.dir)
    if args.action == "list":
        if not entries and not hut_entries:
            print(f"(no corpus entries under {args.dir})")
            return 0
        for path in entries:
            try:
                trace = load_any_trace(path)
                finding = trace.header.meta.get("finding") or {}
                print(f"{path}: {finding.get('key', '(no key)')} "
                      f"[{len(trace.records)} records]")
            except TraceFormatError as exc:
                print(f"{path}: UNREADABLE ({exc})")
        for path in hut_entries:
            try:
                program = load_program(path)
                finding = program.meta.get("finding") or {}
                tag = " (fixed)" if program.meta.get("fixed") else ""
                print(f"{path}: {finding.get('key', '(no key)')}{tag} "
                      f"[{len(program.ops)} ops]")
            except TraceFormatError as exc:
                print(f"{path}: UNREADABLE ({exc})")
        return 0
    # verify
    failures = 0
    for path in entries:
        ok, detail = verify_entry(path)
        status = "ok" if ok else "FAILED"
        print(f"{status:6s} {path}: {detail}")
        if not ok:
            failures += 1
    for path in hut_entries:
        ok, detail = verify_hut_entry(path)
        status = "ok" if ok else "FAILED"
        print(f"{status:6s} {path}: {detail}")
        if not ok:
            failures += 1
    total = len(entries) + len(hut_entries)
    print(f"verified {total} entries, {failures} failures")
    return 1 if failures else 0


def cmd_report(args) -> int:
    by_key = {}
    total = 0
    with open(args.findings, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            entry = json.loads(line)
            total += 1
            by_key.setdefault(entry.get("key", "?"), []).append(entry)
    print(f"{total} findings, {len(by_key)} unique keys")
    for key in sorted(by_key):
        entries = by_key[key]
        iters = sorted(e.get("iteration", -1) for e in entries)
        print(f"  {key}: {len(entries)} occurrences "
              f"(first at iteration {iters[0]})")
        sample = entries[0]
        if sample.get("detail"):
            print(f"      {sample['detail']}")
    return 0


# ======================================================================
def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testing",
        description="Coverage-guided adversarial conformance harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fuzz = sub.add_parser("fuzz", help="run a seeded fuzzing campaign")
    p_fuzz.add_argument("--scenario", default="exploit",
                        choices=sorted(SCENARIOS))
    p_fuzz.add_argument("--auditor", default=None,
                        choices=sorted(AUDITOR_SCENARIOS),
                        help="shorthand: pick the scenario exercising "
                             "this auditor")
    p_fuzz.add_argument("--budget", type=int, default=50,
                        help="number of mutated/perturbed replays")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument("--mutations", type=int, default=2)
    p_fuzz.add_argument("--no-perturb", action="store_true",
                        help="trace mutations only, no schedule "
                             "perturbation")
    p_fuzz.add_argument("--out", default=None,
                        help="write findings JSONL here")
    p_fuzz.add_argument("--artifacts", default=None,
                        help="save the first trace exhibiting each "
                             "finding key into this directory")
    p_fuzz.add_argument("--corpus-dir", default=None,
                        help="fail only on finding keys not already "
                             "covered by this corpus (nightly mode)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_shrink = sub.add_parser("shrink", help="minimize a failing trace")
    p_shrink.add_argument("trace", nargs="?", default=None)
    p_shrink.add_argument("--known-miss", action="store_true",
                          help="shrink the built-in seeded HRKD "
                               "known-miss instead of a file")
    p_shrink.add_argument("--key", default=None,
                          help="finding key to preserve (default: the "
                               "one recorded in the trace header)")
    p_shrink.add_argument("--seed", type=int, default=0,
                          help="seed for --known-miss")
    p_shrink.add_argument("--max-tests", type=int, default=2000)
    p_shrink.add_argument("--out", default=None,
                          help="write the shrunk trace here")
    p_shrink.add_argument("--corpus-dir", default=None,
                          help="save the shrunk trace as a corpus entry")
    p_shrink.set_defaults(func=cmd_shrink)

    p_hut = sub.add_parser(
        "hut-fuzz",
        help="differential-fuzz the hypervisor/hardware emulation",
    )
    from repro.testing.hut.bugs import SEEDED_BUGS as _HUT_BUGS
    from repro.testing.hut.program import TARGETS as _HUT_TARGETS

    p_hut.add_argument("--target", default="ept",
                       choices=sorted(_HUT_TARGETS))
    p_hut.add_argument("--seed", type=int, default=0)
    p_hut.add_argument("--budget", type=int, default=60,
                       help="candidate executions across all shards")
    p_hut.add_argument("--length", type=int, default=48,
                       help="ops in each shard's baseline program")
    p_hut.add_argument("--mutations", type=int, default=2)
    p_hut.add_argument("--jobs", type=int, default=None,
                       help="worker processes for the shard fan-out "
                            "(default: REPRO_JOBS; results are "
                            "byte-identical at any job count)")
    p_hut.add_argument("--inject-bug", default=None,
                       choices=sorted(_HUT_BUGS),
                       help="run with this seeded emulator bug "
                            "(mutation-kill audit)")
    p_hut.add_argument("--out", default=None,
                       help="write findings JSONL here")
    p_hut.add_argument("--artifacts", default=None,
                       help="save the first program exhibiting each "
                            "finding key into this directory")
    p_hut.add_argument("--obs-out", default=None,
                       help="write hut.* metrics (canonical obs export "
                            "lines) here")
    p_hut.add_argument("--corpus-dir", default=None,
                       help="fail only on finding keys not already "
                            "covered by hut-* corpus entries "
                            "(nightly mode)")
    p_hut.set_defaults(func=cmd_hut_fuzz)

    p_hshrink = sub.add_parser(
        "hut-shrink", help="minimize a hut witness program"
    )
    p_hshrink.add_argument("program", help="hut program JSONL file")
    p_hshrink.add_argument("--key", default=None,
                           help="finding key to preserve (default: the "
                                "one recorded in the program header)")
    p_hshrink.add_argument("--inject-bug", default=None,
                           choices=sorted(_HUT_BUGS),
                           help="seeded bug to re-inject (default: the "
                                "one recorded in the program header)")
    p_hshrink.add_argument("--perturb-seed", type=int, default=None)
    p_hshrink.add_argument("--max-tests", type=int, default=400)
    p_hshrink.add_argument("--jobs", type=int, default=None,
                           help="speculative ddmin workers (result is "
                                "byte-identical at any job count)")
    p_hshrink.add_argument("--out", default=None,
                           help="write the shrunk program here")
    p_hshrink.add_argument("--corpus-dir", default=None,
                           help="save the shrunk program as a hut "
                                "corpus entry")
    p_hshrink.set_defaults(func=cmd_hut_shrink)

    p_corpus = sub.add_parser("corpus", help="list/verify regression "
                                             "entries")
    p_corpus.add_argument("action", choices=("list", "verify"))
    p_corpus.add_argument("--dir", default=DEFAULT_CORPUS_DIR)
    p_corpus.set_defaults(func=cmd_corpus)

    p_report = sub.add_parser("report", help="summarize a findings JSONL")
    p_report.add_argument("findings")
    p_report.set_defaults(func=cmd_report)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (TraceFormatError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
