"""Performance ledger for the reproduction pipeline.

``python -m repro.bench`` runs the benchmark suite at a fixed scale and
appends one ``BENCH_<n>.json`` entry to the ledger directory
(``benchmarks/ledger`` by default).  Each entry records:

* replay throughput (events/sec): the btrace decode hot path
  (:mod:`repro.replay.btrace`) as the headline column, with the
  gzip-JSONL interchange pipeline tracked alongside,
* fault-campaign throughput (trials/sec, serial and parallel, plus the
  measured speedup at the requested job count),
* wall time per experiment figure (the :mod:`repro.experiments` grid),
* service SLOs (:mod:`repro.serve`): sustained events/sec ingested and
  p99 exit-to-verdict latency under a seeded burst,
* hut differential throughput (:mod:`repro.testing.hut` fuzz
  executions/sec through the real-stack + reference-model pair),
* causal-tracing overhead (``trace_overhead_pct``: relative events/s
  loss replaying with spans on vs off, ceiling-gated at 5%).

Entries are numbered, never overwritten, and comparable: ``--check``
diffs the fresh measurements against the most recent existing entry and
fails on any metric that regressed beyond a configurable threshold
(20% by default).  Throughputs regress downward, wall times regress
upward; the comparison knows which direction is bad for each metric.
``--check`` additionally enforces the absolute floors in ``_FLOORS``
(btrace decode ≥ 1M events/s, fan-out speedup ≥ 1.8x at two workers)
and the ceilings in ``_CEILINGS`` (tracing overhead ≤ 5%) whenever the
run's scale/jobs knobs make the bound meaningful — even on a baseline
run with an empty ledger.

Every measured workload is deterministic (seeded grids through
:mod:`repro.parallel`), so run-to-run metric noise is purely
machine-load jitter — the threshold exists to absorb exactly that.
Every wall-clock read goes through :mod:`repro.prof`, the one module
the determinism rule lets touch the host clock: ``perf_counter`` for
the throughput columns, ``wall_unix_time`` for the single provenance
timestamp per entry, and ``profile_scope`` so ``--profile`` can render
a per-stage breakdown of the suite itself.
"""

from __future__ import annotations

import json
import math
import os
import platform
import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.prof import perf_counter, profile_scope, wall_unix_time

#: Ledger entries: BENCH_0001.json, BENCH_0002.json, ...
LEDGER_FILE_RE = re.compile(r"^BENCH_(\d{4,})\.json$")

DEFAULT_LEDGER_DIR = os.path.join("benchmarks", "ledger")

#: Fractional change beyond which ``--check`` fails (0.20 = 20%).
DEFAULT_THRESHOLD = 0.20

SCHEMA_VERSION = 1

#: Figures timed by the standard run; ``--quick`` keeps only the first.
#: fig4/fig5 are covered by the dedicated campaign measurement, so the
#: figure list sticks to the cheaper single-VM experiment grids.
STANDARD_FIGURES: Tuple[str, ...] = ("table3", "ninjas", "fig7")


# ======================================================================
# Measurements
# ======================================================================
#: The btrace decode corpus: one recorded scenario tiled (with shifted
#: timestamps) to roughly this many records at ``scale=1.0``.  Tiling a
#: real trace keeps the event-type mix honest — a synthetic corpus of
#: one cheap type would flatter the decoder.
BTRACE_CORPUS_RECORDS = 200_000
BTRACE_CORPUS_SCENARIO = "rootkit"


def _btrace_corpus(scale: float, path: str) -> Dict[str, Any]:
    """Record ``BTRACE_CORPUS_SCENARIO`` once, tile it to
    ``scale * BTRACE_CORPUS_RECORDS`` records, write it to ``path`` as
    btrace, and report corpus provenance."""
    from repro.replay.btrace import BinaryTraceWriter
    from repro.replay.recorder import record_scenario

    run = record_scenario(BTRACE_CORPUS_SCENARIO, seed=0)
    base = run.trace.records
    target = max(len(base), int(round(BTRACE_CORPUS_RECORDS * scale)))
    tiles = max(1, -(-target // len(base)))
    span = max(r["t"] for r in base) + 1
    writer = BinaryTraceWriter(path, run.trace.header)
    for tile in range(tiles):
        shift = tile * span
        for record in base:
            copy = dict(record)
            copy["t"] = record["t"] + shift
            writer.write_record(copy)
    writer.close()
    return {
        "scenario": BTRACE_CORPUS_SCENARIO,
        "records": writer.records_written,
        "tiles": tiles,
        "bytes": os.path.getsize(path),
        "strings": writer.strings_interned,
        "escapes": writer.escapes,
    }


def _time_btrace_decode(path: str, rounds: int) -> Tuple[int, float]:
    """Best-of-``rounds`` full decode of the btrace corpus at ``path``,
    touching ``time_ns`` on every event (a field the hot replay loop
    cannot avoid reading), gc paused inside the timed region.

    Returns ``(events_decoded, best_wall_seconds)``.
    """
    import gc

    from repro.replay.btrace import BinaryTraceReader

    best = float("inf")
    events = 0
    for _ in range(max(1, rounds)):
        reader = BinaryTraceReader(path)
        try:
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                n = 0
                last_t = 0
                t0 = perf_counter()
                for event in reader.events():
                    last_t = event.time_ns
                    n += 1
                wall = perf_counter() - t0
            finally:
                if gc_was_enabled:
                    gc.enable()
        finally:
            reader.close()
        assert last_t >= 0  # keep the per-event read observable
        events = n
        best = min(best, wall)
    return events, best


def measure_replay(
    rounds: int = 3,
    scenarios: Optional[List[str]] = None,
    scale: float = 1.0,
) -> Dict[str, Any]:
    """Replay throughput, measured on both trace formats.

    The ledger column (``events_per_s`` here, ``replay_events_per_s``
    in the entry) is the **btrace decode rate**: records/sec through
    :class:`repro.replay.btrace.BinaryTraceReader` over a ~200k-record
    tiled corpus, best of ``rounds``, touching ``time_ns`` per event.
    This is the hot path replay, fuzz and shard workers actually sit
    on, so it is what the ≥1M floor gates.

    The gzip-JSONL *pipeline* rate (full :class:`ReplaySource` run with
    live auditors per scenario) stays in the detail block: it is the
    interchange-format number earlier ledger entries reported, and the
    regression satellite tracks it separately.
    """
    import shutil
    import tempfile

    from repro.replay.recorder import SCENARIOS, record_scenario
    from repro.replay.source import ReplaySource

    # --- btrace decode hot path (the gated column) --------------------
    tmp_dir = tempfile.mkdtemp(prefix="repro-bench-btrace-")
    try:
        corpus_path = os.path.join(tmp_dir, "corpus.btr")
        corpus = _btrace_corpus(scale, corpus_path)
        decoded, best_decode_wall = _time_btrace_decode(corpus_path, rounds)
    finally:
        shutil.rmtree(tmp_dir, ignore_errors=True)
    decode_rate = decoded / best_decode_wall if best_decode_wall > 0 else 0.0

    # --- gzip-JSONL pipeline (interchange format, detail only) --------
    names = sorted(SCENARIOS) if scenarios is None else list(scenarios)
    total_events = 0
    total_best_wall = 0.0
    per_scenario: Dict[str, Any] = {}
    for name in names:
        run = record_scenario(name, seed=0)
        walls = []
        reproduced = True
        for _ in range(max(1, rounds)):
            report = ReplaySource(
                run.trace, SCENARIOS[name].build_auditors()
            ).run()
            walls.append(report.wall_seconds)
            reproduced = reproduced and report.matches_live(run.live_verdicts)
        best = min(walls)
        total_events += report.events_replayed
        total_best_wall += best
        per_scenario[name] = {
            "events": report.events_replayed,
            "best_wall_s": best,
            "events_per_s": report.events_replayed / best if best > 0 else 0.0,
            "reproduced": reproduced,
        }
    pipeline_rate = (
        total_events / total_best_wall if total_best_wall > 0 else 0.0
    )
    return {
        "events_per_s": decode_rate,
        "total_events": decoded,
        "rounds": rounds,
        "btrace": dict(
            corpus, best_wall_s=best_decode_wall, events_per_s=decode_rate
        ),
        "pipeline": {
            "events_per_s": pipeline_rate,
            "total_events": total_events,
            "scenarios": per_scenario,
        },
    }


def _campaign_grid(scale: float):
    """A small stratified slice of the §VIII-A grid, scaled."""
    from repro.faults.campaign import TrialConfig, iter_trial_grid
    from repro.faults.injector import InjectionMode
    from repro.faults.sites import build_site_catalog
    from repro.sim.clock import SECOND

    n_sites = max(1, int(round(2 * scale)))
    first_pass = [s for s in build_site_catalog() if s.activation_pass == 1]
    sites = first_pass[:: max(1, len(first_pass) // n_sites)][:n_sites]
    return iter_trial_grid(
        sites,
        workloads=("hanoi", "http"),
        modes=(InjectionMode.TRANSIENT,),
        preempt_options=(False, True),
        seeds=(0,),
        base_config=TrialConfig(
            warmup_ns=1 * SECOND,
            detect_window_ns=6 * SECOND,
            classify_window_ns=8 * SECOND,
        ),
    )


def _lpt_makespan(costs: List[float], bins: int) -> float:
    """Longest-processing-time-first schedule of ``costs`` onto ``bins``
    workers; returns the loaded-worker finish time (the makespan)."""
    loads = [0.0] * max(1, int(bins))
    for cost in sorted(costs, reverse=True):
        loads[loads.index(min(loads))] += cost
    return max(loads)


def measure_campaign(
    scale: float = 1.0, jobs: int = 1, rounds: int = 2
) -> Dict[str, Any]:
    """Time a fixed fault-injection grid serially and fanned out at
    ``jobs`` workers, verify the runs produced identical results, and
    report trials/sec both ways plus the fan-out speedup.

    ``speedup`` is the **critical-path** speedup: serial wall divided
    by (LPT makespan of per-chunk worker CPU seconds over ``jobs``
    workers) + (measured parallel wall − total worker CPU, i.e. every
    real dispatch/pickle/merge cost, floored at zero).  On a machine
    with ``jobs`` free cores this equals the plain wall ratio; on a
    core-starved CI box the wall ratio measures the OS scheduler's
    timesharing, not the executor, while the critical path still moves
    whenever chunking, dispatch overhead, or merge cost regress —
    which is exactly what the ledger floor needs to gate.

    Both sides take the best of ``rounds`` (min serial wall; min
    modeled critical-path wall), the same jitter discipline as the
    replay column: transient machine load can only slow a round down,
    so the minimum is the least-contaminated estimate of each.
    """
    from repro.faults.campaign import _trial_task
    from repro.parallel import parallel_map, warm_pool

    grid = _campaign_grid(scale)
    rounds = max(1, rounds)
    serial_wall = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        serial = parallel_map(_trial_task, grid, jobs=1)
        serial_wall = min(serial_wall, perf_counter() - t0)

    parallel_wall = serial_wall
    modeled_wall = serial_wall
    overhead = 0.0
    identical = True
    best_stats: Dict[str, Any] = {}
    est_cpu: List[float] = []
    if jobs > 1:
        # Fork the workers and push one untimed round through them
        # first: the ledger gates steady-state dispatch + merge, not
        # process creation or each worker's first-trial warm-up (cold
        # allocator arenas and copy-on-write page faults inflate the
        # first chunk's CPU by ~10%).
        warm_pool(jobs)
        parallel_map(_trial_task, grid, jobs=jobs)
        overhead = float("inf")
        round_cpu: List[List[float]] = []
        for _ in range(rounds):
            stats: Dict[str, Any] = {}
            t0 = perf_counter()
            fanned = parallel_map(_trial_task, grid, jobs=jobs, stats=stats)
            wall = perf_counter() - t0
            identical = identical and fanned == serial
            chunk_cpu = stats.get("chunk_cpu_s", [])
            round_overhead = max(0.0, wall - sum(chunk_cpu))
            if round_overhead < overhead:
                overhead = round_overhead
                parallel_wall = wall
                best_stats = stats
            round_cpu.append(chunk_cpu)
        # Chunking is deterministic, so chunk *i* runs the same trials
        # every round: its CPU cost is a property of the work, and the
        # per-chunk minimum across rounds is the least-contaminated
        # estimate of it (transient load can only inflate CPU seconds
        # via frequency scaling).  Fall back to whole-round figures if
        # a worker death made some round's chunk list shorter.
        lengths = {len(cpu) for cpu in round_cpu}
        if len(lengths) == 1:
            est_cpu = [min(col) for col in zip(*round_cpu)]
        else:
            est_cpu = list(best_stats.get("chunk_cpu_s", []))
        modeled_wall = _lpt_makespan(est_cpu, jobs) + overhead

    trials = len(grid)
    return {
        "trials": trials,
        "jobs": jobs,
        "rounds": rounds,
        "serial_wall_s": serial_wall,
        "parallel_wall_s": parallel_wall,
        "critical_path_wall_s": modeled_wall,
        "fanout_overhead_s": overhead,
        "chunks": best_stats.get("chunks", 0),
        "chunk_cpu_s": est_cpu,
        "trials_per_s_serial": trials / serial_wall if serial_wall > 0 else 0.0,
        "trials_per_s_parallel": (
            trials / modeled_wall if modeled_wall > 0 else 0.0
        ),
        "speedup": serial_wall / modeled_wall if modeled_wall > 0 else 0.0,
        "parallel_identical": identical,
    }


#: Scenarios whose observability columns enter the ledger.  Exploit and
#: hang exercise the two latency regimes: an in-delivery verdict
#: (HT-Ninja blocks on the triggering event) vs. a timer-driven one
#: (GOSHD alarms seconds after the last event it saw).
OBS_SCENARIOS: Tuple[str, ...] = ("exploit", "hang")


def measure_obs(
    scenarios: Tuple[str, ...] = OBS_SCENARIOS,
) -> Dict[str, Any]:
    """Virtual-clock observability columns (``repro.obs``).

    Unlike every other measurement here these are **deterministic**:
    exit rate per *simulated* second and mean exit-to-verdict latency
    are pure functions of ``(scenario, seed)``, so ``--check`` compares
    them exactly — any drift means pipeline behaviour changed, not that
    the machine was busy.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.replay.recorder import record_scenario
    from repro.sim.clock import SECOND

    exit_rates: Dict[str, float] = {}
    verdict_means: Dict[str, float] = {}
    per_scenario: Dict[str, Any] = {}
    for name in scenarios:
        run = record_scenario(name, seed=0)
        registry = MetricsRegistry.from_snapshot(run.metrics)
        exits = registry.total("exits")
        end_ns = run.trace.header.end_ns or 0
        sim_seconds = end_ns / SECOND
        latency_count = 0
        latency_sum = 0
        for row_name, _labels, hist in registry.histogram_rows():
            if row_name == "latency.exit_to_verdict_ns":
                latency_count += hist.count
                latency_sum += hist.sum
        exit_rates[name] = exits / sim_seconds if sim_seconds > 0 else 0.0
        verdict_means[name] = (
            latency_sum / latency_count if latency_count else 0.0
        )
        per_scenario[name] = {
            "exits": exits,
            "sim_seconds": sim_seconds,
            "verdicts_observed": latency_count,
        }
    return {
        "exit_rate_per_sim_s": exit_rates,
        "exit_to_verdict_mean_ns": verdict_means,
        "scenarios": per_scenario,
    }


#: The serve SLO workload: spike profile at a fixed seed — the
#: p99-under-burst column tracks exactly this plan.
SERVE_PROFILE = "spike"
SERVE_SEED = 0


def measure_serve(scale: float = 1.0) -> Dict[str, Any]:
    """Service-mode SLO columns (:mod:`repro.serve`).

    Runs a seeded spike-profile load plan through the same whole-stream
    task the socket service shards
    (:func:`repro.serve.pipeline.run_stream_spec`), socket-free — the
    transport paces frame delivery but cannot move these numbers.  Two
    columns enter the ledger:

    * ``serve_sustained_events_per_s`` — wall-measured ingest rate,
      thresholded like every other throughput;
    * ``serve_p99_exit_to_verdict_ns`` — p99 exit-to-verdict latency
      under the burst.  Like the ``obs_*`` columns this is a pure
      function of the virtual clocks, so ``--check`` compares it
      exactly: any drift means admission or pipeline behaviour changed.
    """
    from repro.obs.metrics import Histogram, merge_snapshots
    from repro.serve.load import build_plan
    from repro.serve.pipeline import run_stream_spec

    streams = max(2, int(round(4 * scale)))
    plan = build_plan(SERVE_PROFILE, SERVE_SEED, streams)
    t0 = perf_counter()
    results = [run_stream_spec(spec) for spec in plan]
    wall = perf_counter() - t0

    offered = sum(r["payload"]["offered"] for r in results)
    admitted = sum(r["payload"]["admitted"] for r in results)
    dropped: Dict[str, int] = {}
    for result in results:
        for reason, n in (result["payload"]["dropped"] or {}).items():
            dropped[reason] = dropped.get(reason, 0) + n

    merged = merge_snapshots(r["snapshot"] for r in results)
    latency = Histogram()
    for name, _labels, hist in merged.histogram_rows():
        if name != "serve.latency.exit_to_verdict_ns":
            continue
        latency.count += hist.count
        latency.sum += hist.sum
        if hist.min is not None:
            latency.min = (
                hist.min if latency.min is None else min(latency.min, hist.min)
            )
        if hist.max is not None:
            latency.max = (
                hist.max if latency.max is None else max(latency.max, hist.max)
            )
        for i, cell in enumerate(hist.buckets):
            latency.buckets[i] += cell

    return {
        "profile": SERVE_PROFILE,
        "seed": SERVE_SEED,
        "streams": streams,
        "events": offered,
        "admitted": admitted,
        "dropped": dropped,
        "wall_s": wall,
        "sustained_events_per_s": offered / wall if wall > 0 else 0.0,
        "p50_exit_to_verdict_ns": latency.percentile(0.5),
        "p99_exit_to_verdict_ns": latency.percentile(0.99),
        "reproduced": all(
            r["payload"]["reproduced"] is not False for r in results
        ),
    }


def measure_figures(
    figures: Tuple[str, ...] = STANDARD_FIGURES, scale: float = 1.0
) -> Dict[str, float]:
    """Wall seconds to regenerate each experiment figure at ``scale``."""
    from repro.experiments.runners import run_experiment

    walls: Dict[str, float] = {}
    for name in figures:
        t0 = perf_counter()
        run_experiment(name, scale=scale)
        walls[name] = perf_counter() - t0
    return walls


def measure_hut(scale: float = 1.0, rounds: int = 3) -> Dict[str, Any]:
    """hut-fuzz candidate throughput (executions/sec, wall-measured).

    Runs one small fixed-seed clean campaign per target through the
    full differential pair (real stack + reference model + oracle);
    the resulting ``hut_execs_per_s`` column keeps the cost of one
    fuzz execution visible — an emulation or oracle change that makes
    candidates drastically slower shows up in ``--check``, not in the
    nightly job's runtime.  Clean campaigns must stay silent; a finding
    here is a correctness failure, reported in the detail block.

    Best-of-``rounds`` (floored at 3), like every other wall column:
    the campaigns are seeded, so each round repeats the identical
    execution set and only machine-load jitter varies — a single
    sub-second sweep otherwise swings past the ``--check`` threshold.
    """
    from repro.testing.hut import HutFuzzConfig, TARGETS, fuzz_hut

    budget = max(4, int(round(8 * scale)))
    wall = float("inf")
    per_target: Dict[str, Any] = {}
    executions = 0
    findings = 0
    for _ in range(max(3, rounds)):
        per_target = {}
        executions = 0
        findings = 0
        t0 = perf_counter()
        for target in TARGETS:
            result = fuzz_hut(
                HutFuzzConfig(target=target, seed=2026, budget=budget)
            )
            executions += result.executions
            findings += len(result.findings)
            per_target[target] = {
                "executions": result.executions,
                "findings": len(result.findings),
                "coverage_features": len(result.coverage),
            }
        wall = min(wall, perf_counter() - t0)
    return {
        "wall_s": wall,
        "executions": executions,
        "execs_per_s": executions / wall if wall > 0 else 0.0,
        "budget_per_target": budget,
        "rounds": max(3, rounds),
        "clean": findings == 0,
        "targets": per_target,
    }


#: The trace-overhead workload: the exploit scenario replayed
#: repeatedly per timed region, once with causal tracing on and once
#: with it off.  Exploit exercises both span shapes (in-delivery
#: verdicts via HT-Ninja, plus the full publish fan-out).
TRACE_OVERHEAD_SCENARIO = "exploit"
TRACE_OVERHEAD_REPS = 50


def measure_trace_overhead(rounds: int = 3) -> Dict[str, Any]:
    """Cost of causal tracing: events/s with spans on vs off.

    Replays the same recorded trace ``TRACE_OVERHEAD_REPS`` times per
    timed region through identical fresh auditors, with
    ``MetricsRegistry(tracing=True)`` vs ``tracing=False``; the two
    sides run interleaved within each round and each takes its
    best-of-``rounds`` wall, so machine-load jitter hits both alike.
    Each side holds ONE registry across every rep — the regime a
    long-lived monitoring service runs in — so the column prices the
    steady state (ring full, drops counted per publish), not the
    one-time ring-fill transient of the first ``span_limit`` events.
    The ledger column ``trace_overhead_pct`` is the relative events/s
    loss with tracing on, gated by the ``--check`` ceiling (≤ 5%).

    ``rounds`` is floored at 5 regardless of the suite-wide knob: this
    column is a *ratio of two minima* over ~0.2 s regions, so it needs
    more samples than the absolute throughput columns to keep one
    scheduler hiccup on either side from swinging the quotient.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.replay.recorder import SCENARIOS, record_scenario
    from repro.replay.source import ReplaySource

    rounds = max(5, rounds)
    run = record_scenario(TRACE_OVERHEAD_SCENARIO, seed=0)
    build = SCENARIOS[TRACE_OVERHEAD_SCENARIO].build_auditors
    registries = {
        tracing: MetricsRegistry(tracing=tracing)
        for tracing in (True, False)
    }
    walls = {True: float("inf"), False: float("inf")}
    events_per_rep = 0
    for _ in range(max(1, rounds)):
        for tracing in (True, False):
            metrics = registries[tracing]
            t0 = perf_counter()
            for _rep in range(TRACE_OVERHEAD_REPS):
                report = ReplaySource(
                    run.trace,
                    build(),
                    metrics=metrics,
                ).run()
            walls[tracing] = min(walls[tracing], perf_counter() - t0)
            events_per_rep = report.events_replayed
    events = events_per_rep * TRACE_OVERHEAD_REPS
    rate_on = events / walls[True] if walls[True] > 0 else 0.0
    rate_off = events / walls[False] if walls[False] > 0 else 0.0
    overhead_pct = (
        max(0.0, (rate_off - rate_on) / rate_off * 100.0)
        if rate_off > 0
        else 0.0
    )
    return {
        "scenario": TRACE_OVERHEAD_SCENARIO,
        "reps": TRACE_OVERHEAD_REPS,
        "rounds": max(1, rounds),
        "events": events,
        "events_per_s_tracing_on": rate_on,
        "events_per_s_tracing_off": rate_off,
        "overhead_pct": overhead_pct,
    }


def measure_analysis(jobs: int = 1, rounds: int = 2) -> Dict[str, Any]:
    """Wall seconds for a full ``repro.analysis`` sweep of this tree.

    The flow rules made the analyzer interprocedural (call graph, CFGs,
    taint summaries); this column keeps that cost visible so a rule
    change that blows up the fixpoint shows up in ``--check`` instead
    of in everyone's pre-commit latency.  Best-of-``rounds``, like the
    throughput columns: a single multi-second sweep swings ~20% with
    machine load, which is exactly the gate's threshold.
    """
    from repro.analysis.__main__ import default_root
    from repro.analysis.runner import run_analysis

    root = default_root()
    wall = math.inf
    report = None
    for _ in range(max(1, int(rounds))):
        t0 = perf_counter()
        report = run_analysis(root, jobs=jobs)
        wall = min(wall, perf_counter() - t0)
    return {
        "wall_s": wall,
        "files_scanned": report.files_scanned,
        "findings": len(report.findings),
        "rules": len(report.rules),
        "jobs": jobs,
        "rounds": max(1, int(rounds)),
    }


def collect(
    scale: float = 1.0,
    jobs: int = 1,
    rounds: int = 3,
    figures: Tuple[str, ...] = STANDARD_FIGURES,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run every measurement and assemble one ledger entry (unwritten)."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    with profile_scope("bench"), profile_scope("replay"):
        say("replay throughput ...")
        replay = measure_replay(rounds=rounds, scale=scale)
    with profile_scope("bench"), profile_scope("campaign"):
        say("campaign throughput ...")
        campaign = measure_campaign(scale=scale, jobs=jobs, rounds=rounds)
    with profile_scope("bench"), profile_scope("obs"):
        say("observability columns ...")
        obs = measure_obs()
    with profile_scope("bench"), profile_scope("serve"):
        say("serve SLOs ...")
        serve = measure_serve(scale=scale)
    with profile_scope("bench"), profile_scope("figures"):
        say(f"figures {', '.join(figures) or '(none)'} ...")
        figure_walls = measure_figures(figures, scale=scale)
    with profile_scope("bench"), profile_scope("hut"):
        say("hut differential throughput ...")
        hut = measure_hut(scale=scale, rounds=rounds)
    with profile_scope("bench"), profile_scope("trace-overhead"):
        say("trace overhead ...")
        trace_overhead = measure_trace_overhead(rounds=rounds)
    with profile_scope("bench"), profile_scope("analysis"):
        say("static analysis wall ...")
        analysis = measure_analysis()
    return {
        "schema": SCHEMA_VERSION,
        "written_at_unix": wall_unix_time(),
        "scale": scale,
        "jobs": jobs,
        "python": platform.python_version(),
        "metrics": {
            "replay_events_per_s": replay["events_per_s"],
            "replay_pipeline_events_per_s": replay["pipeline"]["events_per_s"],
            "campaign_trials_per_s_serial": campaign["trials_per_s_serial"],
            "campaign_trials_per_s_parallel": campaign[
                "trials_per_s_parallel"
            ],
            "parallel_speedup": campaign["speedup"],
            "figure_wall_s": figure_walls,
            "obs_exit_rate_per_sim_s": obs["exit_rate_per_sim_s"],
            "obs_exit_to_verdict_mean_ns": obs["exit_to_verdict_mean_ns"],
            "serve_sustained_events_per_s": serve["sustained_events_per_s"],
            "serve_p99_exit_to_verdict_ns": serve["p99_exit_to_verdict_ns"],
            "analysis_wall_s": analysis["wall_s"],
            "hut_execs_per_s": hut["execs_per_s"],
            "trace_overhead_pct": trace_overhead["overhead_pct"],
        },
        "detail": {
            "replay": replay,
            "campaign": campaign,
            "obs": obs,
            "serve": serve,
            "analysis": analysis,
            "hut": hut,
            "trace_overhead": trace_overhead,
        },
    }


# ======================================================================
# Ledger
# ======================================================================
def ledger_entries(ledger_dir: str) -> List[Tuple[int, str]]:
    """Sorted ``(number, path)`` for every ledger entry on disk."""
    if not os.path.isdir(ledger_dir):
        return []
    found = []
    for name in os.listdir(ledger_dir):
        match = LEDGER_FILE_RE.match(name)
        if match is not None:
            found.append((int(match.group(1)), os.path.join(ledger_dir, name)))
    return sorted(found)


def latest_entry(ledger_dir: str) -> Optional[Dict[str, Any]]:
    """The most recent ledger entry, or ``None`` on an empty ledger."""
    entries = ledger_entries(ledger_dir)
    if not entries:
        return None
    with open(entries[-1][1], "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_entry(ledger_dir: str, entry: Dict[str, Any]) -> str:
    """Append ``entry`` as the next ``BENCH_<n>.json``; returns its path."""
    os.makedirs(ledger_dir, exist_ok=True)
    entries = ledger_entries(ledger_dir)
    number = entries[-1][0] + 1 if entries else 1
    path = os.path.join(ledger_dir, f"BENCH_{number:04d}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# ======================================================================
# Regression comparison
# ======================================================================
#: Scalar metrics where *lower* current values are regressions.
_HIGHER_IS_BETTER = (
    "replay_events_per_s",
    "replay_pipeline_events_per_s",
    "campaign_trials_per_s_serial",
    "campaign_trials_per_s_parallel",
    "parallel_speedup",
    "serve_sustained_events_per_s",
    "hut_execs_per_s",
)

#: Absolute floors gated by ``--check``, independent of any previous
#: ledger entry: ``(metric, floor, min_scale, min_jobs)``.  A floor only
#: applies at representative knobs — ``min_scale`` keeps the tiny grids
#: unit tests run (scale 0.25) out of the gate, because at those sizes
#: fixed costs dominate and the number measures the harness, not the
#: code; ``min_jobs`` keeps single-worker runs from being asked to show
#: a fan-out win.
_FLOORS: Tuple[Tuple[str, float, float, int], ...] = (
    # The btrace decode hot path: a record layout or view-class change
    # that costs 10x shows up here, not in a nightly timeout.
    ("replay_events_per_s", 1_000_000.0, 0.5, 1),
    # Critical-path fan-out win at two workers: dispatch, chunking or
    # merge overhead creeping back up breaks this before it breaks CI.
    ("parallel_speedup", 1.8, 0.5, 2),
)

#: Absolute ceilings gated by ``--check``, same knob semantics as
#: ``_FLOORS`` but failing when the value climbs *above* the bound.
_CEILINGS: Tuple[Tuple[str, float, float, int], ...] = (
    # Causal tracing must stay effectively free on the replay hot
    # path: events/s with spans on may trail spans off by at most 5%.
    ("trace_overhead_pct", 5.0, 0.5, 1),
)


def floor_problems(entry: Dict[str, Any]) -> List[str]:
    """Floor/ceiling violations for a fresh entry; empty means all hold.

    Unlike :func:`compare_entries` this needs no previous entry — the
    floors are absolute contracts from the ledger's history, so even a
    baseline run on an empty ledger is gated.
    """
    problems: List[str] = []
    scale = float(entry.get("scale") or 0.0)
    jobs = int(entry.get("jobs") or 1)
    metrics = entry.get("metrics", {})
    for name, floor, min_scale, min_jobs in _FLOORS:
        if scale < min_scale or jobs < min_jobs:
            continue
        value = metrics.get(name)
        if value is None:
            problems.append(
                f"{name}: missing from entry (floor {floor:,.2f})"
            )
        elif value < floor:
            problems.append(
                f"{name}: {value:,.2f} below the absolute floor "
                f"{floor:,.2f} (scale={scale}, jobs={jobs})"
            )
    for name, ceiling, min_scale, min_jobs in _CEILINGS:
        if scale < min_scale or jobs < min_jobs:
            continue
        value = metrics.get(name)
        if value is None:
            problems.append(
                f"{name}: missing from entry (ceiling {ceiling:,.2f})"
            )
        elif value > ceiling:
            problems.append(
                f"{name}: {value:,.2f} above the absolute ceiling "
                f"{ceiling:,.2f} (scale={scale}, jobs={jobs})"
            )
    return problems

#: Per-scenario metric maps that are pure functions of the virtual
#: clock: ``--check`` compares them *exactly* (no threshold) because
#: machine load cannot move them — only a behaviour change can.
_DETERMINISTIC_METRIC_MAPS = (
    "obs_exit_rate_per_sim_s",
    "obs_exit_to_verdict_mean_ns",
)

#: Scalar metrics that are pure functions of the virtual clocks,
#: compared exactly like the maps above.  Keys missing on either side
#: are skipped so older entries stay comparable as columns are added.
_DETERMINISTIC_SCALARS = ("serve_p99_exit_to_verdict_ns",)

#: Scalar wall-clock metrics where *higher* current values are
#: regressions (same direction as ``figure_wall_s``).  Skip-if-missing
#: keeps pre-column ledger entries comparable.
_WALL_SCALARS = ("analysis_wall_s",)


def _relative_change(previous: float, current: float) -> float:
    if previous <= 0:
        return 0.0
    return (current - previous) / previous


def compare_entries(
    previous: Dict[str, Any],
    current: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[str]:
    """Human-readable regression lines; empty means within threshold.

    Entries measured at different scales or job counts are not
    comparable — the mismatch itself is reported as a failure rather
    than silently diffing apples against oranges.
    """
    problems: List[str] = []
    for knob in ("scale", "jobs"):
        if previous.get(knob) != current.get(knob):
            problems.append(
                f"{knob} changed ({previous.get(knob)} -> "
                f"{current.get(knob)}); entries are not comparable"
            )
    if problems:
        return problems

    prev_m = previous.get("metrics", {})
    cur_m = current.get("metrics", {})
    for name in _HIGHER_IS_BETTER:
        if name not in prev_m or name not in cur_m:
            continue
        change = _relative_change(prev_m[name], cur_m[name])
        if change < -threshold:
            problems.append(
                f"{name}: {prev_m[name]:,.1f} -> {cur_m[name]:,.1f} "
                f"({change:+.1%}, threshold -{threshold:.0%})"
            )
    prev_walls = prev_m.get("figure_wall_s", {})
    cur_walls = cur_m.get("figure_wall_s", {})
    for figure in sorted(set(prev_walls) & set(cur_walls)):
        change = _relative_change(prev_walls[figure], cur_walls[figure])
        if change > threshold:
            problems.append(
                f"figure_wall_s[{figure}]: {prev_walls[figure]:.2f}s -> "
                f"{cur_walls[figure]:.2f}s "
                f"({change:+.1%}, threshold +{threshold:.0%})"
            )
    for name in _WALL_SCALARS:
        if name not in prev_m or name not in cur_m:
            continue
        change = _relative_change(prev_m[name], cur_m[name])
        if change > threshold:
            problems.append(
                f"{name}: {prev_m[name]:.2f}s -> {cur_m[name]:.2f}s "
                f"({change:+.1%}, threshold +{threshold:.0%})"
            )
    for name in _DETERMINISTIC_METRIC_MAPS:
        prev_map = prev_m.get(name)
        cur_map = cur_m.get(name)
        if not isinstance(prev_map, dict) or not isinstance(cur_map, dict):
            continue
        for scenario in sorted(set(prev_map) & set(cur_map)):
            if prev_map[scenario] != cur_map[scenario]:
                problems.append(
                    f"{name}[{scenario}]: {prev_map[scenario]:,.1f} -> "
                    f"{cur_map[scenario]:,.1f} (deterministic metric "
                    "drifted: pipeline behaviour changed)"
                )
    for name in _DETERMINISTIC_SCALARS:
        if name not in prev_m or name not in cur_m:
            continue
        if prev_m[name] != cur_m[name]:
            problems.append(
                f"{name}: {prev_m[name]} -> {cur_m[name]} "
                "(deterministic metric drifted: pipeline behaviour changed)"
            )
    return problems


__all__ = [
    "DEFAULT_LEDGER_DIR",
    "DEFAULT_THRESHOLD",
    "OBS_SCENARIOS",
    "SCHEMA_VERSION",
    "STANDARD_FIGURES",
    "collect",
    "compare_entries",
    "floor_problems",
    "latest_entry",
    "ledger_entries",
    "measure_analysis",
    "measure_campaign",
    "measure_figures",
    "measure_obs",
    "measure_replay",
    "measure_serve",
    "measure_trace_overhead",
    "write_entry",
]
