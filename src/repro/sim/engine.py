"""Heap-based discrete-event engine with stable ordering.

The engine owns the :class:`~repro.sim.clock.VirtualClock` and a priority
queue of callbacks.  Two events scheduled for the same instant fire in
the order they were scheduled (a monotonically increasing sequence number
breaks ties), which makes multi-vCPU interleavings reproducible.

An optional *schedule policy* (see :mod:`repro.sim.perturb`) may adjust
every scheduling decision — bounded same-instant reordering via a tie
priority, bounded time jitter, or dropping the event outright.  The
default policy is ``None``: ordering is exactly the documented
(when, seq) contract, unchanged.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class ScheduledEvent:
    """Handle for a scheduled callback; supports cancellation.

    ``prio`` is a tie-break priority between ``when`` and ``seq``: it is
    0 for every normally scheduled event (so insertion order decides),
    and only a schedule policy ever sets it — which is how bounded
    same-instant reordering is injected without touching callers.
    """

    __slots__ = (
        "when", "seq", "callback", "args", "cancelled", "label", "prio",
        "_engine",
    )

    def __init__(
        self,
        when: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: str,
        prio: int = 0,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label
        self.prio = prio
        #: Owning engine while the event sits in the heap; cleared on
        #: pop so late cancels cannot corrupt the live counters.
        self._engine: Optional["Engine"] = None

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None:
            engine._note_cancelled()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.prio, self.seq) < (other.when, other.prio, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"ScheduledEvent({self.label!r} @ {self.when}ns, {state})"


class Engine:
    """Deterministic discrete-event loop."""

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        schedule_policy: Optional[Any] = None,
    ) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: List[ScheduledEvent] = []
        self._seq = 0
        self._events_fired = 0
        self._running = False
        self._stop_requested = False
        #: Live count of non-cancelled queued events (O(1) ``pending``).
        self._pending = 0
        #: Cancelled events still occupying heap slots; when they are
        #: the majority the heap is compacted instead of carrying them
        #: to their pop time (unbounded retention otherwise).
        self._cancelled_in_heap = 0
        #: Optional hook with ``on_schedule(when, label, now)`` returning
        #: ``(when, prio, drop)``; seeded implementations live in
        #: :mod:`repro.sim.perturb`.
        self.schedule_policy = schedule_policy
        self.events_dropped = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        t_ns: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute time ``t_ns``."""
        if t_ns < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past "
                f"({t_ns} < now {self.clock.now})"
            )
        when = int(t_ns)
        prio = 0
        if self.schedule_policy is not None:
            when, prio, drop = self.schedule_policy.on_schedule(
                when, label, self.clock.now
            )
            when = max(int(when), self.clock.now)
            if drop:
                event = ScheduledEvent(when, self._seq, callback, args, label, prio)
                self._seq += 1
                event.cancelled = True
                self.events_dropped += 1
                return event
        event = ScheduledEvent(when, self._seq, callback, args, label, prio)
        self._seq += 1
        event._engine = self
        self._pending += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(
        self,
        delay_ns: int,
        callback: Callable[..., Any],
        *args: Any,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` after a relative delay."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        return self.schedule_at(
            self.clock.now + int(delay_ns), callback, *args, label=label
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def events_fired(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled events (O(1) live counter)."""
        return self._pending

    def stop(self) -> None:
        """Request that the event loop stop before firing another event.

        The request is *consumed* by the next (or current) ``run_until``
        / ``run_for`` call: a stop issued mid-run halts that run after
        the current callback; a stop issued between runs makes the next
        run return immediately, firing nothing and leaving the clock
        untouched.  Subsequent runs proceed normally.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Cancelled-event accounting (see ScheduledEvent.cancel)
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._pending -= 1
        self._cancelled_in_heap += 1
        # Lazy compaction: only when cancelled events dominate the heap
        # does the O(n) rebuild pay for itself.  (when, prio, seq)
        # ordering is untouched — heapify over the surviving events
        # reproduces exactly the order popping would have yielded.
        if (
            self._cancelled_in_heap * 2 > len(self._queue)
            and len(self._queue) >= 64
        ):
            # In-place (callers may hold an alias to the heap list).
            self._queue[:] = [e for e in self._queue if not e.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_in_heap = 0

    def step(self) -> bool:
        """Fire the single next event.

        Returns ``False`` when the queue is exhausted.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_in_heap -= 1
                continue
            event._engine = None
            self._pending -= 1
            self.clock.advance_to(event.when)
            self._events_fired += 1
            event.callback(*event.args)
            return True
        return False

    def run_until(self, t_ns: int, max_events: Optional[int] = None) -> int:
        """Run events up to and including time ``t_ns``.

        Returns the number of events fired.  ``max_events`` is a safety
        valve against runaway loops in experiment harnesses.

        Stop/horizon contract: when no :meth:`stop` intervenes, the
        clock always lands exactly on ``t_ns`` so repeated calls tile
        time without gaps.  A pending stop request (whether issued
        during this run or before it) halts the loop without advancing
        to the horizon, and is consumed — it never leaks into the next
        tiling.
        """
        fired = 0
        while self._queue and not self._stop_requested:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_in_heap -= 1
                continue
            if head.when > t_ns:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                break
        # Always land exactly on the requested horizon so that repeated
        # run_until calls tile time without gaps.
        if self.clock.now < t_ns and not self._stop_requested:
            self.clock.advance_to(t_ns)
        self._stop_requested = False
        return fired

    def run_for(self, duration_ns: int, max_events: Optional[int] = None) -> int:
        """Run for a relative duration from the current time."""
        return self.run_until(self.clock.now + duration_ns, max_events)

    def drain(self, max_events: int = 1_000_000) -> int:
        """Run until the queue is empty (bounded by ``max_events``)."""
        fired = 0
        while fired < max_events and self.step():
            fired += 1
        return fired
