"""Pytest plumbing for the benchmark suite."""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a block to the real terminal despite pytest capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
