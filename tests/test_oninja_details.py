"""Further O-Ninja behaviour details (§VII-C / §VIII-C)."""

from repro.attacks.exploits import ExploitPlan
from repro.attacks.strategies import TransientAttack
from repro.auditors.ninja_rules import NinjaPolicy
from repro.auditors.o_ninja import ONinja
from repro.sim.clock import MILLISECOND, SECOND


class TestONinjaConfig:
    def test_custom_policy_whitelist(self, testbed):
        """ninja.conf whitelisting: the escalated exe is exempted."""
        policy = NinjaPolicy(
            whitelist=frozenset({"/home/user/exploit", "/bin/su"})
        )
        oninja = ONinja(
            testbed.kernel, interval_ns=100 * MILLISECOND, policy=policy
        )
        oninja.install()
        testbed.run_s(0.3)
        TransientAttack(testbed.kernel, ExploitPlan(exit_after=False)).launch()
        testbed.run_s(2.0)
        assert not oninja.detected  # whitelisted -> ignored

    def test_magic_group_authorizes_parent(self, testbed):
        policy = NinjaPolicy(magic_uids=frozenset({0, 1000}))
        oninja = ONinja(
            testbed.kernel, interval_ns=100 * MILLISECOND, policy=policy
        )
        oninja.install()
        testbed.run_s(0.3)
        # Attacker shell uid 1000 is now "magic": escalation authorized.
        TransientAttack(testbed.kernel, ExploitPlan(exit_after=False)).launch()
        testbed.run_s(2.0)
        assert not oninja.detected

    def test_scan_counter_advances(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=200 * MILLISECOND)
        oninja.install()
        testbed.run_s(2.0)
        assert oninja.scans_completed >= 5

    def test_ninja_runs_as_root_daemon(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=1 * SECOND)
        oninja.install()
        entry = testbed.kernel.guest_view_status(oninja.pid)
        assert entry["uid"] == 0
        assert entry["exe"] == "/usr/sbin/ninja"

    def test_detection_records_details(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=100 * MILLISECOND)
        oninja.install()
        testbed.run_s(0.3)
        attack = TransientAttack(
            testbed.kernel, ExploitPlan(exit_after=False)
        )
        attack.launch()
        testbed.run_s(2.0)
        assert oninja.detected
        detection = oninja.detections[0]
        assert detection["pid"] == attack.result.attacker_pid
        assert detection["time_ns"] > attack.result.escalated_ns

    def test_no_detection_of_ordinary_system(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=100 * MILLISECOND)
        oninja.install()
        from repro.workloads.common import start_workload

        start_workload(testbed.kernel, "make-j2")
        testbed.run_s(3.0)
        assert not oninja.detected
