"""H-Ninja: Ninja moved to the hypervisor, still passive (§VIII-C).

Same checking rule as O-Ninja, but the input is a traditional-VMI
task-list walk instead of /proc.  Moving out of the VM removes the
/proc side channel (the guest cannot observe the scanner's state), but
the monitoring is still *polling*: transient escalations between scans
are missed, DKOM rootkits still fool the list walk, and a long process
list still stretches the scan (each entry is examined at the snapshot
time plus its position's share of the scan latency, so late entries
race against the attacker's exit).

A *blocking* H-Ninja pauses the VM for the duration of each scan; the
paper notes this variant resists spamming — at the cost of stalling
the guest every interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.auditors.ninja_rules import NinjaPolicy, facts_from_mappings

# H-Ninja is the paper's hypervisor-level *passive* baseline (§VIII-C):
# it scans via traditional VMI on a polling interval, standing outside
# the HyperTap event pipeline on purpose so the ablation against
# HT-Ninja isolates what architectural invariants + active checks buy.
# hypertap: allow(trust-boundary) — deliberate VMI baseline: pauses/scans the raw machine outside HyperTap
from repro.hw.machine import Machine
from repro.sim.clock import MILLISECOND
from repro.sim.engine import Engine

# hypertap: allow(trust-boundary) — deliberate VMI baseline: the OS-invariant task-list walk is its input
from repro.vmi.introspection import KernelSymbolMap, OsInvariantView

#: Host-side cost to decode one task_struct via VMI (guest page walk +
#: mapping + parsing).
DEFAULT_PER_ENTRY_NS = 20_000


class HNinja:
    """Hypervisor-level passive privilege-escalation scanner."""

    def __init__(
        self,
        machine: Machine,
        symbols: KernelSymbolMap,
        interval_ns: int = 1_000 * MILLISECOND,
        policy: Optional[NinjaPolicy] = None,
        per_entry_ns: int = DEFAULT_PER_ENTRY_NS,
        blocking: bool = False,
    ) -> None:
        self.machine = machine
        self.vmi = OsInvariantView(machine, symbols)
        self.interval_ns = interval_ns
        self.policy = policy if policy is not None else NinjaPolicy()
        self.per_entry_ns = per_entry_ns
        self.blocking = blocking
        self.engine: Engine = machine.engine
        self.detections: List[Dict] = []
        self.scans_completed = 0
        self._running = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.engine.schedule(self.interval_ns, self._scan, label="h-ninja-scan")

    def stop(self) -> None:
        self._running = False

    @property
    def detected(self) -> bool:
        return bool(self.detections)

    # ------------------------------------------------------------------
    def _scan(self) -> None:
        if not self._running:
            return
        entries = self.vmi.list_processes()
        by_gva = {e["task_struct_gva"]: e for e in entries}
        scan_duration = len(entries) * self.per_entry_ns

        if self.blocking:
            # Pause the guest for the whole scan: no entry can exit
            # under us, defeating spamming (at a guest-latency cost).
            # hypertap: allow(auditor-purity) — blocking H-Ninja freezes the VM around a scan by definition
            self.machine.vm_paused = True
            for entry in entries:
                self._check_entry(entry, by_gva)
            self._finish_scan(resume=True, delay_ns=scan_duration)
            return

        # Non-blocking: entry k is effectively examined at
        # t + k * per_entry_ns; it must still exist then.
        for index, entry in enumerate(entries):
            self.engine.schedule(
                index * self.per_entry_ns,
                self._recheck_entry,
                entry,
                by_gva,
                label="h-ninja-entry",
            )
        self._finish_scan(resume=False, delay_ns=scan_duration)

    def _recheck_entry(self, entry: Dict, by_gva: Dict) -> None:
        live = self.vmi.decode_task_at(entry["task_struct_gva"])
        if live is None or live["pid"] != entry["pid"]:
            return  # the process exited before the scan reached it
        self._check_entry(live, by_gva)

    def _check_entry(self, entry: Dict, by_gva: Dict) -> None:
        parent = by_gva.get(entry.get("parent_gva", 0))
        facts = facts_from_mappings(entry, parent)
        if self.policy.is_unauthorized_root(facts):
            self.detections.append(
                {
                    "time_ns": self.engine.clock.now,
                    "pid": facts.pid,
                    "comm": facts.comm,
                }
            )

    def _finish_scan(self, resume: bool, delay_ns: int) -> None:
        self.scans_completed += 1

        def _next() -> None:
            if resume:
                # hypertap: allow(auditor-purity) — unpause pairs with the blocking-scan freeze above
                self.machine.vm_paused = False
            if self._running:
                self.engine.schedule(
                    max(1, self.interval_ns), self._scan, label="h-ninja-scan"
                )

        self.engine.schedule(max(1, delay_ns), _next, label="h-ninja-next")
