"""Deterministic admission control: a bounded queue in virtual time.

The serving layer must bound memory per stream and shed load under
burst, yet stay byte-reproducible.  Both follow from one device: the
queue is *modelled*, not measured.  Each record carries a virtual
arrival timestamp (stamped by the seeded load generator, or defaulted
to the record's own event time), and the model evaluates a
single-server FIFO queue purely as a function of that arrival
sequence:

* service starts at ``max(arrival, previous_finish)`` and takes a
  fixed ``service_ns`` (the modelled exit-emulation + EM + auditing
  cost per event);
* the queue depth at an arrival is the number of admitted events whose
  modelled finish time is still in the future;
* depth at the bound drops the arrival with reason ``overflow``
  (bounded buffer — always enforced);
* under the ``pace`` policy, a queue wait beyond ``max_wait_ns``
  additionally drops with reason ``backpressure`` (deadline shedding:
  a verdict that would arrive later than the SLO allows is worthless,
  so the producer is told to slow down instead).

Because nothing here reads a wall clock, two runs that present the
same (record, arrival) sequence — however the asyncio transport
interleaved them — make identical drop decisions and report identical
waits, which is what lets p99 exit-to-verdict latency sit in the
performance ledger as an exact-compare column.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.sim.clock import MILLISECOND

#: Bounded per-stream queue depth (events admitted but not yet
#: "finished" in virtual time).
DEFAULT_QUEUE_LIMIT = 4096

#: Modelled per-event pipeline cost: exit emulation + EM enqueue +
#: blocking audit, rounded to a stable figure (~50k events/s per
#: stream).  An explicit modelling knob, not a measurement.
DEFAULT_SERVICE_NS = 20_000

#: ``pace`` policy: maximum tolerable queue wait before shedding.
DEFAULT_MAX_WAIT_NS = 50 * MILLISECOND

POLICIES = ("pace", "drop")


@dataclass(frozen=True)
class AdmissionDecision:
    """What the model decided for one arrival."""

    admitted: bool
    #: ``None`` when admitted, else ``backpressure`` / ``overflow``
    #: (members of :data:`repro.obs.metrics.DROP_REASONS`).
    reason: Optional[str]
    #: Virtual queue wait before service would begin.
    wait_ns: int
    #: Exit-to-verdict latency (wait + service); 0 for drops.
    latency_ns: int
    #: Queue depth after this arrival (including it, when admitted).
    depth: int
    #: Producer-visible pressure signal (the service forwards it as a
    #: ``slowdown`` frame on rising edge).
    slowdown: bool


class AdmissionModel:
    """Single-server FIFO queue evaluated in the virtual arrival clock."""

    def __init__(
        self,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        service_ns: int = DEFAULT_SERVICE_NS,
        max_wait_ns: int = DEFAULT_MAX_WAIT_NS,
        policy: str = "pace",
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(
                f"unknown admission policy {policy!r} (want one of {POLICIES})"
            )
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        if service_ns < 1:
            raise ValueError(f"service_ns must be >= 1, got {service_ns}")
        self.queue_limit = int(queue_limit)
        self.service_ns = int(service_ns)
        self.max_wait_ns = int(max_wait_ns)
        self.policy = policy
        #: Pressure signal threshold: a quarter-full queue.
        self.slowdown_depth = max(1, self.queue_limit // 4)
        self.admitted = 0
        self.dropped_backpressure = 0
        self.dropped_overflow = 0
        #: Modelled finish times of admitted-but-unfinished events.
        self._finishes: Deque[int] = deque()
        self._last_finish = 0

    # ------------------------------------------------------------------
    @property
    def dropped(self) -> int:
        return self.dropped_backpressure + self.dropped_overflow

    def depth_at(self, t_ns: int) -> int:
        """Queue depth at virtual time ``t_ns`` (evicts finished work)."""
        finishes = self._finishes
        while finishes and finishes[0] <= t_ns:
            finishes.popleft()
        return len(finishes)

    def arrive(self, t_ns: int) -> AdmissionDecision:
        """Decide one arrival at virtual time ``t_ns``.

        Arrivals are expected non-decreasing (the pipeline clamps);
        the model stays consistent either way because finish times are
        monotone by construction.
        """
        t_ns = int(t_ns)
        depth = self.depth_at(t_ns)
        start_ns = t_ns if self._last_finish <= t_ns else self._last_finish
        wait_ns = start_ns - t_ns
        if depth >= self.queue_limit:
            self.dropped_overflow += 1
            return AdmissionDecision(
                admitted=False,
                reason="overflow",
                wait_ns=wait_ns,
                latency_ns=0,
                depth=depth,
                slowdown=True,
            )
        if self.policy == "pace" and wait_ns > self.max_wait_ns:
            self.dropped_backpressure += 1
            return AdmissionDecision(
                admitted=False,
                reason="backpressure",
                wait_ns=wait_ns,
                latency_ns=0,
                depth=depth,
                slowdown=True,
            )
        finish_ns = start_ns + self.service_ns
        self._finishes.append(finish_ns)
        self._last_finish = finish_ns
        depth += 1
        self.admitted += 1
        return AdmissionDecision(
            admitted=True,
            reason=None,
            wait_ns=wait_ns,
            latency_ns=wait_ns + self.service_ns,
            depth=depth,
            slowdown=depth >= self.slowdown_depth,
        )
