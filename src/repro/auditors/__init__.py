"""The paper's example auditors.

* :class:`GuestOSHangDetector` (GOSHD, §VII-A) — reliability: per-vCPU
  hang detection from the absence of thread-switch events; detects
  partial hangs that heartbeats cannot see.
* :class:`HiddenRootkitDetector` (HRKD, §VII-B) — security: hardware
  process/thread counting cross-validated against guest and VMI views.
* The three Ninjas (§VII-C, §VIII-C): :class:`ONinja` (in-guest
  passive), :class:`HNinja` (hypervisor-level passive via VMI), and
  :class:`HTNinja` (HyperTap active monitoring).  GOSHD+HRKD show RnS
  monitors sharing one logging phase; the Ninjas show why active beats
  passive.
"""

from repro.auditors.goshd import GuestOSHangDetector, profile_hang_threshold
from repro.auditors.hrkd import HiddenRootkitDetector
from repro.auditors.ninja_rules import NinjaPolicy
from repro.auditors.o_ninja import ONinja
from repro.auditors.h_ninja import HNinja
from repro.auditors.ht_ninja import HTNinja
from repro.auditors.syscall_policy import (
    SyscallPolicy,
    SyscallPolicyAuditor,
    SyscallSequenceAnomalyDetector,
)
from repro.auditors.vigilant import VigilantDetector
from repro.auditors.kernel_integrity import KernelDataWatch
from repro.auditors.trace import TraceRecorder

__all__ = [
    "GuestOSHangDetector",
    "profile_hang_threshold",
    "HiddenRootkitDetector",
    "NinjaPolicy",
    "ONinja",
    "HNinja",
    "HTNinja",
    "SyscallPolicy",
    "SyscallPolicyAuditor",
    "SyscallSequenceAnomalyDetector",
    "VigilantDetector",
    "KernelDataWatch",
    "TraceRecorder",
]
