"""Rule registry for the invariant-aware static-analysis pass.

A rule is a class with a stable ``id``, a one-line ``summary``, and a
``check(ctx)`` generator yielding :class:`~repro.analysis.findings.Finding`
objects.  Registering it here is all it takes to ship a new rule — the
runner, the pragma mechanism (``# hypertap: allow(<id>) — why``), the
baseline file, and ``--rules`` selection pick it up automatically.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Type

from repro.analysis.findings import Finding
from repro.analysis.repo import AnalysisContext


class Rule:
    """Base class: subclass, set ``id``/``summary``, implement ``check``."""

    id: str = ""
    summary: str = ""

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        raise NotImplementedError

    @classmethod
    def finding(cls, path: str, line: int, message: str, col: int = 0) -> Finding:
        return Finding(path=path, line=line, rule=cls.id, message=message, col=col)


#: id -> rule class, populated by :func:`register`.
REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by id."""
    _ensure_loaded()
    return [REGISTRY[rule_id]() for rule_id in sorted(REGISTRY)]


def rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(REGISTRY)


def _ensure_loaded() -> None:
    """Import the built-in rule modules exactly once."""
    # Imported lazily so ``repro.analysis.rules`` can be imported by the
    # rule modules themselves without a cycle.
    from repro.analysis.rules import (  # noqa: F401
        determinism,
        event_coverage,
        purity,
        trust_boundary,
    )
    from repro.analysis.flow import (  # noqa: F401
        async_blocking,
        guest_taint,
        pool_pickle,
        span_pairing,
    )
