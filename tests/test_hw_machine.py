"""Tests for machine composition, devices, APIC, and IO bus."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.hw.exits import ExitAction
from repro.hw.io import (
    ConsoleDevice,
    IoBus,
    PORT_CONSOLE,
    PORT_DISK_CMD,
)
from repro.hw.machine import Machine, MachineConfig
from repro.hw.vmcs import VECTOR_DISK, VECTOR_TIMER
from repro.sim.clock import MILLISECOND


@pytest.fixture
def machine():
    m = Machine(MachineConfig(num_vcpus=2, ram_bytes=64 * 1024 * 1024))
    m.set_exit_dispatcher(lambda v, e: ExitAction.EMULATE)
    return m


class TestMachineConfig:
    def test_defaults_match_paper_vm(self):
        config = MachineConfig()
        assert config.num_vcpus == 2
        assert config.ram_bytes == 1024 * 1024 * 1024

    def test_zero_vcpus_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(MachineConfig(num_vcpus=0))

    def test_tiny_ram_rejected(self):
        with pytest.raises(ConfigurationError):
            Machine(MachineConfig(ram_bytes=4096))


class TestApicTimer:
    def test_timer_queues_interrupts(self, machine):
        machine.start_timers()
        machine.engine.run_for(20 * MILLISECOND)
        for vcpu in machine.vcpus:
            assert VECTOR_TIMER in vcpu.pending_interrupts

    def test_timer_period(self, machine):
        machine.start_timers()
        machine.engine.run_for(40 * MILLISECOND)
        # 40ms / 4ms period = 10 ticks per vCPU
        assert machine.apics[0].ticks_fired == 10

    def test_stop_timers(self, machine):
        machine.start_timers()
        machine.engine.run_for(8 * MILLISECOND)
        machine.stop_timers()
        fired = machine.apics[0].ticks_fired
        machine.engine.run_for(40 * MILLISECOND)
        assert machine.apics[0].ticks_fired == fired


class TestIoBus:
    def test_console_collects_output(self, machine):
        for byte in b"hi":
            machine.io_bus.access(machine.vcpus[0], PORT_CONSOLE, "out", byte)
        assert machine.console.text() == "hi"

    def test_unclaimed_port_reads_high(self, machine):
        assert machine.io_bus.access(machine.vcpus[0], 0x9999, "in", 0) == 0xFFFFFFFF

    def test_duplicate_device_rejected(self):
        bus = IoBus()
        bus.attach(ConsoleDevice())
        with pytest.raises(SimulationError):
            bus.attach(ConsoleDevice())

    def test_disk_completion_interrupt(self, machine):
        vcpu = machine.vcpus[0]
        machine.io_bus.access(vcpu, PORT_DISK_CMD, "out", 1)
        assert machine.disk.blocks_read == 1
        machine.engine.run_for(1 * MILLISECOND)
        assert VECTOR_DISK in vcpu.pending_interrupts


class TestHostMemoryHelpers:
    def test_gpa_roundtrip(self, machine):
        machine.host_write_u64_gpa(0x1000, 42)
        assert machine.host_read_u64_gpa(0x1000) == 42

    def test_gva_read_requires_mapping(self, machine):
        with pytest.raises(SimulationError):
            machine.host_read_gva(0xDEAD, 0x400000, 8)

    def test_gva_roundtrip_through_registry(self, machine):
        space = machine.page_registry.create_address_space()
        space.map_user_page(0x400000, 0x5000)
        machine.host_write_u64_gva(space.pdba, 0x400008, 1234)
        assert machine.host_read_u64_gva(space.pdba, 0x400008) == 1234

    def test_exit_sequence_monotonic(self, machine):
        first = machine.next_exit_sequence()
        second = machine.next_exit_sequence()
        assert second == first + 1
