"""The coverage-guided adversarial fuzzing loop.

Each iteration draws a parent trace from the seed pool, derives a
candidate by trace mutation (:class:`~repro.replay.mutate.TraceMutator`),
schedule perturbation (:func:`~repro.sim.perturb.replay_perturbation`),
or both, replays it through fresh unmodified auditors with a
:class:`~repro.testing.coverage.CoverageAuditor` riding along, and asks
the :class:`~repro.testing.oracle.DifferentialOracle` whether the
auditors' verdicts match trace ground truth.  Candidates that light up
new coverage features join the pool (AFL's feedback loop, IRIS's
exit-space exploration); discrepancies become findings.

Every draw comes from one named :class:`~repro.sim.rng.RandomStreams`
stream and per-iteration seeds are derived, never ambient — a
``(seed, budget)`` pair names the whole campaign byte-for-byte,
which the nightly CI job and the reproducibility test both rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.replay.format import Trace
from repro.replay.mutate import TraceMutator
from repro.replay.source import ReplaySource
from repro.sim.clock import MILLISECOND, SECOND
from repro.sim.perturb import SchedulePerturbation, perturbation_from_params
from repro.sim.rng import RandomStreams
from repro.testing.coverage import CoverageAuditor, CoverageMap
from repro.testing.oracle import DifferentialOracle
from repro.testing.seeds import auditors_for, base_trace

#: How a candidate is derived from its parent each iteration.
_MODES = ("mutate", "perturb", "both")

#: Adversarial delivery-parameter menu (Heckler-style: the interesting
#: schedules are the *aggressive* ones — multi-second delays shuffle
#: arrival order across auditor windows, heavy drops starve blocking
#: checkpoints).  Each perturbed iteration draws one value per axis.
_DELAY_PROBABILITIES = (0.0, 0.1, 0.3, 0.6)
_DELAY_MAXIMA = (
    100 * MILLISECOND,
    500 * MILLISECOND,
    2 * SECOND,
    6 * SECOND,
)
_DROP_PROBABILITIES = (0.0, 0.05, 0.2, 0.5, 0.9)
_DROP_CAPS = (5, 50, 400, 4000)


@dataclass
class FuzzConfig:
    """One fuzzing campaign's parameters."""

    scenario: str = "exploit"
    seed: int = 0
    #: Number of replays (iteration 0 is the unmutated baseline).
    budget: int = 50
    #: Mutation operators applied per mutated candidate.
    mutations: int = 2
    #: Mix schedule-perturbation iterations into the campaign.
    perturb: bool = True
    #: Seed-pool cap; beyond it new coverage no longer adds parents.
    max_pool: int = 32
    #: When set, the first candidate trace exhibiting each finding key
    #: is saved here (with the finding in its header) for shrinking.
    artifacts_dir: Optional[str] = None


@dataclass
class FuzzResult:
    """What one campaign produced."""

    config: FuzzConfig
    iterations: int = 0
    #: JSONL-ready finding dicts (one per discrepancy occurrence).
    findings: List[Dict[str, Any]] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)
    pool_size: int = 1
    crashes: int = 0
    #: Iterations that contributed at least one new coverage feature.
    coverage_events: int = 0
    #: Campaign-wide :class:`~repro.obs.metrics.MetricsRegistry`
    #: snapshot: every iteration's replay pipeline counters, merged in
    #: iteration order (deterministic for a fixed config).
    metrics: Dict[str, Any] = field(default_factory=dict)

    @property
    def unique_keys(self) -> List[str]:
        return sorted({f["key"] for f in self.findings})


class Fuzzer:
    """Coverage-guided conformance fuzzing over one base scenario."""

    def __init__(
        self,
        config: FuzzConfig,
        base: Optional[Trace] = None,
        progress=None,
    ) -> None:
        self.config = config
        self.base = (
            base
            if base is not None
            else base_trace(config.scenario, seed=config.seed)
        )
        self.oracle = DifferentialOracle()
        self._rng = RandomStreams(config.seed).stream("fuzz")
        self._progress = progress
        self._metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    def _replay(
        self,
        trace: Trace,
        perturb: Optional[SchedulePerturbation],
    ):
        probe = CoverageAuditor()
        auditors = auditors_for(self.base) + [probe]
        registry = MetricsRegistry()
        report = ReplaySource(
            trace, auditors, perturb=perturb, metrics=registry
        ).run()
        probe.absorb_alerts(report.alerts)
        self._metrics.merge(registry.snapshot())
        return report, probe.map

    def _draw_perturb_params(self, iter_seed: int) -> Dict[str, Any]:
        rng = self._rng
        return {
            "seed": iter_seed,
            "delay_probability": _DELAY_PROBABILITIES[
                rng.randrange(len(_DELAY_PROBABILITIES))
            ],
            "delay_ns_max": _DELAY_MAXIMA[
                rng.randrange(len(_DELAY_MAXIMA))
            ],
            "drop_probability": _DROP_PROBABILITIES[
                rng.randrange(len(_DROP_PROBABILITIES))
            ],
            "max_drops": _DROP_CAPS[rng.randrange(len(_DROP_CAPS))],
        }

    def _record_findings(
        self,
        result: FuzzResult,
        trace: Trace,
        report,
        iteration: int,
        ops: List[str],
        perturb_params: Optional[Dict[str, Any]],
    ) -> None:
        known = {f["key"] for f in result.findings}
        for disc in self.oracle.check(trace, report):
            if disc.kind == "crash":
                result.crashes += 1
            entry = disc.as_dict()
            entry.update(
                iteration=iteration,
                scenario=self.config.scenario,
                seed=self.config.seed,
                ops=list(ops),
                perturb=perturb_params,
            )
            if (
                self.config.artifacts_dir is not None
                and entry["key"] not in known
            ):
                self._save_artifact(trace, disc, perturb_params)
            result.findings.append(entry)

    def _save_artifact(self, trace: Trace, disc, perturb_params) -> None:
        import copy as _copy

        from repro.testing.corpus import save_finding

        snapshot = Trace(
            header=_copy.deepcopy(trace.header),
            records=trace.records,
        )
        save_finding(
            self.config.artifacts_dir,
            snapshot,
            disc,
            perturb_params=perturb_params,
            original_records=len(trace.records),
        )

    # ------------------------------------------------------------------
    def run(self) -> FuzzResult:
        cfg = self.config
        result = FuzzResult(config=cfg)
        pool: List[Trace] = [self.base]

        # Iteration 0: the pristine baseline.  Findings here mean the
        # auditors disagree with ground truth on an *unmutated* trace —
        # a conformance bug, not an adversarial one.
        report, cov = self._replay(self.base, None)
        result.coverage.merge(cov)
        self._record_findings(result, self.base, report, 0, [], None)
        result.iterations = 1

        for i in range(1, cfg.budget + 1):
            parent = pool[self._rng.randrange(len(pool))]
            iter_seed = self._rng.randrange(2**31)
            mode = (
                _MODES[self._rng.randrange(len(_MODES))]
                if cfg.perturb
                else "mutate"
            )
            ops: List[str] = []
            candidate = parent
            if mode in ("mutate", "both"):
                candidate, ops = TraceMutator(seed=iter_seed).mutate(
                    parent, n_mutations=cfg.mutations
                )
            perturb = perturb_params = None
            if mode in ("perturb", "both"):
                perturb_params = self._draw_perturb_params(iter_seed)
                perturb = perturbation_from_params(perturb_params)

            report, cov = self._replay(candidate, perturb)
            new = result.coverage.merge(cov)
            if new:
                result.coverage_events += 1
                # Only mutated *traces* become parents: a perturbation
                # is a replay-time policy, not trace content.
                if (
                    candidate is not parent
                    and len(pool) < cfg.max_pool
                ):
                    pool.append(candidate)
            self._record_findings(
                result, candidate, report, i, ops, perturb_params
            )
            result.iterations = i + 1
            if self._progress is not None:
                self._progress(i, cfg.budget, result)

        result.pool_size = len(pool)
        result.metrics = self._metrics.snapshot()
        return result


def fuzz(config: FuzzConfig, base: Optional[Trace] = None) -> FuzzResult:
    """Run one campaign; convenience over :class:`Fuzzer`."""
    return Fuzzer(config, base=base).run()


def _fuzz_task(config: FuzzConfig) -> FuzzResult:
    """Picklable per-campaign entry point for the parallel executor."""
    return Fuzzer(config).run()


def fuzz_many(
    configs: Sequence[FuzzConfig], jobs: Optional[int] = None
) -> List[FuzzResult]:
    """Run independent campaigns in parallel, one result per config.

    The parallel cut is at the *campaign* boundary on purpose: within a
    campaign the coverage-feedback pool makes iteration ``i+1`` depend
    on iteration ``i``, so intra-campaign parallelism would change
    results.  Whole campaigns are pure functions of their
    ``(scenario, seed, budget)`` config, so ``fuzz_many`` returns
    exactly ``[fuzz(c) for c in configs]`` at any job count (results
    merge by config index, not completion order).  Campaigns that save
    artifacts should each get their own ``artifacts_dir``: artifact
    files are keyed by finding, so sharing a directory lets campaigns
    overwrite each other's entries (in any execution order).
    """
    from repro.parallel import parallel_map

    return parallel_map(_fuzz_task, list(configs), jobs=jobs)
