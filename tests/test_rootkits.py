"""Unit tests for the rootkit implementations themselves."""

import pytest

from repro.attacks.rootkits import (
    HidingTechnique,
    ROOTKIT_ZOO,
    build_rootkit,
)
from repro.errors import SimulationError


def spawn_victim(testbed, uid=0):
    def prog(ctx):
        while True:
            yield ctx.compute(400_000)

    return testbed.kernel.spawn_process(prog, "victim", uid=uid, exe="/tmp/.v")


class TestZooMetadata:
    def test_table2_has_ten_rootkits(self):
        assert len(ROOTKIT_ZOO) == 10

    def test_names_unique(self):
        names = [spec.name for spec in ROOTKIT_ZOO]
        assert len(names) == len(set(names))

    def test_techniques_cover_table2(self):
        all_techniques = {
            t for spec in ROOTKIT_ZOO for t in spec.techniques
        }
        assert all_techniques == set(HidingTechnique)

    def test_build_unknown_rejected(self, testbed):
        with pytest.raises(SimulationError):
            build_rootkit("NotARootkit", testbed.kernel)


class TestDkom:
    def test_unlink_hides_from_list(self, testbed):
        victim = spawn_victim(testbed)
        rootkit = build_rootkit("FU", testbed.kernel)
        rootkit.hide_process(victim.pid)
        assert victim.pid not in testbed.kernel.guest_view_pids()

    def test_victim_keeps_running_while_hidden(self, testbed):
        """The point of process hiding: invisible but scheduled."""
        victim = spawn_victim(testbed)
        build_rootkit("FU", testbed.kernel).hide_process(victim.pid)
        ref = testbed.kernel.task_ref(victim)
        before = ref.read("utime")
        testbed.run_s(2.0)
        assert ref.read("utime") > before

    def test_double_unlink_is_safe(self, testbed):
        victim = spawn_victim(testbed)
        a = build_rootkit("FU", testbed.kernel)
        a.hide_process(victim.pid)
        b = build_rootkit("HideProc", testbed.kernel)
        b.hide_process(victim.pid)  # second unlink: no corruption
        assert len(testbed.kernel.guest_view_pids()) >= 4

    def test_hide_unknown_pid_rejected(self, testbed):
        rootkit = build_rootkit("FU", testbed.kernel)
        with pytest.raises(SimulationError):
            rootkit.hide_process(4242)


class TestSyscallHijack:
    def test_proc_list_censored(self, testbed):
        victim = spawn_victim(testbed)
        build_rootkit("AFX", testbed.kernel).hide_process(victim.pid)
        assert victim.pid not in testbed.kernel.guest_view_pids()

    def test_proc_status_censored(self, testbed):
        victim = spawn_victim(testbed)
        build_rootkit("AFX", testbed.kernel).hide_process(victim.pid)
        assert testbed.kernel.guest_view_status(victim.pid) is None

    def test_other_pids_unaffected(self, testbed):
        victim = spawn_victim(testbed)
        bystander = spawn_victim(testbed, uid=1000)
        build_rootkit("AFX", testbed.kernel).hide_process(victim.pid)
        assert bystander.pid in testbed.kernel.guest_view_pids()
        assert testbed.kernel.guest_view_status(bystander.pid) is not None

    def test_task_list_memory_untouched(self, testbed):
        """Hijacking censors the interface, not the structures."""
        victim = spawn_victim(testbed)
        build_rootkit("HideToolz", testbed.kernel).hide_process(victim.pid)
        raw_walk = {e["pid"] for e in testbed.kernel.walk_task_list_guest()}
        assert victim.pid in raw_walk

    def test_uninstall_restores_table(self, testbed):
        victim = spawn_victim(testbed)
        rootkit = build_rootkit("AFX", testbed.kernel)
        rootkit.hide_process(victim.pid)
        rootkit.unhide_all()
        assert victim.pid in testbed.kernel.guest_view_pids()


class TestCombinedTechniques:
    def test_suckit_applies_both(self, testbed):
        """kmem + DKOM: list unlinked AND the raw walk misses it."""
        victim = spawn_victim(testbed)
        build_rootkit("SucKIT", testbed.kernel).hide_process(victim.pid)
        raw_walk = {e["pid"] for e in testbed.kernel.walk_task_list_guest()}
        assert victim.pid not in raw_walk

    def test_enyelkm_hijack_plus_kmem(self, testbed):
        victim = spawn_victim(testbed)
        rootkit = build_rootkit("Enyelkm 1.2", testbed.kernel)
        rootkit.hide_process(victim.pid)
        assert victim.pid not in testbed.kernel.guest_view_pids()
        rootkit.unhide_all()
        assert victim.pid in testbed.kernel.guest_view_pids()

    def test_multiple_victims(self, testbed):
        victims = [spawn_victim(testbed) for _ in range(3)]
        rootkit = build_rootkit("SucKIT", testbed.kernel)
        for victim in victims:
            rootkit.hide_process(victim.pid)
        pids = testbed.kernel.guest_view_pids()
        for victim in victims:
            assert victim.pid not in pids
