"""VM Exit taxonomy and exit records.

The exit reasons mirror the subset of Intel VT-x exit reasons HyperTap
uses (Table I of the paper): ``CR_ACCESS``, ``EPT_VIOLATION``,
``EXCEPTION``, ``WRMSR``, ``IO_INSTRUCTION``, ``EXTERNAL_INTERRUPT`` and
``APIC_ACCESS``.  Every exit carries a qualification (reason-specific
details, like VT-x's exit qualification field) and a snapshot of the
guest's architectural state taken *by the hardware* at exit time — this
snapshot is the root of trust the monitors build on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class ExitReason(enum.Enum):
    """Why the processor transferred control from guest to host mode."""

    EXCEPTION = "EXCEPTION"
    EXTERNAL_INTERRUPT = "EXTERNAL_INTERRUPT"
    CR_ACCESS = "CR_ACCESS"
    WRMSR = "WRMSR"
    IO_INSTRUCTION = "IO_INSTRUCTION"
    EPT_VIOLATION = "EPT_VIOLATION"
    APIC_ACCESS = "APIC_ACCESS"
    HLT = "HLT"
    VMCALL = "VMCALL"


class ExitAction(enum.Enum):
    """What the hypervisor tells the hardware to do after handling."""

    #: Apply the trapped operation (emulate it) and resume the guest.
    EMULATE = "EMULATE"
    #: Skip the trapped operation entirely and resume the guest.
    SKIP = "SKIP"
    #: Reflect the event back into the guest (e.g. deliver exception).
    REFLECT = "REFLECT"


class MemAccess(enum.Enum):
    """Access type recorded in an EPT violation qualification."""

    READ = "r"
    WRITE = "w"
    EXECUTE = "x"


@dataclass(frozen=True)
class GuestStateSnapshot:
    """Architectural state saved into the VMCS guest-state area at exit.

    Only fields the monitors consume are modelled; adding more is
    mechanical.  The snapshot is immutable: software inside the guest
    cannot retroactively alter what the hardware saved.
    """

    cr3: int
    tr_base: int
    rsp: int
    rip: int
    rax: int
    rbx: int
    rcx: int
    rdx: int
    rsi: int
    rdi: int
    cpl: int

    def gpr(self, name: str) -> int:
        """Read a saved general-purpose register by lowercase name."""
        return int(getattr(self, name))


@dataclass
class VMExit:
    """One guest-to-host transition, as seen by the hypervisor."""

    reason: ExitReason
    vcpu_index: int
    time_ns: int
    qualification: Dict[str, Any] = field(default_factory=dict)
    guest_state: Optional[GuestStateSnapshot] = None
    #: Monotone per-machine sequence number (useful for the RHC).
    sequence: int = 0

    def qual(self, key: str, default: Any = None) -> Any:
        """Shorthand accessor into the qualification dictionary."""
        return self.qualification.get(key, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VMExit({self.reason.value}, vcpu={self.vcpu_index}, "
            f"t={self.time_ns}, qual={self.qualification})"
        )
