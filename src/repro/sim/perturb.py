"""Seeded schedule perturbation: adversarial interleavings on demand.

Heckler (arXiv:2404.03387) shows that adversarially *timed* event
streams break guarantees that look solid under benign schedules; IRIS
(arXiv:2303.12817) shows coverage-guided search over HAV exit spaces
needs deterministic replay of each explored schedule.  This module is
the engine-side half of both: a :class:`SchedulePerturbation` plugs into
:class:`~repro.sim.engine.Engine` as its ``schedule_policy`` and
perturbs scheduling decisions in three bounded, label-scoped ways:

* **same-instant reordering** — events scheduled for the same instant
  get a seeded tie priority instead of insertion order (the documented
  engine tie-break stays intact when no policy is installed);
* **bounded jitter** — matching labels (vCPU timeslice steps, delivery
  callbacks) are shifted later by up to a fraction of their delay,
  modelling jittered vCPU timeslices and delayed exit delivery;
* **dropped delivery** — matching labels are dropped with a bounded
  probability and a hard cap, modelling lost exit delivery (EF overload,
  torn buffers).

Every draw comes from one :class:`~repro.sim.rng.RandomStreams` stream,
so a seed names a perturbation schedule deterministically — the fuzzing
harness (``repro.testing``) records only the seed and can replay any
interleaving it found bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.sim.rng import RandomStreams

#: Labels the kernel uses for vCPU timeslice stepping, and the replay
#: source for event delivery — the default jitter/drop scopes.
TIMESLICE_LABELS: Tuple[str, ...] = ("step-vcpu",)
DELIVERY_LABELS: Tuple[str, ...] = ("replay-deliver",)

#: Tie priorities are drawn from [0, _PRIO_SPAN): large enough that
#: collisions are rare, small enough to stay cheap to compare.
_PRIO_SPAN = 1 << 20


@dataclass
class PerturbationConfig:
    """Bounds of one perturbation schedule (all scoped by label prefix)."""

    #: Shuffle same-instant ordering for labels starting with any of
    #: these prefixes; ``None`` means every label (bounded reordering —
    #: only ties in ``when`` are ever affected).
    shuffle_labels: Optional[Tuple[str, ...]] = None
    #: Jitter: delay matching labels by up to ``jitter_fraction`` of
    #: their relative delay (never earlier, never before ``now``).
    jitter_fraction: float = 0.0
    jitter_labels: Tuple[str, ...] = TIMESLICE_LABELS
    #: Delay delivery labels by up to ``delay_ns_max`` with probability
    #: ``delay_probability``.
    delay_probability: float = 0.0
    delay_ns_max: int = 0
    delay_labels: Tuple[str, ...] = DELIVERY_LABELS
    #: Drop delivery labels with probability ``drop_probability``,
    #: never more than ``max_drops`` in total.
    drop_probability: float = 0.0
    drop_labels: Tuple[str, ...] = DELIVERY_LABELS
    max_drops: int = 0


@dataclass
class PerturbationStats:
    """What one perturbation run actually did."""

    scheduled: int = 0
    shuffled: int = 0
    jittered: int = 0
    delayed: int = 0
    dropped: int = 0

    def as_dict(self) -> dict:
        return {
            "scheduled": self.scheduled,
            "shuffled": self.shuffled,
            "jittered": self.jittered,
            "delayed": self.delayed,
            "dropped": self.dropped,
        }


def _matches(label: str, prefixes: Optional[Tuple[str, ...]]) -> bool:
    if prefixes is None:
        return True
    return any(label.startswith(p) for p in prefixes)


@dataclass
class SchedulePerturbation:
    """Seeded ``schedule_policy`` for :class:`~repro.sim.engine.Engine`."""

    seed: int = 0
    config: PerturbationConfig = field(default_factory=PerturbationConfig)
    stats: PerturbationStats = field(default_factory=PerturbationStats)

    def __post_init__(self) -> None:
        self._rng = RandomStreams(self.seed).stream("schedule-perturb")

    # ------------------------------------------------------------------
    def on_schedule(
        self, when_ns: int, label: str, now_ns: int
    ) -> Tuple[int, int, bool]:
        """Adjust one scheduling decision; returns ``(when, prio, drop)``.

        The engine clamps ``when`` to ``now`` and honours ``drop`` by
        returning an already-cancelled handle, so callers that expect a
        handle (for cancellation) keep working.
        """
        cfg = self.config
        rng = self._rng
        self.stats.scheduled += 1
        prio = 0
        if _matches(label, cfg.shuffle_labels):
            prio = rng.randrange(_PRIO_SPAN)
            self.stats.shuffled += 1
        if cfg.jitter_fraction > 0 and _matches(label, cfg.jitter_labels):
            delay = when_ns - now_ns
            if delay > 0:
                extra = rng.randrange(
                    0, max(1, int(delay * cfg.jitter_fraction)) + 1
                )
                if extra:
                    when_ns += extra
                    self.stats.jittered += 1
        if cfg.delay_probability > 0 and _matches(label, cfg.delay_labels):
            if cfg.delay_ns_max > 0 and rng.random() < cfg.delay_probability:
                when_ns += rng.randrange(1, cfg.delay_ns_max + 1)
                self.stats.delayed += 1
        if cfg.drop_probability > 0 and _matches(label, cfg.drop_labels):
            if (
                self.stats.dropped < cfg.max_drops
                and rng.random() < cfg.drop_probability
            ):
                self.stats.dropped += 1
                return when_ns, prio, True
        return when_ns, prio, False


def replay_perturbation(
    seed: int,
    *,
    shuffle: bool = True,
    delay_probability: float = 0.1,
    delay_ns_max: int = 500_000_000,
    drop_probability: float = 0.02,
    max_drops: int = 5,
) -> SchedulePerturbation:
    """Perturbation tuned for replayed delivery (``replay-deliver``):
    same-instant shuffles everywhere, delayed/dropped delivery only."""
    return SchedulePerturbation(
        seed=seed,
        config=PerturbationConfig(
            shuffle_labels=None if shuffle else (),
            delay_probability=delay_probability,
            delay_ns_max=delay_ns_max,
            drop_probability=drop_probability,
            max_drops=max_drops,
        ),
    )


def perturbation_from_params(params: dict) -> SchedulePerturbation:
    """Rebuild a delivery perturbation from its serialized parameters.

    The fuzzer records ``{"seed", "delay_probability", "delay_ns_max",
    "drop_probability", "max_drops"}`` in each finding so the exact
    adversarial schedule can be replayed later (shrinking, corpus
    verification).
    """
    return replay_perturbation(
        int(params["seed"]),
        delay_probability=float(params.get("delay_probability", 0.0)),
        delay_ns_max=int(params.get("delay_ns_max", 0)),
        drop_probability=float(params.get("drop_probability", 0.0)),
        max_drops=int(params.get("max_drops", 0)),
    )


def interleave_perturbation(
    seed: int, labels: Tuple[str, ...] = ("hut-op",)
) -> SchedulePerturbation:
    """Perturbation for the hut interleave differential: *only*
    same-instant shuffles, scoped to the hut op labels.

    No jitter, delays or drops — those would move ops across instants
    and break the soundness argument (each vCPU's own program order must
    be preserved; only the arbitration between vCPUs at one instant is
    architecturally unspecified, so only that may vary).
    """
    return SchedulePerturbation(
        seed=seed,
        config=PerturbationConfig(shuffle_labels=tuple(labels)),
    )


def live_perturbation(
    seed: int,
    *,
    jitter_fraction: float = 0.2,
    shuffle: bool = True,
) -> SchedulePerturbation:
    """Perturbation tuned for live simulation: jittered vCPU timeslices
    plus same-instant shuffles; nothing is ever dropped."""
    return SchedulePerturbation(
        seed=seed,
        config=PerturbationConfig(
            shuffle_labels=None if shuffle else (),
            jitter_fraction=jitter_fraction,
            jitter_labels=TIMESLICE_LABELS,
        ),
    )
