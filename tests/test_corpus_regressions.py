"""Replay every checked-in corpus entry; its finding must reproduce.

Each file under ``tests/corpus/`` is a shrunk conformance finding from
the adversarial harness (``python -m repro.testing``), with the finding
key — and, for schedule findings, the perturbation parameters — stored
in the trace header.  These are the harness's regression anchors: if an
auditor change makes one stop reproducing, either the discrepancy was
fixed (delete the entry and say so) or the replay path regressed.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.testing.corpus import corpus_entries, verify_entry

CORPUS_DIR = str(pathlib.Path(__file__).parent / "corpus")

ENTRIES = corpus_entries(CORPUS_DIR)


def test_corpus_is_populated():
    # The harness's acceptance floor: at least three distinct shrunk
    # findings are checked in.
    assert len(ENTRIES) >= 3


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[pathlib.Path(p).stem for p in ENTRIES]
)
def test_corpus_entry_reproduces(path):
    ok, detail = verify_entry(path)
    assert ok, f"{path}: {detail}"
