"""Statistics and presentation helpers for experiment output."""

from repro.analysis.stats import cdf, mean, percentile, stdev
from repro.analysis.tables import format_table
from repro.analysis.figures import ascii_bar_chart, ascii_cdf

__all__ = [
    "mean",
    "stdev",
    "percentile",
    "cdf",
    "format_table",
    "ascii_bar_chart",
    "ascii_cdf",
]
