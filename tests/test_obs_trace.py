"""Causal-tracing invariants (PR 10): span propagation, drop
accounting, export byte-identity, and the triage tooling in
repro.obs.trace.

The contract under test:

* every publish mints a trace id ``vm:seq`` in publish order, and every
  verdict lands on exactly one root span (timer verdicts synthesize
  their own);
* the registry ring is bounded but never *silently* lossy — overflow is
  counted under ``trace.spans_dropped{reason=ring-full}``, and a
  streaming sink still receives every completed span;
* the full span stream is a reproducible artifact: identical wherever
  it is gathered (live ring prefix, replay, either trace format, any
  ``REPRO_JOBS``) and matching the committed golden span export.

(Serve-side jobs invariance of the span rows rides on
``test_serve_service.test_jobs_do_not_change_verdicts_or_export``,
whose pipeline-scope export includes them.)
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import export_lines
from repro.obs.trace import (
    collect_spans,
    critical_path_lines,
    perfetto_text,
    slice_spans,
    spans_to_jsonl_lines,
    spans_to_perfetto,
)
from repro.replay.recorder import SCENARIOS, record_scenario
from repro.replay.source import ReplaySource
from repro.serve.pipeline import StreamPipeline

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")
GOLDEN_TRACE = os.path.join(DATA_DIR, "golden_exploit.jsonl")
GOLDEN_SPANS = os.path.join(DATA_DIR, "golden_exploit_spans.jsonl")


def replay_with_sink(trace, span_limit=64, sink=True):
    """Replay ``trace`` capturing every completed span via the sink."""
    registry = MetricsRegistry(span_limit=span_limit)
    spans = []
    if sink:
        registry.set_span_sink(spans.append)
    auditors = SCENARIOS[trace.header.scenario].build_auditors()
    ReplaySource(trace, auditors, metrics=registry).run()
    return spans, registry


@pytest.fixture(scope="module")
def exploit_run():
    return record_scenario("exploit", seed=0)


@pytest.fixture(scope="module")
def hang_run():
    return record_scenario("hang", seed=0)


# ======================================================================
# Satellite 1: the span ring must never lose spans silently.
# ======================================================================
class TestDropAccounting:
    def test_ring_overflow_is_counted_not_silent(self, exploit_run):
        _, registry = replay_with_sink(
            exploit_run.trace, span_limit=4, sink=False
        )
        assert len(registry.spans) == 4
        minted = registry.spans_minted()
        dropped = registry.total("trace.spans_dropped", reason="ring-full")
        # Conservation: every minted span is in the ring or accounted.
        assert dropped == minted - len(registry.spans)
        assert dropped > 0

    def test_sink_receives_spans_past_the_bound(self, exploit_run):
        spans, registry = replay_with_sink(exploit_run.trace, span_limit=4)
        minted = registry.spans_minted()
        assert len(spans) == minted
        assert len(registry.spans) == 4
        # The bounded ring is exactly the stream's prefix.
        assert registry.spans == spans[:4]

    def test_drop_counters_identical_with_and_without_sink(self, exploit_run):
        _, without = replay_with_sink(
            exploit_run.trace, span_limit=4, sink=False
        )
        _, with_sink = replay_with_sink(exploit_run.trace, span_limit=4)
        assert without.rows("trace.spans_dropped") == with_sink.rows(
            "trace.spans_dropped"
        )

    def test_unbounded_capture_drops_nothing(self, exploit_run):
        spans, registry = replay_with_sink(
            exploit_run.trace, span_limit=10**9
        )
        assert registry.total("trace.spans_dropped") == 0
        assert registry.spans == spans

    def test_merge_truncation_is_counted(self, exploit_run):
        spans, a = replay_with_sink(exploit_run.trace, span_limit=64)
        _, b = replay_with_sink(exploit_run.trace, span_limit=64)
        merged = MetricsRegistry(span_limit=64)
        merged.merge(a.snapshot())
        merged.merge(b.snapshot())
        assert len(merged.spans) == 64
        assert merged.total("trace.spans_dropped", reason="merge") == 64
        # ...on top of the ring-full drops both sides already counted.
        assert merged.total(
            "trace.spans_dropped", reason="ring-full"
        ) == 2 * a.total("trace.spans_dropped", reason="ring-full")


# ======================================================================
# Satellite 3: propagation invariants.
# ======================================================================
class TestPropagationInvariants:
    @pytest.mark.parametrize("scenario", ["exploit", "hang", "rootkit"])
    def test_every_verdict_has_a_root_span(self, scenario):
        run = record_scenario(scenario, seed=0)
        spans, registry = replay_with_sink(run.trace, span_limit=10**9)
        verdict_hops = sum(
            1
            for span in spans
            for hop in span["hops"]
            if hop[0] == "verdict"
        )
        assert verdict_hops == registry.total("verdicts")
        assert verdict_hops > 0 or scenario == "baseline"
        for span in spans:
            assert set(span) >= {"vm", "type", "t", "trace", "hops"}
            for hop in span["hops"]:
                # Hops never travel back before the span's root event.
                assert hop[1] >= span["t"]

    @pytest.mark.parametrize("scenario", ["exploit", "hang"])
    def test_trace_ids_unique_and_publish_ordered(self, scenario):
        run = record_scenario(scenario, seed=0)
        spans, _ = replay_with_sink(run.trace, span_limit=10**9)
        by_vm = {}
        for span in spans:
            vm, seq = span["trace"].rsplit(":", 1)
            assert vm == span["vm"]
            by_vm.setdefault(vm, []).append(int(seq))
        for seqs in by_vm.values():
            # Contiguous from 0 and strictly increasing: publish order.
            assert seqs == list(range(len(seqs)))

    def test_timer_verdicts_synthesize_root_spans(self, hang_run):
        spans, _ = replay_with_sink(hang_run.trace, span_limit=10**9)
        timers = [s for s in spans if s["type"] == "timer"]
        assert timers
        for span in timers:
            assert [hop[0] for hop in span["hops"]] == ["verdict"]
            # Anchored at the auditor's last event, so the span's width
            # is the watchdog's exit-to-verdict latency.
            assert span["hops"][0][1] > span["t"]

    def test_no_span_left_open_after_a_run(self, exploit_run):
        _, registry = replay_with_sink(exploit_run.trace)
        assert registry._open_span is None

    def test_tracing_off_mints_no_spans_but_keeps_counters(self, exploit_run):
        registry = MetricsRegistry(tracing=False)
        auditors = SCENARIOS["exploit"].build_auditors()
        ReplaySource(exploit_run.trace, auditors, metrics=registry).run()
        assert registry.spans == []
        assert registry.total("trace.spans_dropped") == 0
        assert registry.total("verdicts") == 1
        assert registry.total("flow.published") > 0


# ======================================================================
# Export byte-identity (tentpole acceptance).
# ======================================================================
class TestExportIdentity:
    def test_golden_span_export_matches_committed(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        with open(GOLDEN_SPANS, encoding="utf-8") as fh:
            committed = fh.read().splitlines()
        assert spans_to_jsonl_lines(spans) == committed

    def test_live_ring_is_a_prefix_of_the_full_stream(self, exploit_run):
        live_span_lines = [
            line
            for line in export_lines(exploit_run.metrics)
            if '"kind": "span"' in line
        ]
        spans, _ = replay_with_sink(exploit_run.trace, span_limit=10**9)
        assert live_span_lines == spans_to_jsonl_lines(spans)[
            : len(live_span_lines)
        ]
        assert 0 < len(live_span_lines) < len(spans)

    def test_repro_jobs_env_does_not_change_the_export(self, monkeypatch):
        exports = []
        for jobs in ("1", "2"):
            monkeypatch.setenv("REPRO_JOBS", jobs)
            spans, _ = collect_spans(GOLDEN_TRACE)
            exports.append(
                (spans_to_jsonl_lines(spans), perfetto_text(spans))
            )
        assert exports[0] == exports[1]

    def test_perfetto_structure(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        doc = spans_to_perfetto(spans)
        assert doc["displayTimeUnit"] == "ns"
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(slices) == len(spans)
        assert len(instants) == sum(len(s["hops"]) for s in spans)
        assert len(metas) == len({s["vm"] for s in spans})
        assert json.loads(perfetto_text(spans)) == doc

    def test_host_context_never_reaches_the_export(self, exploit_run):
        # Live spans carry host hops (exit/ef/em); every export scope
        # except "all" must strip them.
        snapshot = exploit_run.metrics
        assert any("host" in span for span in snapshot["spans"])
        for line in export_lines(snapshot):
            if '"kind": "span"' in line:
                assert '"host"' not in line


# ======================================================================
# Serve streams: spans follow the stream identity.
# ======================================================================
class TestServeStreams:
    def test_spans_and_drops_relabel_by_stream_id(self, exploit_run):
        spans = []
        registry = MetricsRegistry(span_limit=4)
        registry.set_span_sink(spans.append)
        pipeline = StreamPipeline(
            "stream-7", exploit_run.trace.header, registry=registry
        )
        for record in exploit_run.trace.records:
            pipeline.feed(record)
        pipeline.close()
        assert spans
        assert {span["vm"] for span in spans} == {"stream-7"}
        assert all(span["trace"].startswith("stream-7:") for span in spans)
        for _name, labels, _v in registry.rows("trace.spans_dropped"):
            assert labels["vm"] == "stream-7"


# ======================================================================
# Triage tooling.
# ======================================================================
class TestCriticalPath:
    def test_golden_attribution_tables(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        lines = critical_path_lines(spans, worst=5)
        text = "\n".join(lines)
        assert "exit-to-verdict paths:" in text
        assert "per-stage attribution" in text
        assert "deliver" in text and "verdict" in text

    def test_timer_latency_is_attributed(self, hang_run):
        spans, _ = replay_with_sink(hang_run.trace, span_limit=10**9)
        lines = critical_path_lines(spans, worst=3)
        header = next(l for l in lines if "exit-to-verdict paths" in l)
        worst = lines[lines.index(header) + 2]
        latency = int(worst.split()[0])
        assert latency > 0
        assert "timer" in worst

    def test_worst_n_is_deterministic_and_bounded(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        assert critical_path_lines(spans, worst=1) == critical_path_lines(
            list(spans), worst=1
        )


class TestSlice:
    def test_slice_by_trace_id(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        hit = slice_spans(spans, trace_id=spans[0]["trace"])
        assert hit == [spans[0]]

    def test_slice_by_auditor_name_in_hop_detail(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        touched = slice_spans(spans, reason="ht-ninja")
        assert touched
        for span in touched:
            assert any("ht-ninja" in map(str, hop) for hop in span["hops"])

    def test_slice_by_vm_and_no_match(self):
        spans, _ = collect_spans(GOLDEN_TRACE)
        assert slice_spans(spans, vm="vm0") == spans
        assert slice_spans(spans, vm="no-such-vm") == []
