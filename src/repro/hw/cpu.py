"""Virtual CPU with guest/host mode and trap-and-emulate semantics.

Every architectural side effect a guest can cause goes through a
``guest_*`` method here; each method consults the VMCS execution
controls and, when the operation is restricted, fires a VM Exit before
(or instead of) applying the effect.  This is the enforcement point for
the paper's claim that software inside the VM cannot tamper with the
hardware invariants: there is simply no other door.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from typing import Any, Deque, Dict, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.hw.ept import EptViolationSignal
from repro.hw.exits import ExitAction, ExitReason, MemAccess, VMExit
from repro.hw.msr import MsrFile
from repro.hw.registers import RegisterFile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hw.machine import Machine


class CpuMode(enum.Enum):
    GUEST = "guest"
    HOST = "host"


class VCPU:
    """One virtual processor of the guest VM."""

    def __init__(self, index: int, machine: "Machine") -> None:
        self.index = index
        self.machine = machine
        self.regs = RegisterFile()
        self.msrs = MsrFile()
        from repro.hw.vmcs import Vmcs  # local import avoids cycle

        self.vmcs = Vmcs()
        self.mode = CpuMode.GUEST
        #: Interrupt vectors waiting to be serviced at the next
        #: instruction boundary.
        self.pending_interrupts: Deque[int] = deque()
        #: Nanoseconds of work accrued since the guest executor last
        #: collected charges (exit roundtrips, emulation, forwarding).
        self._pending_charge_ns = 0
        self.exit_counts: Counter = Counter()
        #: Guest-local time: total ns this vCPU has executed.
        self.local_time_ns = 0
        self.online = True

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def charge(self, ns: int) -> None:
        """Accrue ``ns`` of work against this vCPU."""
        if ns < 0:
            raise SimulationError("negative charge")
        self._pending_charge_ns += ns

    def collect_charges(self) -> int:
        """Return and reset the accrued work (guest executor hook)."""
        ns = self._pending_charge_ns
        self._pending_charge_ns = 0
        return ns

    # ------------------------------------------------------------------
    # VM Exit machinery
    # ------------------------------------------------------------------
    def _vm_exit(
        self, reason: ExitReason, qualification: Dict[str, Any]
    ) -> VMExit:
        """Transition to host mode, dispatch the exit, return to guest."""
        exit_event = VMExit(
            reason=reason,
            vcpu_index=self.index,
            time_ns=self.machine.clock.now + self._pending_charge_ns,
            qualification=qualification,
            guest_state=self.regs.snapshot(),
            sequence=self.machine.next_exit_sequence(),
        )
        self.vmcs.record_exit(exit_event)
        self.exit_counts[reason] += 1
        self.mode = CpuMode.HOST
        self.charge(self.machine.costs.vm_exit_roundtrip_ns)
        action = self.machine.dispatch_exit(self, exit_event)
        self.mode = CpuMode.GUEST
        if action is not None:
            exit_event.qualification.setdefault("action", action)
        return exit_event

    # ------------------------------------------------------------------
    # Control registers
    # ------------------------------------------------------------------
    def guest_write_cr3(self, value: int) -> None:
        """MOV CR3, value — the process-switch instruction."""
        if self.vmcs.controls.cr3_load_exiting:
            self._vm_exit(
                ExitReason.CR_ACCESS, {"cr": 3, "value": value, "op": "write"}
            )
        self.regs.cr3 = int(value)

    def guest_read_cr3(self) -> int:
        return self.regs.cr3

    def guest_load_tr(self, base: int, selector: int = 0x40) -> None:
        """LTR — performed once per vCPU at guest boot."""
        self.regs.tr_base = int(base)
        self.regs.tr_selector = selector

    # ------------------------------------------------------------------
    # MSRs
    # ------------------------------------------------------------------
    def guest_wrmsr(self, index: int, value: int) -> None:
        if not self.msrs.known(index):
            raise SimulationError(f"guest WRMSR to unknown MSR {index:#x}")
        if self.vmcs.controls.msr_write_exiting:
            self._vm_exit(ExitReason.WRMSR, {"msr": index, "value": value})
        self.msrs.host_write(index, value)

    def guest_rdmsr(self, index: int) -> int:
        return self.msrs.read(index)

    # ------------------------------------------------------------------
    # Memory (always via guest page tables + EPT)
    # ------------------------------------------------------------------
    def _translate(self, gva: int, access: str) -> int:
        return self.machine.page_registry.translate_or_fault(
            self.regs.cr3, gva, access
        )

    def _access_checked(
        self, gpa: int, access: MemAccess, gva: int, value: Optional[int]
    ) -> Optional[int]:
        """Run an EPT-checked access; handles violation exits.

        Returns the host physical address to use, or ``None`` when the
        hypervisor told us to skip the operation.
        """
        try:
            return self.machine.ept.translate(gpa, access)
        except EptViolationSignal:
            qual: Dict[str, Any] = {
                "gpa": gpa,
                "gva": gva,
                "access": access.value,
            }
            if value is not None:
                qual["value"] = value
            exit_event = self._vm_exit(ExitReason.EPT_VIOLATION, qual)
            action = exit_event.qualification.get("action", ExitAction.EMULATE)
            if action is ExitAction.SKIP:
                return None
            # EMULATE: the hypervisor sanctioned the access; complete it
            # bypassing the (intentionally narrowed) EPT permissions.
            return self.machine.ept.translate_nofault(gpa)

    def guest_mem_write_u64(self, gva: int, value: int) -> None:
        gpa = self._translate(gva, "w")
        hpa = self._access_checked(gpa, MemAccess.WRITE, gva, value)
        if hpa is not None:
            self.machine.memory.write_u64(hpa, value)

    def guest_mem_read_u64(self, gva: int) -> int:
        gpa = self._translate(gva, "r")
        hpa = self._access_checked(gpa, MemAccess.READ, gva, None)
        if hpa is None:
            return 0
        return self.machine.memory.read_u64(hpa)

    def guest_mem_write_bytes(self, gva: int, data: bytes) -> None:
        gpa = self._translate(gva, "w")
        hpa = self._access_checked(gpa, MemAccess.WRITE, gva, None)
        if hpa is not None:
            self.machine.memory.write_bytes(hpa, data)

    def guest_mem_read_bytes(self, gva: int, length: int) -> bytes:
        gpa = self._translate(gva, "r")
        hpa = self._access_checked(gpa, MemAccess.READ, gva, None)
        if hpa is None:
            return b"\x00" * length
        return self.machine.memory.read_bytes(hpa, length)

    def guest_exec(self, gva: int) -> None:
        """Instruction fetch at ``gva`` (EPT execute check applies)."""
        gpa = self._translate(gva, "x")
        self._access_checked(gpa, MemAccess.EXECUTE, gva, None)
        self.regs.rip = gva

    # ------------------------------------------------------------------
    # Interrupts and exceptions
    # ------------------------------------------------------------------
    def guest_software_interrupt(self, vector: int) -> None:
        """INT imm8 — the legacy syscall gate among other uses."""
        if vector in self.vmcs.controls.exception_bitmap:
            self._vm_exit(
                ExitReason.EXCEPTION,
                {"ex_type": "SOFTWARE_INT", "vector": vector},
            )

    def accept_external_interrupt(self, vector: int) -> None:
        """Hardware interrupt arrival while in guest mode."""
        if self.vmcs.controls.external_interrupt_exiting:
            self._vm_exit(ExitReason.EXTERNAL_INTERRUPT, {"vector": vector})
        self.charge(self.machine.costs.irq_delivery_ns)

    def guest_hlt(self) -> None:
        if self.vmcs.controls.hlt_exiting:
            self._vm_exit(ExitReason.HLT, {})

    # ------------------------------------------------------------------
    # Port IO
    # ------------------------------------------------------------------
    def guest_io(
        self, port: int, direction: str, size: int = 4, value: int = 0
    ) -> int:
        """IN/OUT instruction; the hypervisor emulates the device."""
        if direction not in ("in", "out"):
            raise SimulationError(f"bad IO direction {direction!r}")
        qual: Dict[str, Any] = {
            "port": port,
            "direction": direction,
            "size": size,
            "value": value,
        }
        if self.vmcs.controls.io_exiting:
            exit_event = self._vm_exit(ExitReason.IO_INSTRUCTION, qual)
            return int(exit_event.qualification.get("result", 0))
        # Without IO exiting the access would hit real hardware; the
        # simulated platform has none, so reads return all-ones.
        return 0xFFFFFFFF if direction == "in" else 0

    # ------------------------------------------------------------------
    # Ring transitions (used by the guest kernel's syscall paths)
    # ------------------------------------------------------------------
    def enter_kernel_mode(self) -> None:
        """User->kernel transition: hardware loads RSP from TSS.RSP0.

        TR.base is a linear (guest-virtual) address; the hardware walks
        the current paging structures to reach the TSS bytes.
        """
        from repro.hw.tss import RSP0_OFFSET

        tss_gpa = self._translate(self.regs.tr_base, "r")
        hpa = self.machine.ept.translate_nofault(tss_gpa + RSP0_OFFSET)
        self.regs.rsp = self.machine.memory.read_u64(hpa)
        self.regs.cpl = 0

    def return_to_user_mode(self) -> None:
        self.regs.cpl = 3
