"""Tests for exploits, attack strategies, and the /proc side channel."""

import pytest

from repro.attacks.exploits import (
    CVE_2010_3847,
    CVE_2013_1763,
    ExploitPlan,
)
from repro.attacks.sidechannel import IntervalEstimate, ProcSideChannel
from repro.attacks.strategies import (
    RootkitCombinedAttack,
    SpammingAttack,
    TransientAttack,
)
from repro.auditors.o_ninja import ONinja
from repro.sim.clock import MILLISECOND, SECOND


class TestExploits:
    def test_transient_attack_escalates_and_exits(self, testbed):
        attack = TransientAttack(testbed.kernel)
        attack.launch()
        testbed.run_s(1.0)
        result = attack.result
        assert result.escalated
        assert result.acted_ns is not None
        assert result.acted_ns >= result.escalated_ns
        # attacker process is gone
        assert result.attacker_pid not in testbed.kernel.guest_view_pids()

    def test_attacker_parent_is_unprivileged_shell(self, testbed):
        attack = TransientAttack(testbed.kernel, ExploitPlan(exit_after=False))
        attack.launch()
        testbed.run_s(0.5)
        entry = testbed.kernel.guest_view_status(attack.result.attacker_pid)
        assert entry["euid"] == 0  # escalated
        parent = testbed.kernel.guest_view_status(attack.shell.pid)
        assert parent["uid"] == 1000
        assert entry["parent_gva"] == attack.shell.task_struct_gva

    def test_visible_window_measured(self, testbed):
        attack = TransientAttack(
            testbed.kernel, ExploitPlan(post_escalation_ns=2_000_000)
        )
        attack.launch()
        testbed.run_s(1.0)
        window = attack.result.visible_window_ns(testbed.engine.clock.now)
        assert 0 < window < 50 * MILLISECOND

    def test_both_cves_supported(self, testbed):
        for cve in (CVE_2013_1763, CVE_2010_3847):
            attack = TransientAttack(testbed.kernel, ExploitPlan(cve=cve))
            attack.launch()
        testbed.run_s(1.0)
        cves = {entry[2] for entry in testbed.kernel.exploit_log}
        assert cves == {CVE_2013_1763, CVE_2010_3847}


class TestRootkitCombined:
    def test_rootkit_installed_right_after_escalation(self, testbed):
        attack = RootkitCombinedAttack(testbed.kernel)
        attack.launch()
        testbed.run_s(1.0)
        result = attack.result
        assert result.rootkit_installed_ns is not None
        assert result.rootkit_installed_ns >= result.escalated_ns
        assert attack.rootkit is not None
        assert result.attacker_pid in attack.rootkit.hidden_pids

    def test_visible_window_shrinks_with_rootkit(self, testbed):
        """Hiding caps the window at escalation->install, not exit."""
        attack = RootkitCombinedAttack(
            testbed.kernel,
            plan=ExploitPlan(exit_after=False, post_escalation_ns=10_000_000),
        )
        attack.launch()
        testbed.run_s(1.0)
        window = attack.result.visible_window_ns(testbed.engine.clock.now)
        assert window < 5 * MILLISECOND


class TestSpamming:
    def test_spam_populates_process_list(self, testbed):
        spam = SpammingAttack(testbed.kernel, idle_processes=50)
        spam.spam()
        testbed.run_s(0.3)
        assert len(testbed.kernel.guest_view_pids()) >= 50

    def test_cleanup(self, testbed):
        spam = SpammingAttack(testbed.kernel, idle_processes=20)
        spam.spam()
        testbed.run_s(0.2)
        spam.cleanup()
        testbed.run_s(0.2)
        assert len(testbed.kernel.guest_view_pids()) < 20

    def test_launch_spams_if_not_done(self, testbed):
        spam = SpammingAttack(testbed.kernel, idle_processes=10)
        spam.launch()
        assert len(spam.spawned) == 10


class TestSideChannel:
    def test_interval_estimate_statistics(self):
        estimate = IntervalEstimate(samples=[1.0, 1.1, 0.9])
        assert estimate.mean == pytest.approx(1.0)
        assert estimate.minimum == 0.9
        assert estimate.maximum == 1.1
        assert estimate.stdev == pytest.approx(0.1)

    def test_measures_oninja_interval(self, testbed):
        """Table III: the predicted interval matches the configured one
        to sub-millisecond accuracy."""
        oninja = ONinja(testbed.kernel, interval_ns=1 * SECOND)
        oninja.install()

        def idle(ctx):  # a realistic process population (paper: 31)
            while True:
                yield ctx.sys_nanosleep(400 * MILLISECOND)

        for i in range(25):
            testbed.kernel.spawn_process(idle, f"svc{i}", uid=1000)
        testbed.run_s(0.3)
        channel = ProcSideChannel(
            testbed.kernel, oninja.pid, poll_period_ns=300_000
        )
        channel.launch()
        testbed.run_s(8.0)
        estimate = channel.estimate()
        assert estimate is not None
        assert estimate.mean == pytest.approx(1.0, abs=0.01)
        assert estimate.stdev < 0.005

    def test_predicts_next_scan(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=500 * MILLISECOND)
        oninja.install()
        testbed.run_s(0.2)
        channel = ProcSideChannel(
            testbed.kernel, oninja.pid, poll_period_ns=300_000
        )
        channel.launch()
        testbed.run_s(4.0)
        predicted = channel.predict_next_scan_ns()
        assert predicted is not None
        # The prediction should be within one poll of a real boundary.
        assert abs(predicted - testbed.engine.clock.now) < 1 * SECOND

    def test_blind_against_h_ninja(self, testbed):
        """No /proc entry to poll: the stat read returns None."""
        channel = ProcSideChannel(testbed.kernel, target_pid=9999)
        channel.launch()
        testbed.run_s(1.0)
        assert channel.observations == []
        assert channel.estimate() is None

    def test_stop(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=1 * SECOND)
        oninja.install()
        channel = ProcSideChannel(testbed.kernel, oninja.pid)
        channel.launch()
        testbed.run_s(1.0)
        channel.stop()
        count = len(channel.observations)
        testbed.run_s(1.0)
        assert len(channel.observations) == count
