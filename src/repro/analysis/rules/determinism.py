"""determinism: replay fidelity forbids ambient entropy and wall clocks.

The record/replay subsystem re-derives verdicts bit-for-bit from a
trace; that only holds while every timestamp comes from the virtual
clock and every random draw from the seeded stream factory
(``repro.sim.rng``).  One ``time.time()`` in a hot path silently breaks
trace comparability — at runtime, where no test looks.

Allowed islands: ``repro.sim.rng`` (the seeded stream factory itself)
and ``repro.replay.mutate`` (seeded fuzzing, one ``random.Random`` per
(seed, n) pair).

Wall-clock modules (``time``, ``datetime``) are confined to
``repro.prof`` — the one sanctioned profiling module, which re-exports
``perf_counter``/``process_time`` and owns the provenance timestamp.
Anything else wanting wall time imports it from ``repro.prof`` (so a
grep for the module enumerates every wall-clock consumer) or carries
an audited pragma.  The observability package (``repro.obs``) is held
to a stricter bar: its exports are *reproducible artifacts*
(byte-identical live, replayed and at any job count), so inside it
even the ``repro.prof`` accessors are off limits by policy — the
virtual clock (``repro.sim.clock``) is its only time source, and the
direct-import finding below carries the stricter message.

Worker scheduling is entropy too: the OS decides which process
finishes first, so any module that fans work across processes can
leak completion order into results.  ``multiprocessing`` and
``concurrent`` imports are therefore confined to ``repro.parallel``,
whose executor is *built* to erase that order (seeds travel in task
args, results merge by index).  Anything else wanting parallelism must
route through it — or carry an audited pragma explaining why not.

Event-loop readiness order is the same hazard one layer up: which
socket drains first is the kernel's choice, so ``asyncio``/``socket``
imports are confined to ``repro.serve``, whose transport is built so
wall-clock pacing stops at the frame boundary (admission and SLOs key
on virtual ``arrival_ns`` stamps, verdict/export assembly orders by
stream id, never by completion).

Binary record layouts (``struct``/``mmap``/``array``) are the byte-level
variant of the same drift hazard: two packing sites for the same event
diverge silently, and replay fidelity dies where no JSON diff will show
it.  They are confined to ``repro.replay.btrace`` — the one codec whose
layout table the event-coverage rule cross-checks against
``EVENT_CLASSES`` — with audited pragmas for the hardware-model files
that pack guest *memory images* rather than trace records.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, Iterator

from repro.analysis.findings import Finding
from repro.analysis.repo import AnalysisContext, SourceFile, dotted_name
from repro.analysis.rules import Rule, register

#: Modules allowed to draw ambient randomness / construct RNGs.
ALLOWED_MODULES: FrozenSet[str] = frozenset(
    {"repro.sim.rng", "repro.replay.mutate"}
)

#: Whole modules whose import implies nondeterminism.
ENTROPY_MODULES: FrozenSet[str] = frozenset({"random", "secrets"})

#: Modules whose import implies OS-scheduled concurrency (completion
#: order is ambient entropy unless an executor erases it).
SCHEDULING_MODULES: FrozenSet[str] = frozenset(
    {"multiprocessing", "concurrent"}
)

#: The one package allowed to touch process pools: its executor merges
#: results by index, making completion order unobservable.
PARALLEL_PACKAGE = "repro.parallel"

#: Modules whose import implies event-loop / socket readiness order
#: (kernel-scheduled, hence ambient entropy for anything downstream).
ASYNC_MODULES: FrozenSet[str] = frozenset({"asyncio", "socket", "selectors"})

#: The one package allowed to run an event loop: its service keys every
#: deterministic figure on virtual arrival stamps and orders results by
#: stream id, so socket readiness order cannot reach an export.
SERVE_PACKAGE = "repro.serve"

#: Modules that implement binary record layouts.  Not entropy — but a
#: second struct-packing site is how codec drift starts: two layouts of
#: the same event diverge silently and replay fidelity dies at the
#: byte level.  Confined to the one audited codec module, where the
#: event-coverage rule cross-checks the layout table against
#: ``EVENT_CLASSES``.
BINARY_MODULES: FrozenSet[str] = frozenset({"struct", "mmap", "array"})

#: The one sanctioned home for binary trace layouts.
BTRACE_MODULE = "repro.replay.btrace"

#: The observability package: reproducible artifacts only, so *any*
#: wall-clock module import is forbidden inside it (``perf_counter``
#: included — the virtual clock is the only time source).
OBS_PACKAGE = "repro.obs"

#: The one sanctioned home for wall-clock reads: ``repro.prof``
#: re-exports ``perf_counter``/``process_time`` and owns the audited
#: provenance timestamp, so every wall-clock consumer is one grep away.
PROF_MODULE = "repro.prof"

#: Modules that read wall time; confined to :data:`PROF_MODULE`
#: (and forbidden with a stricter message inside repro.obs).
WALL_CLOCK_MODULES: FrozenSet[str] = frozenset({"time", "datetime"})

#: ``from <module> import <name>`` pairs that smuggle entropy/wall time.
FORBIDDEN_FROM_IMPORTS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.datetime.now",
    }
)

#: Dotted call targets that read the wall clock or ambient entropy.
FORBIDDEN_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)


@register
class DeterminismRule(Rule):
    id = "determinism"
    summary = (
        "no wall-clock time or unseeded randomness outside repro.sim.rng "
        "and repro.replay.mutate (replay fidelity depends on it)"
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        for source in ctx.files:
            if source.module in ALLOWED_MODULES:
                continue
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        parallel_ok = source.module == PARALLEL_PACKAGE or source.module.startswith(
            PARALLEL_PACKAGE + "."
        )
        serve_ok = source.module == SERVE_PACKAGE or source.module.startswith(
            SERVE_PACKAGE + "."
        )
        in_obs = source.module == OBS_PACKAGE or source.module.startswith(
            OBS_PACKAGE + "."
        )
        prof_ok = source.module == PROF_MODULE
        btrace_ok = source.module == BTRACE_MODULE
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in ENTROPY_MODULES:
                        yield self._finding(source, node.lineno, f"import {alias.name}")
                    elif root in SCHEDULING_MODULES and not parallel_ok:
                        yield self._scheduling_finding(
                            source, node.lineno, f"import {alias.name}"
                        )
                    elif root in ASYNC_MODULES and not serve_ok:
                        yield self._async_finding(
                            source, node.lineno, f"import {alias.name}"
                        )
                    elif root in WALL_CLOCK_MODULES and not prof_ok:
                        if in_obs:
                            yield self._obs_finding(
                                source, node.lineno, f"import {alias.name}"
                            )
                        else:
                            yield self._wall_clock_finding(
                                source, node.lineno, f"import {alias.name}"
                            )
                    elif root in BINARY_MODULES and not btrace_ok:
                        yield self._binary_finding(
                            source, node.lineno, f"import {alias.name}"
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level or not node.module:
                    continue
                if node.module in ENTROPY_MODULES:
                    yield self._finding(
                        source, node.lineno, f"from {node.module} import ..."
                    )
                    continue
                if (
                    node.module.split(".")[0] in SCHEDULING_MODULES
                    and not parallel_ok
                ):
                    yield self._scheduling_finding(
                        source, node.lineno, f"from {node.module} import ..."
                    )
                    continue
                if node.module.split(".")[0] in ASYNC_MODULES and not serve_ok:
                    yield self._async_finding(
                        source, node.lineno, f"from {node.module} import ..."
                    )
                    continue
                if (
                    node.module.split(".")[0] in WALL_CLOCK_MODULES
                    and not prof_ok
                ):
                    if in_obs:
                        yield self._obs_finding(
                            source,
                            node.lineno,
                            f"from {node.module} import ...",
                        )
                    else:
                        yield self._wall_clock_finding(
                            source,
                            node.lineno,
                            f"from {node.module} import ...",
                        )
                    continue
                if (
                    node.module.split(".")[0] in BINARY_MODULES
                    and not btrace_ok
                ):
                    yield self._binary_finding(
                        source, node.lineno, f"from {node.module} import ..."
                    )
                    continue
                for alias in node.names:
                    qualified = f"{node.module}.{alias.name}"
                    if qualified in FORBIDDEN_FROM_IMPORTS:
                        yield self._finding(
                            source,
                            node.lineno,
                            f"from {node.module} import {alias.name}",
                        )
            elif isinstance(node, ast.Call):
                target = dotted_name(node.func)
                if target is not None and target in FORBIDDEN_CALLS:
                    yield self._finding(source, node.lineno, f"{target}()")

    def _finding(self, source: SourceFile, line: int, what: str) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"nondeterministic source '{what}' outside the sanctioned RNG "
            "modules; use the virtual clock (machine.clock / engine.clock) "
            "or a seeded stream from repro.sim.rng.RandomStreams",
        )

    def _obs_finding(self, source: SourceFile, line: int, what: str) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"wall-clock module '{what}' inside {OBS_PACKAGE}; metric "
            "exports are reproducible artifacts, so repro.obs reads time "
            "only from the virtual clock (repro.sim.clock) — even "
            "perf_counter is off limits here",
        )

    def _wall_clock_finding(
        self, source: SourceFile, line: int, what: str
    ) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"wall-clock module '{what}' outside {PROF_MODULE}; host-time "
            "reads are confined to repro.prof (import perf_counter/"
            "process_time/profile_scope from there) so every wall-clock "
            "consumer stays one grep away — or carry an audited pragma",
        )

    def _scheduling_finding(
        self, source: SourceFile, line: int, what: str
    ) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"process-pool primitive '{what}' outside {PARALLEL_PACKAGE}; "
            "worker completion order is ambient entropy — fan work out "
            "through repro.parallel.parallel_map, which merges results "
            "by index and keeps output byte-identical to a serial run",
        )

    def _binary_finding(self, source: SourceFile, line: int, what: str) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"binary-layout primitive '{what}' outside {BTRACE_MODULE}; a "
            "second struct-packing site is how codec drift starts — encode "
            "through repro.replay.btrace, whose layout table is checked "
            "against EVENT_CLASSES at commit time",
        )

    def _async_finding(self, source: SourceFile, line: int, what: str) -> Finding:
        return self.finding(
            source.rel,
            line,
            f"event-loop/socket primitive '{what}' outside {SERVE_PACKAGE}; "
            "socket readiness order is kernel-scheduled entropy — serve "
            "streams through repro.serve, whose transport keys every "
            "deterministic figure on virtual arrival stamps and orders "
            "results by stream id",
        )
