"""Tests for guest page tables and the page-table registry."""

import pytest

from repro.errors import GuestPageFault, SimulationError
from repro.hw.memory import PAGE_SIZE
from repro.hw.paging import PageTableRegistry, UNMAPPED_GVA


@pytest.fixture
def registry():
    return PageTableRegistry()


class TestAddressSpace:
    def test_unique_pdbas(self, registry):
        a = registry.create_address_space()
        b = registry.create_address_space()
        assert a.pdba != b.pdba

    def test_user_mapping(self, registry):
        space = registry.create_address_space()
        space.map_user_page(0x400000, 0x10000)
        assert space.translate(0x400123) == 0x10123

    def test_kernel_mapping_shared(self, registry):
        a = registry.create_address_space()
        b = registry.create_address_space()
        registry.kernel.map_page(0xFFFF_8880_0000_0000, 0x2000)
        assert a.translate(0xFFFF_8880_0000_0008) == 0x2008
        assert b.translate(0xFFFF_8880_0000_0008) == 0x2008

    def test_user_mappings_private(self, registry):
        a = registry.create_address_space()
        b = registry.create_address_space()
        a.map_user_page(0x400000, 0x10000)
        assert b.translate(0x400000) is None

    def test_unmap_user_page(self, registry):
        space = registry.create_address_space()
        space.map_user_page(0x400000, 0x10000)
        space.unmap_user_page(0x400000)
        assert space.translate(0x400000) is None

    def test_mapping_into_destroyed_space_fails(self, registry):
        space = registry.create_address_space()
        registry.destroy_address_space(space)
        with pytest.raises(SimulationError):
            space.map_user_page(0x400000, 0x10000)


class TestRegistry:
    def test_gva_to_gpa_via_pdba(self, registry):
        space = registry.create_address_space()
        space.map_user_page(0x400000, 0x30000)
        assert registry.gva_to_gpa(space.pdba, 0x400010) == 0x30010

    def test_stale_pdba_is_unmapped(self, registry):
        """The eviction signal Fig 3A's validity probe relies on."""
        space = registry.create_address_space()
        space.map_user_page(0x400000, 0x30000)
        pdba = space.pdba
        registry.destroy_address_space(space)
        assert registry.gva_to_gpa(pdba, 0x400000) == UNMAPPED_GVA

    def test_unknown_pdba_is_unmapped(self, registry):
        assert registry.gva_to_gpa(0xDEAD000, 0x400000) == UNMAPPED_GVA

    def test_translate_or_fault(self, registry):
        space = registry.create_address_space()
        with pytest.raises(GuestPageFault):
            registry.translate_or_fault(space.pdba, 0x400000, "r")

    def test_live_spaces_iteration(self, registry):
        spaces = [registry.create_address_space() for _ in range(3)]
        registry.destroy_address_space(spaces[1])
        assert len(list(registry.live_spaces())) == 2
        assert len(registry) == 2

    def test_offset_preserved(self, registry):
        space = registry.create_address_space()
        space.map_user_page(0x400000, 0x30000)
        for off in (0, 1, PAGE_SIZE - 1):
            assert registry.gva_to_gpa(space.pdba, 0x400000 + off) == 0x30000 + off
