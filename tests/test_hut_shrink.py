"""Unit tests for the generalized ddmin reducer.

`repro.testing.shrink.ddmin` now takes an arbitrary item sequence and
a pluggable boolean predicate (the hut shrinker and the trace shrinker
are both thin wrappers over it).  These tests pin the reducer contract
in isolation, on predicates cheap enough to exhaust:

* minimization to exactly the relevant subset under a monotone
  predicate, and 1-minimality of the result;
* ``ValueError`` when the predicate does not hold on the full input;
* the ``max_tests`` budget bounds predicate evaluations;
* byte-identical results (and test counts) at ``jobs=1`` vs ``jobs=2``
  — the parallel path is speculative, committing in serial order.

CLI-level byte reproducibility of ``hut-fuzz``/``hut-shrink`` rides
along at the bottom, since the acceptance contract is phrased against
the command line.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.testing import ddmin
from repro.testing.__main__ import main


# ======================================================================
# ddmin unit tests
# ======================================================================
class ContainsMarkers:
    """Monotone predicate: candidate keeps every marker item.

    Module-level class so ``jobs=2`` can pickle instances into worker
    processes; it also counts serial-path evaluations.
    """

    def __init__(self, markers):
        self.markers = frozenset(markers)
        self.calls = 0

    def __call__(self, candidate):
        self.calls += 1
        return self.markers <= set(candidate)


def test_ddmin_minimizes_to_marker_set():
    items = list(range(40))
    predicate = ContainsMarkers({3, 17, 31})
    result = ddmin(items, predicate)
    assert result == [3, 17, 31]  # minimal, original order preserved


def test_ddmin_result_is_one_minimal():
    items = list(range(24))
    markers = {1, 8, 9, 20}
    result = ddmin(items, ContainsMarkers(markers))
    check = ContainsMarkers(markers)
    assert check(result)
    for index in range(len(result)):
        assert not check(result[:index] + result[index + 1:])


def test_ddmin_threshold_predicate():
    # Non-singleton minima: "at least 3 even numbers" is monotone but
    # no specific item is required; the reducer must land on exactly 3.
    items = list(range(30))
    result = ddmin(items, lambda c: sum(1 for x in c if x % 2 == 0) >= 3)
    assert len(result) == 3
    assert all(x % 2 == 0 for x in result)


def test_ddmin_raises_on_non_reproducing_input():
    with pytest.raises(ValueError):
        ddmin(list(range(10)), lambda c: 99 in c)


def test_ddmin_respects_max_tests():
    predicate = ContainsMarkers({5})
    ddmin(list(range(64)), predicate, max_tests=10)
    # One qualifying call on the full input plus at most max_tests
    # candidate evaluations.
    assert predicate.calls <= 11


def test_ddmin_single_item_and_trivial_inputs():
    assert ddmin([7], lambda c: 7 in c) == [7]
    always = lambda c: True  # noqa: E731
    assert ddmin([1, 2, 3], always) in ([1], [2], [3])


def test_ddmin_identical_at_jobs_1_and_2():
    items = list(range(50))
    markers = {2, 3, 29, 41, 47}
    serial = ddmin(items, ContainsMarkers(markers), jobs=1)
    parallel = ddmin(items, ContainsMarkers(markers), jobs=2)
    assert serial == parallel == sorted(markers)


def test_ddmin_budget_identical_at_jobs_1_and_2():
    # The parallel path commits in serial order and discards
    # speculative evaluations unpaid, so a tight budget cuts the
    # reduction off at the same point regardless of job count.
    items = list(range(48))
    for budget in (5, 9, 17):
        serial = ddmin(items, ContainsMarkers({11, 30}),
                       max_tests=budget, jobs=1)
        parallel = ddmin(items, ContainsMarkers({11, 30}),
                         max_tests=budget, jobs=2)
        assert serial == parallel


# ======================================================================
# CLI byte-reproducibility (the acceptance phrasing of determinism)
# ======================================================================
def _run_hut_fuzz(tmp_path, name, jobs):
    out = tmp_path / name
    rc = main([
        "hut-fuzz", "--target", "msr", "--seed", "5", "--budget", "8",
        "--length", "24", "--jobs", str(jobs), "--out", str(out),
    ])
    assert rc == 0
    return out.read_bytes()


def test_cli_hut_fuzz_byte_reproducible(tmp_path):
    first = _run_hut_fuzz(tmp_path, "a.jsonl", jobs=1)
    second = _run_hut_fuzz(tmp_path, "b.jsonl", jobs=1)
    sharded = _run_hut_fuzz(tmp_path, "c.jsonl", jobs=2)
    assert first == second == sharded


def test_cli_hut_fuzz_then_shrink_round_trip(tmp_path, capsys):
    artifacts = tmp_path / "findings"
    rc = main([
        "hut-fuzz", "--target", "ept", "--seed", "1", "--budget", "16",
        "--inject-bug", "ept-exec-bypass", "--artifacts", str(artifacts),
    ])
    assert rc == 0
    capsys.readouterr()
    witnesses = sorted(artifacts.glob("hut-*.jsonl"))
    assert witnesses
    shrunk_path = tmp_path / "shrunk.jsonl"
    rc = main([
        "hut-shrink", str(witnesses[0]), "--out", str(shrunk_path),
    ])
    assert rc == 0
    capsys.readouterr()
    lines = shrunk_path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["hut"]["ops"] == len(lines) - 1
    assert header["hut"]["ops"] < 48


def test_cli_rejects_unknown_bug(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["hut-fuzz", "--target", "msr", "--seed", "1",
              "--inject-bug", "nope"])
    assert excinfo.value.code == 2
    assert "invalid choice" in capsys.readouterr().err
