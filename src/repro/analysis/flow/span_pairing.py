"""``flow.span-pairing`` — CFG span pairing + pinned counter labels.

**Span pairing.**  ``MetricsRegistry.span_begin`` opens a publish-order
flow span that ``span_end`` must close; a span left open on any
non-exception path silently eats the next publish's hops, skewing the
flow-span telemetry that replay determinism tests diff byte-for-byte.
For every function that calls ``span_begin`` this rule runs a forward
dataflow over its CFG tracking the open-span state, and reports a span
still open at the normal exit (fall-through/return) or at an explicit
``raise`` exit — the "leak on raise" an early ``return``-style bug
pattern produces.  ``finally``-closed spans are handled correctly (the
CFG replays ``finally`` bodies on abrupt exits).

**Pinned labels.**  Some counters carry a label that must come from a
pinned vocabulary — ``flow.dropped{reason=…}`` from ``DROP_REASONS``,
``flow.rejected{reason=…}`` from ``REJECT_REASONS`` — because ad-hoc
labels fragment triage queries and dodge the accounting identity.  The
event-coverage rule already checks *direct* ``flow.dropped`` call
sites; this rule generalizes the idea to any pinned set and makes it
**interprocedural**: a helper that forwards a parameter into the label
(``ReplaySource._reject``) is detected, and every call site of the
helper — including through local aliases like ``reject =
self._reject`` — must pass a literal from the set.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import FlowIndex
from repro.analysis.flow.cfg import BranchTest, LoopIter
from repro.analysis.flow.lattice import forward
from repro.analysis.flow.callgraph import FunctionScope, iter_function_scopes
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import Rule, register

#: (counter, label, table in repro.obs.metrics, checked directly here).
#: Direct ``flow.dropped`` literals stay owned by the event-coverage
#: rule (avoiding double findings); the interprocedural helper check
#: below applies to every entry.
PINNED_LABEL_SETS: Tuple[Tuple[str, str, str, bool], ...] = (
    ("flow.dropped", "reason", "DROP_REASONS", False),
    ("flow.rejected", "reason", "REJECT_REASONS", True),
)

_METRICS_MODULE = "repro.obs.metrics"
_COUNTER_FUNCS = {"inc", "counter"}


def _find_str_set(tree: ast.Module, name: str) -> Optional[FrozenSet[str]]:
    """``NAME = frozenset({...})`` (or a plain set/tuple literal)."""
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == name for t in node.targets
        ):
            continue
        value = node.value
        if isinstance(value, ast.Call) and value.args:
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            return frozenset(
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
    return None


def _counter_call(call: ast.Call) -> Optional[str]:
    """The counter name when this is an ``inc``/``counter`` call with a
    literal first argument."""
    func = call.func
    attr = (
        func.attr if isinstance(func, ast.Attribute)
        else func.id if isinstance(func, ast.Name) else None
    )
    if attr not in _COUNTER_FUNCS:
        return None
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        return call.args[0].value
    return None


def _span_calls(stmt: ast.AST) -> List[Tuple[str, ast.Call]]:
    """("begin"|"end", call) nodes inside one statement, lexical order."""
    found: List[Tuple[str, ast.Call]] = []
    stack = [stmt]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            func = node.func
            attr = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name) else None
            )
            if attr == "span_begin":
                found.append(("begin", node))
            elif attr == "span_end":
                found.append(("end", node))
        stack.extend(ast.iter_child_nodes(node))
    found.sort(key=lambda item: (item[1].lineno, item[1].col_offset))
    return found


@register
class SpanPairingRule(Rule):
    id = "flow.span-pairing"
    summary = (
        "span_begin needs span_end on every non-exception path; pinned "
        "counter labels must be literals from their declared set"
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        index = FlowIndex.for_context(ctx)
        for source in ctx.files:
            for scope in iter_function_scopes(source):
                if any(
                    isinstance(n, ast.Call)
                    and _span_calls(n)
                    for n in scope.walk_own()
                    if isinstance(n, ast.Call)
                ):
                    yield from self._check_spans(index, scope)
        yield from self._check_pinned_labels(ctx, index)

    # ------------------------------------------------------------------
    # Span pairing (CFG dataflow)
    # ------------------------------------------------------------------
    def _check_spans(self, index: FlowIndex, scope: FunctionScope
                     ) -> Iterator[Finding]:
        cfg = index.cfg(scope.node)
        rel = scope.source.rel
        emitted: Set[Tuple[int, str]] = set()

        def transfer(block, state):
            open_lines = set(state)
            for stmt in block.stmts:
                node = stmt.test if isinstance(stmt, BranchTest) else (
                    stmt.iter if isinstance(stmt, LoopIter) else stmt
                )
                for kind, call in _span_calls(node):
                    if kind == "begin":
                        open_lines = {call.lineno}
                    else:
                        open_lines = set()
            return frozenset(open_lines)

        in_states = forward(cfg, frozenset(), transfer, frozenset.union)

        findings: List[Finding] = []
        for block_id, state in in_states.items():
            # Re-run with double-begin detection at fixpoint states.
            open_lines = set(state)
            for stmt in cfg.blocks[block_id].stmts:
                node = stmt.test if isinstance(stmt, BranchTest) else (
                    stmt.iter if isinstance(stmt, LoopIter) else stmt
                )
                for kind, call in _span_calls(node):
                    if kind == "begin":
                        if open_lines:
                            key = (call.lineno, "nested")
                            if key not in emitted:
                                emitted.add(key)
                                findings.append(self.finding(
                                    rel, call.lineno,
                                    f"span_begin() in {scope.qualname}() "
                                    f"while a span opened earlier on this "
                                    f"path is still open (the open span's "
                                    f"hops are silently abandoned)",
                                ))
                        open_lines = {call.lineno}
                    else:
                        open_lines = set()
        for exit_id, path in ((cfg.exit, "fall-through/return"),
                              (cfg.raise_exit, "explicit raise")):
            for line in sorted(in_states.get(exit_id, frozenset())):
                findings.append(self.finding(
                    rel, line,
                    f"span_begin() in {scope.qualname}() has no matching "
                    f"span_end() on a {path} path",
                ))
        findings.sort(key=lambda f: (f.line, f.message))
        yield from findings

    # ------------------------------------------------------------------
    # Pinned label sets (direct + interprocedural)
    # ------------------------------------------------------------------
    def _check_pinned_labels(self, ctx: AnalysisContext, index: FlowIndex
                             ) -> Iterator[Finding]:
        metrics = ctx.module(_METRICS_MODULE)
        tables: Dict[str, FrozenSet[str]] = {}
        if metrics is not None:
            for counter, _label, table, _direct in PINNED_LABEL_SETS:
                pinned = _find_str_set(metrics.tree, table)
                if pinned is not None:
                    tables[counter] = pinned
        if not tables:
            return
        graph = index.callgraph
        forwarders: List[Tuple[object, str, int, str]] = []
        for source in ctx.files:
            for scope in iter_function_scopes(source):
                params = _positional_params(scope.node)
                for node in scope.walk_own():
                    if not isinstance(node, ast.Call):
                        continue
                    counter = _counter_call(node)
                    if counter is None or counter not in tables:
                        continue
                    label = _pin_label(counter)
                    if label is None:
                        continue
                    value = _keyword(node, label)
                    if value is None:
                        continue
                    if isinstance(value, ast.Constant):
                        yield from self._check_literal(
                            source.rel, node, counter, label, value,
                            tables[counter],
                        )
                    elif isinstance(value, ast.Name) and value.id in params:
                        info = graph.functions.get(
                            (source.module, scope.qualname)
                        )
                        if info is not None:
                            forwarders.append(
                                (info, counter,
                                 params.index(value.id), label)
                            )
                    elif self._direct_checked(counter):
                        yield self.finding(
                            source.rel, node.lineno,
                            f"{counter}{{{label}=…}} must carry a literal "
                            f"{label} from "
                            f"{_table_name(counter)} (or forward a "
                            f"parameter checked at every call site)",
                        )
        for info, counter, param_index, label in forwarders:
            yield from self._check_forwarder(
                graph, info, counter, param_index, label, tables[counter]
            )

    def _direct_checked(self, counter: str) -> bool:
        for name, _label, _table, direct in PINNED_LABEL_SETS:
            if name == counter:
                return direct
        return False

    def _check_literal(self, rel, node, counter, label, value, pinned
                       ) -> Iterator[Finding]:
        if not self._direct_checked(counter):
            return
        if not isinstance(value.value, str) or value.value not in pinned:
            yield self.finding(
                rel, node.lineno,
                f"{counter}{{{label}={value.value!r}}} is not in the "
                f"pinned set {_table_name(counter)} "
                f"({', '.join(sorted(pinned))})",
            )

    def _check_forwarder(self, graph, info, counter, param_index, label,
                         pinned) -> Iterator[Finding]:
        param_names = _positional_params(info.node)
        param = param_names[param_index]
        for source, _scope, call in graph.call_sites_of(info):
            value: Optional[ast.expr] = None
            if param_index < len(call.args):
                candidate = call.args[param_index]
                if not isinstance(candidate, ast.Starred):
                    value = candidate
            for kw in call.keywords:
                if kw.arg == param:
                    value = kw.value
            if value is None:
                continue
            if not isinstance(value, ast.Constant):
                yield self.finding(
                    source.rel, call.lineno,
                    f"{info.name}() forwards its argument into "
                    f"{counter}{{{label}=…}}; call sites must pass a "
                    f"literal from {_table_name(counter)}",
                )
            elif (not isinstance(value.value, str)
                  or value.value not in pinned):
                yield self.finding(
                    source.rel, call.lineno,
                    f"{info.name}() reason {value.value!r} is not in the "
                    f"pinned set {_table_name(counter)} "
                    f"({', '.join(sorted(pinned))})",
                )


def _pin_label(counter: str) -> Optional[str]:
    for name, label, _table, _direct in PINNED_LABEL_SETS:
        if name == counter:
            return label
    return None


def _table_name(counter: str) -> str:
    for name, _label, table, _direct in PINNED_LABEL_SETS:
        if name == counter:
            return f"{_METRICS_MODULE}.{table}"
    return "<unknown>"


def _keyword(call: ast.Call, name: str) -> Optional[ast.expr]:
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _positional_params(node: ast.AST) -> List[str]:
    args = getattr(node, "args", None)
    if args is None or not hasattr(args, "args"):
        return []
    names = [a.arg for a in args.posonlyargs + args.args]
    return [n for n in names if n != "self"]
