"""ddmin-style trace reduction: from a failing trace to a minimal repro.

Zeller's delta debugging over the trace body: repeatedly try removing
chunks of records and keep any removal under which the interesting
property (the same differential finding, by key) still reproduces.
Timestamps are preserved — a finding that depends on a silence gap or
on sighting staleness survives removal of unrelated records but not a
renumbering — and the header is kept verbatim apart from a recount.

The predicate replays each candidate, so reduction cost is bounded by
``max_tests`` replays; with the auditor pipeline at ~100k events/s a
few hundred tests over a shrinking trace finish in seconds.
"""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, List, Optional

from repro.replay.format import Trace
from repro.replay.source import ReplaySource
from repro.sim.perturb import perturbation_from_params
from repro.testing.oracle import DifferentialOracle
from repro.testing.seeds import auditors_for


def materialize_schedule(
    trace: Trace, perturb_params: Dict[str, Any]
) -> Trace:
    """Bake an adversarial delivery schedule into the trace itself.

    A perturbed replay delivers records in engine order — delayed,
    shuffled, with some dropped.  Re-running the scheduling pass and
    sorting the surviving records by their actual ``(when, prio, seq)``
    yields an ordinary trace whose *file order* is that delivery order
    (unperturbed replay never rewinds its clock, so an old-timestamp
    record placed late still arrives late).  Timestamps are preserved.
    Findings that survive materialization shrink as plain traces — no
    perturbation seed to keep consistent while records are removed.
    """
    source = ReplaySource(
        trace,
        [],
        perturb=perturbation_from_params(perturb_params),
        collect_delivery=True,
    )
    source.run()
    ordered = sorted(source.delivery_log, key=lambda e: e[:3])
    materialized = _subtrace(
        trace, [copy.deepcopy(e[3]) for e in ordered]
    )
    materialized.header.meta["materialized_from"] = dict(perturb_params)
    return materialized


def make_finding_predicate(
    key: str,
    perturb_params: Optional[Dict[str, Any]] = None,
    oracle: Optional[DifferentialOracle] = None,
) -> Callable[[Trace], bool]:
    """True when replaying ``trace`` still yields the finding ``key``."""
    oracle = oracle if oracle is not None else DifferentialOracle()

    def predicate(trace: Trace) -> bool:
        perturb = (
            perturbation_from_params(perturb_params)
            if perturb_params is not None
            else None
        )
        try:
            auditors = auditors_for(trace)
            report = ReplaySource(trace, auditors, perturb=perturb).run()
        except Exception:  # noqa: BLE001 - a crashing candidate is not a repro
            return False
        return any(d.key() == key for d in oracle.check(trace, report))

    return predicate


def _subtrace(trace: Trace, records: List[Dict[str, Any]]) -> Trace:
    sub = Trace(header=copy.deepcopy(trace.header), records=records)
    sub.recount()
    return sub


def shrink_trace(
    trace: Trace,
    predicate: Callable[[Trace], bool],
    max_tests: int = 2000,
) -> Trace:
    """Minimize ``trace.records`` while ``predicate`` keeps holding.

    ``predicate`` must hold on ``trace`` itself (raises ``ValueError``
    otherwise — shrinking a non-repro silently would hide harness bugs).
    Returns a new :class:`Trace`; the input is never modified.
    """
    if not predicate(_subtrace(trace, list(trace.records))):
        raise ValueError("predicate does not hold on the unshrunk trace")
    records = list(trace.records)
    tests = 0
    n = 2
    while len(records) >= 2 and tests < max_tests:
        chunk_len = max(1, (len(records) + n - 1) // n)
        removed_any = False
        start = 0
        while start < len(records) and tests < max_tests:
            candidate = records[:start] + records[start + chunk_len:]
            if not candidate:
                start += chunk_len
                continue
            tests += 1
            if predicate(_subtrace(trace, candidate)):
                records = candidate
                removed_any = True
                # Stay at this granularity; the window now points at
                # the records that slid into the removed chunk's place.
            else:
                start += chunk_len
        if removed_any:
            n = max(n - 1, 2)
        else:
            if chunk_len == 1:
                break
            n = min(n * 2, len(records))
    return _subtrace(trace, records)
