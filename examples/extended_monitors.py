#!/usr/bin/env python3
"""The §VII-D extension monitors, all on one logging channel.

The paper argues HyperTap's unified logging can host whole families of
existing RnS tools.  This demo runs four of them simultaneously:

* syscall policy enforcement (Systrace-style allow-lists),
* syscall sequence anomaly detection (classic sequence IDS),
* a Vigilant-style learned failure detector,
* fine-grained kernel data-structure integrity watching,

then stages two incidents — a daemon compromise and an in-guest DKOM
attempt — and shows which monitor catches what.

Run:  python examples/extended_monitors.py
"""

from repro import Testbed, TestbedConfig
from repro.auditors import (
    KernelDataWatch,
    SyscallPolicy,
    SyscallPolicyAuditor,
    SyscallSequenceAnomalyDetector,
    TraceRecorder,
    VigilantDetector,
)
from repro.guest.layouts import TASK_STRUCT


def main() -> None:
    print("== HyperTap as a platform: four extension monitors ==")
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=77))
    testbed.boot()

    policy = SyscallPolicyAuditor(
        {
            "/usr/sbin/datad": SyscallPolicy.allow(
                "/usr/sbin/datad",
                "open", "read", "write", "close", "nanosleep",
            )
        }
    )
    anomaly = SyscallSequenceAnomalyDetector(ngram=3)
    vigilant = VigilantDetector(window_ns=500_000_000, training_windows=6)
    watch = KernelDataWatch()
    trace = TraceRecorder(capacity=5000, resolve_tasks=True)
    testbed.monitor([policy, anomaly, vigilant, watch, trace])
    watch.watch_all_tasks(testbed.kernel)
    print("attached: policy + sequence-IDS + vigilant + data-watch + tracer\n")

    compromised = {"active": False}

    def datad(ctx):
        while True:
            if not compromised["active"]:
                fd = yield ctx.sys_open("/var/data")
                yield ctx.sys_read(fd, 512)
                yield ctx.sys_write(fd, 512)
                yield ctx.sys_close(fd)
            else:  # post-exploit behaviour
                yield ctx.syscall("vuln_sock_diag")
                yield ctx.sys_disk_read(2)
            yield ctx.sys_nanosleep(20_000_000)

    daemon = testbed.kernel.spawn_process(
        datad, "datad", uid=2, exe="/usr/sbin/datad"
    )
    print("training on 4s of healthy behaviour ...")
    testbed.run_s(4.0)
    anomaly.finish_learning()
    print(f"  vigilant trained: {vigilant.trained}; "
          f"sequence profile: {anomaly.profile_size('/usr/sbin/datad')} n-grams")

    print("\n[incident 1] datad is compromised (starts exploiting + exfil)")
    compromised["active"] = True
    testbed.run_s(2.0)
    print(f"  policy violations : {len(policy.violations)} "
          f"(first: {policy.violations[0]['syscall']!r} not in allow-list)"
          if policy.violations else "  policy violations : none")
    print(f"  sequence anomalies: {anomaly.anomalies_found}")

    print("\n[incident 2] in-guest rootkit unlinks datad via /dev/kmem")
    off_next = TASK_STRUCT.offset("tasks_next")
    off_prev = TASK_STRUCT.offset("tasks_prev")
    victim_gva = daemon.task_struct_gva

    def installer(ctx):
        nxt = yield ctx.kmem_read(victim_gva + off_next)
        prv = yield ctx.kmem_read(victim_gva + off_prev)
        yield ctx.kmem_write(prv + off_next, nxt)
        yield ctx.kmem_write(nxt + off_prev, prv)
        yield ctx.exit(0)

    testbed.kernel.spawn_process(installer, "insmod", uid=0, exe="/rk.ko")
    testbed.run_s(1.0)
    for alert in watch.tamper_alerts[:2]:
        print(f"  data-watch: task-list pointer rewritten by "
              f"{alert['writer_comm']!r} (pid {alert['writer_pid']})")

    print(f"\ntrace recorder captured {len(trace.records)} events "
          f"({trace.event_counts()})")
    tail = trace.syscall_trace(pid=daemon.pid)[-3:]
    print("last syscalls of the compromised daemon:",
          [record["nr"] for record in tail])
    print("done: four policies, one logging phase, zero guest changes.")


if __name__ == "__main__":
    main()
