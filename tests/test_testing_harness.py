"""Unit tests for the conformance harness (repro.testing).

Coverage map semantics, per-auditor differential oracles over
hand-built traces, seeded fuzzer determinism, ddmin shrinking, and the
CLI surface.  The oracles are exercised on synthetic records — ground
truth must be checkable by eye here, because everything else in the
harness trusts it.
"""

from __future__ import annotations

import json

import pytest

from repro.replay.format import (
    Trace,
    TraceHeader,
    scan_marker,
)
from repro.sim.clock import MILLISECOND, SECOND
from repro.testing import __main__ as cli
from repro.testing.coverage import CoverageAuditor, CoverageMap, gap_bucket
from repro.testing.fuzzer import FuzzConfig, Fuzzer
from repro.testing.oracle import (
    DifferentialOracle,
    Discrepancy,
    GoshdOracle,
    HrkdOracle,
    NinjaOracle,
    finding_key,
)
from repro.testing.seeds import base_trace, known_miss_trace
from repro.testing.shrink import make_finding_predicate, shrink_trace

THRESHOLD = GoshdOracle().threshold_ns
CERTAIN_BAR = THRESHOLD + 2 * GoshdOracle().check_period_ns


def switch(t, vcpu=0, rsp0=0x1000, task=None, parent=None):
    record = {
        "kind": "event",
        "type": "thread_switch",
        "t": t,
        "vcpu": vcpu,
        "vm": "vm0",
        "rsp0": rsp0,
    }
    if task is not None:
        record["task"] = task
    if parent is not None:
        record["parent"] = parent
    return record


def syscall(t, nr, task=None, parent=None):
    record = {
        "kind": "event",
        "type": "syscall",
        "t": t,
        "vcpu": 0,
        "vm": "vm0",
        "nr": nr,
        "args": [],
    }
    if task is not None:
        record["task"] = task
    if parent is not None:
        record["parent"] = parent
    return record


def task_ann(pid, euid=1000, uid=1000, flags=0, exe="/bin/cat"):
    return {
        "task_struct_gva": 0x8000 + pid,
        "pid": pid,
        "uid": uid,
        "euid": euid,
        "comm": "t",
        "exe": exe,
        "flags": flags,
        "parent_gva": 0,
    }


def make_trace(records, end_ns=30 * SECOND, num_vcpus=1):
    header = TraceHeader(num_vcpus=num_vcpus, end_ns=end_ns, scenario="unit")
    return Trace(header=header, records=list(records))


# ======================================================================
# Coverage
# ======================================================================
class TestCoverage:
    def test_gap_bucket_families(self):
        assert gap_bucket(-1) == -1
        assert gap_bucket(0) == 0
        assert gap_bucket(1) == 1
        assert gap_bucket(1024) == 11
        # Aeons collapse into one terminal bucket.
        assert gap_bucket(10**18) == gap_bucket(10**15)

    def test_map_add_merge_novelty(self):
        a = CoverageMap()
        assert a.add("type:io") is True
        assert a.add("type:io") is False
        b = CoverageMap(["type:io", "trans:io>io"])
        assert a.novelty(b) == 1
        assert a.merge(b) == 1
        assert a.merge(b) == 0
        assert "trans:io>io" in a
        assert len(a) == 2

    def test_auditor_features_from_stream(self):
        from repro.replay.format import decode_event

        probe = CoverageAuditor()
        for record in (switch(1 * SECOND), switch(2 * SECOND),
                       syscall(2 * SECOND, nr=0)):
            probe.audit(decode_event(record)[0])
        features = probe.map.features
        assert "type:thread_switch" in features
        assert "trans:thread_switch>syscall" in features
        assert any(f.startswith("gap:v0:") for f in features)

    def test_absorb_alerts_skips_own(self):
        probe = CoverageAuditor()
        probe.absorb_alerts({
            "goshd": [{"kind": "vcpu_hang", "vcpu": 0}],
            probe.name: [{"kind": "self"}],
        })
        assert "alert:goshd:vcpu_hang" in probe.map
        assert f"alert:{probe.name}:self" not in probe.map


# ======================================================================
# Oracles
# ======================================================================
class TestGoshdOracle:
    def test_certain_gap_is_expected(self):
        trace = make_trace(
            [switch(1 * SECOND), switch(1 * SECOND + CERTAIN_BAR + SECOND)],
            end_ns=CERTAIN_BAR + 3 * SECOND,
        )
        certain, ambiguous = GoshdOracle().expected_hangs(trace)
        assert certain == {0}
        assert ambiguous == set()

    def test_band_between_threshold_and_bar_is_ambiguous(self):
        gap = (THRESHOLD + CERTAIN_BAR) // 2
        trace = make_trace(
            [switch(MILLISECOND), switch(MILLISECOND + gap)],
            end_ns=MILLISECOND + gap,
        )
        certain, ambiguous = GoshdOracle().expected_hangs(trace)
        assert certain == set()
        assert ambiguous == {0}

    def test_dense_switching_expects_nothing(self):
        records = [switch(i * SECOND) for i in range(1, 29)]
        trace = make_trace(records, end_ns=29 * SECOND)
        certain, ambiguous = GoshdOracle().expected_hangs(trace)
        assert certain == set() and ambiguous == set()

    def test_ground_truth_ignores_delivery_order(self):
        records = [switch(20 * SECOND), switch(1 * SECOND)]
        shuffled = make_trace(records, end_ns=21 * SECOND)
        ordered = make_trace(list(reversed(records)), end_ns=21 * SECOND)
        assert (
            GoshdOracle().expected_hangs(shuffled)
            == GoshdOracle().expected_hangs(ordered)
        )

    def test_absurd_timestamp_is_outside_the_horizon(self):
        # Regression: a corrupt t=2**63 must not create a "certain
        # hang" the replayed auditor could never have seen (replay
        # rejects the record at the same horizon).
        records = [switch(i * SECOND) for i in range(1, 29)]
        records.append(switch(2 ** 63))
        trace = make_trace(records, end_ns=29 * SECOND)
        certain, ambiguous = GoshdOracle().expected_hangs(trace)
        assert certain == set() and ambiguous == set()

    def test_check_reports_miss_and_false_alarm(self):
        trace = make_trace(
            [switch(1 * SECOND, vcpu=0), switch(SECOND + CERTAIN_BAR + SECOND, vcpu=0)]
            + [switch(i * SECOND, vcpu=1) for i in range(1, 11)],
            end_ns=CERTAIN_BAR + 3 * SECOND,
            num_vcpus=2,
        )
        out = GoshdOracle().check(
            trace, [{"kind": "vcpu_hang", "vcpu": 1}]
        )
        keys = {d.key() for d in out}
        assert keys == {
            "miss:goshd:vcpu=0",
            "false_alarm:goshd:vcpu=1",
        }


class TestHrkdOracle:
    def test_sighted_pid_absent_from_scan_is_expected(self):
        trace = make_trace([
            switch(1 * SECOND, task=task_ann(42)),
            scan_marker(2 * SECOND, "hrkd", "ssh", [1, 2]),
        ])
        assert HrkdOracle().expected_hidden(trace) == {42}

    def test_pid_in_untrusted_view_is_not_hidden(self):
        trace = make_trace([
            switch(1 * SECOND, task=task_ann(42)),
            scan_marker(2 * SECOND, "hrkd", "ssh", [42]),
        ])
        assert HrkdOracle().expected_hidden(trace) == set()

    def test_sighting_after_the_scan_does_not_count(self):
        trace = make_trace([
            scan_marker(1 * SECOND, "hrkd", "ssh", []),
            switch(2 * SECOND, task=task_ann(42)),
        ])
        assert HrkdOracle().expected_hidden(trace) == set()

    def test_kthreads_and_idle_are_excluded(self):
        from repro.core.derive import PF_KTHREAD

        trace = make_trace([
            switch(1 * SECOND, task=task_ann(0)),
            switch(1 * SECOND, task=task_ann(9, flags=PF_KTHREAD)),
            scan_marker(2 * SECOND, "hrkd", "ssh", []),
        ])
        assert HrkdOracle().expected_hidden(trace) == set()

    def test_no_freshness_window(self):
        # The whole point of the differential: HRKD's 10 s sighting
        # window is evadable, the oracle's "ever executed" is not.
        trace = make_trace([
            switch(1 * SECOND, task=task_ann(42)),
            scan_marker(25 * SECOND, "hrkd", "ssh", []),
        ])
        assert HrkdOracle().expected_hidden(trace) == {42}

    def test_check_pid_level(self):
        trace = make_trace([
            switch(1 * SECOND, task=task_ann(42)),
            scan_marker(2 * SECOND, "hrkd", "ssh", []),
        ])
        # Count-based alert that names no pid: still a miss of pid 42.
        out = HrkdOracle().check(
            trace, [{"kind": "hidden_tasks", "hidden_pids": []}]
        )
        assert {d.key() for d in out} == {"miss:hrkd:pid=42"}
        # Naming the pid clears it; naming a ghost is a false alarm.
        out = HrkdOracle().check(
            trace, [{"kind": "hidden_tasks", "hidden_pids": [42, 99]}]
        )
        assert {d.key() for d in out} == {"false_alarm:hrkd:pid=99"}


class TestNinjaOracle:
    ROOT = dict(euid=0, uid=1000, exe="/home/user/exploit")

    def test_unauthorized_root_at_first_sighting(self):
        trace = make_trace([
            switch(1 * SECOND, rsp0=0xAA, task=task_ann(50, **self.ROOT),
                   parent={"pid": 2, "uid": 1000, "euid": 1000}),
        ])
        assert NinjaOracle().expected_escalations(trace) == {50}

    def test_second_sighting_of_same_thread_is_no_checkpoint(self):
        parent = {"pid": 2, "uid": 1000, "euid": 1000}
        trace = make_trace([
            switch(1 * SECOND, rsp0=0xAA, task=task_ann(50),
                   parent=parent),
            # Same rsp0, now escalated: HT-Ninja only checks the first
            # sighting, and the oracle mirrors that contract.
            switch(2 * SECOND, rsp0=0xAA, task=task_ann(50, **self.ROOT),
                   parent=parent),
        ])
        assert NinjaOracle().expected_escalations(trace) == set()

    def test_io_syscall_is_a_checkpoint(self):
        from repro.guest.syscalls import IO_SYSCALLS, SYSCALL_NUMBERS

        nr = SYSCALL_NUMBERS[sorted(IO_SYSCALLS)[0]]
        trace = make_trace([
            syscall(1 * SECOND, nr=nr, task=task_ann(50, **self.ROOT),
                    parent={"pid": 2, "uid": 1000, "euid": 1000}),
        ])
        assert NinjaOracle().expected_escalations(trace) == {50}

    def test_root_parent_is_authorized(self):
        trace = make_trace([
            switch(1 * SECOND, rsp0=0xAA, task=task_ann(50, **self.ROOT),
                   parent={"pid": 1, "uid": 0, "euid": 0}),
        ])
        assert NinjaOracle().expected_escalations(trace) == set()

    def test_check_roundtrip(self):
        trace = make_trace([
            switch(1 * SECOND, rsp0=0xAA, task=task_ann(50, **self.ROOT),
                   parent={"pid": 2, "uid": 1000, "euid": 1000}),
        ])
        out = NinjaOracle().check(trace, [])
        assert {d.key() for d in out} == {"miss:ht-ninja:pid=50"}
        out = NinjaOracle().check(
            trace, [{"kind": "privilege_escalation", "pid": 50}]
        )
        assert out == []


class TestDifferentialOracle:
    def test_container_crash_is_a_finding(self):
        class Report:
            container_failed = True
            failure_reason = "boom"
            alerts = {}

        out = DifferentialOracle().check(make_trace([]), Report())
        assert out[0].kind == "crash"
        assert out[0].key() == "crash:container:"

    def test_finding_key_is_stable(self):
        key = finding_key("miss", "hrkd", {"pid": 7})
        assert key == "miss:hrkd:pid=7"
        assert Discrepancy("miss", "hrkd", {"pid": 7}).key() == key


# ======================================================================
# Seeds, fuzzer, shrinking
# ======================================================================
class TestKnownMiss:
    def test_known_miss_reproduces_through_replay(self):
        trace, key = known_miss_trace(seed=0)
        assert key.startswith("miss:hrkd:pid=")
        assert make_finding_predicate(key)(trace)

    def test_base_scenario_has_no_findings(self):
        # The pristine rootkit recording must be conformant — the
        # known miss is *constructed*, not latent.
        trace = base_trace("rootkit", seed=0)
        assert not make_finding_predicate("miss:hrkd:pid=7")(trace)


class TestFuzzerDeterminism:
    def test_same_seed_same_campaign(self):
        results = [
            Fuzzer(FuzzConfig(scenario="exploit", seed=3, budget=6)).run()
            for _ in range(2)
        ]
        a, b = results
        assert a.findings == b.findings
        assert a.coverage.sorted_features() == b.coverage.sorted_features()
        assert a.pool_size == b.pool_size

    def test_different_seeds_diverge(self):
        a = Fuzzer(FuzzConfig(scenario="exploit", seed=3, budget=6)).run()
        b = Fuzzer(FuzzConfig(scenario="exploit", seed=4, budget=6)).run()
        assert (
            a.findings != b.findings
            or a.coverage.sorted_features() != b.coverage.sorted_features()
        )


class TestShrink:
    def test_rejects_non_reproducing_input(self):
        trace = make_trace([switch(1 * SECOND)])
        with pytest.raises(ValueError):
            shrink_trace(trace, lambda t: False)

    def test_ddmin_reduces_to_the_needle(self):
        records = [switch(i * MILLISECOND, vcpu=0) for i in range(40)]
        records.insert(17, switch(17 * MILLISECOND, vcpu=1))
        trace = make_trace(records, num_vcpus=2)

        def predicate(t):
            return any(r.get("vcpu") == 1 for r in t.records)

        reduced = shrink_trace(trace, predicate)
        assert len(reduced.records) == 1
        assert reduced.records[0]["vcpu"] == 1
        # Input unmodified, header recounted on the output.
        assert len(trace.records) == 41
        assert reduced.header.event_counts == {"thread_switch": 1}

    def test_timestamps_are_preserved(self):
        records = [switch(i * SECOND) for i in range(1, 6)]
        trace = make_trace(records)

        def predicate(t):
            return any(r["t"] == 3 * SECOND for r in t.records)

        reduced = shrink_trace(trace, predicate)
        assert [r["t"] for r in reduced.records] == [3 * SECOND]


# ======================================================================
# CLI
# ======================================================================
class TestCli:
    def test_report_summarizes_by_key(self, tmp_path, capsys):
        findings = tmp_path / "f.jsonl"
        rows = [
            {"key": "miss:hrkd:pid=7", "iteration": 4, "detail": "d"},
            {"key": "miss:hrkd:pid=7", "iteration": 9, "detail": "d"},
        ]
        findings.write_text(
            "".join(json.dumps(r) + "\n" for r in rows), encoding="utf-8"
        )
        assert cli.main(["report", str(findings)]) == 0
        out = capsys.readouterr().out
        assert "2 findings, 1 unique keys" in out
        assert "first at iteration 4" in out

    def test_corpus_list_handles_empty_dir(self, tmp_path, capsys):
        assert cli.main(["corpus", "list", "--dir", str(tmp_path)]) == 0
        assert "no corpus entries" in capsys.readouterr().out

    def test_shrink_requires_a_target(self, capsys):
        assert cli.main(["shrink"]) == 2
        assert "known-miss" in capsys.readouterr().err
