"""Guest workloads used by the paper's experiments.

§VIII-A runs fault injection under four workloads — Tower of Hanoi,
``make -j1``, ``make -j2`` (libxml compilation), and an HTTP server
driven by ApacheBench — and §IX measures overhead with UnixBench-style
micro-benchmarks.  All are implemented as guest programs against the
public program API.
"""

from repro.workloads.hanoi import make_hanoi
from repro.workloads.make import make_build
from repro.workloads.httpserver import ApacheBenchDriver, make_http_server
from repro.workloads.common import make_sshd_probe, SshProbe, start_workload
from repro.workloads.unixbench import (
    MICROBENCHES,
    make_cpu_bench,
    make_ctx_switch_bench,
    make_disk_bench,
    make_execl_bench,
    make_file_copy_bench,
    make_pipe_bench,
    make_process_creation_bench,
    make_shell_bench,
    make_syscall_bench,
    run_microbench,
)

__all__ = [
    "make_hanoi",
    "make_build",
    "make_http_server",
    "ApacheBenchDriver",
    "make_sshd_probe",
    "SshProbe",
    "start_workload",
    "MICROBENCHES",
    "make_syscall_bench",
    "make_ctx_switch_bench",
    "make_cpu_bench",
    "make_disk_bench",
    "make_file_copy_bench",
    "make_pipe_bench",
    "make_process_creation_bench",
    "make_shell_bench",
    "make_execl_bench",
    "run_microbench",
]
