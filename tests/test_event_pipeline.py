"""Tests for EF -> EM -> container -> RHC plumbing."""

import pytest

from repro.core.auditor import Auditor
from repro.core.events import EventType
from repro.errors import AuditorCrash, ConfigurationError
from repro.harness import Testbed, TestbedConfig
from repro.hw.exits import ExitReason
from repro.hypervisor.containers import AuditingContainer
from repro.hypervisor.event_forwarder import EventForwarder
from repro.hypervisor.event_multiplexer import EventMultiplexer
from repro.hypervisor.rhc import RemoteHealthChecker
from repro.sim.clock import SECOND
from repro.sim.engine import Engine


class CountingAuditor(Auditor):
    name = "counter"
    subscriptions = {EventType.THREAD_SWITCH, EventType.SYSCALL}

    def audit(self, event):
        pass


class CrashingAuditor(Auditor):
    name = "crasher"
    subscriptions = {EventType.THREAD_SWITCH}

    def audit(self, event):
        raise RuntimeError("auditor bug")


def busy_program(ctx):
    while True:
        yield ctx.compute(200_000)
        yield ctx.sys_write(1, 8)


class TestEventMultiplexer:
    def test_interest_count(self):
        em = EventMultiplexer()
        em.register_consumer(
            "vm0", frozenset({ExitReason.CR_ACCESS}), lambda v, e: None
        )
        assert em.interest_count("vm0", ExitReason.CR_ACCESS) == 1
        assert em.interest_count("vm0", ExitReason.WRMSR) == 0
        assert em.interest_count("vm1", ExitReason.CR_ACCESS) == 0

    def test_ring_buffer_bounded(self, testbed):
        testbed.monitor([CountingAuditor()])
        testbed.kernel.spawn_process(busy_program, "busy", uid=1000)
        testbed.run_s(2.0)
        ring = testbed.multiplexer.recent_events("vm0")
        assert 0 < len(ring) <= testbed.multiplexer.ring_capacity

    def test_unregister_vm_stops_delivery(self, testbed):
        auditor = CountingAuditor()
        testbed.monitor([auditor])
        testbed.kernel.spawn_process(busy_program, "busy", uid=1000)
        testbed.run_s(0.5)
        seen = sum(auditor.events_seen.values())
        testbed.multiplexer.unregister_vm("vm0")
        testbed.run_s(1.0)
        assert sum(auditor.events_seen.values()) == seen


class TestEventForwarder:
    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            EventForwarder(EventMultiplexer(), mode="turbo")

    def test_suppresses_uninteresting_exits(self, testbed):
        em = testbed.multiplexer
        forwarder = EventForwarder(em)
        testbed.kvm.attach_forwarder(forwarder)
        testbed.run_s(0.5)  # timer exits happen, no consumers
        assert forwarder.forwarded == 0
        assert forwarder.suppressed > 0


class TestContainers:
    def test_crash_is_contained(self, testbed):
        crasher = CrashingAuditor()
        counter = CountingAuditor()
        testbed.monitor([crasher, counter])
        testbed.kernel.spawn_process(busy_program, "busy", uid=1000)
        testbed.run_s(1.0)
        container = testbed.hypertap.container
        assert container.failed
        assert "auditor bug" in container.failure_reason
        with pytest.raises(AuditorCrash):
            container.raise_if_failed()

    def test_failed_container_drops_events(self):
        container = AuditingContainer("vm0")
        crasher = CrashingAuditor()
        container.add_auditor(crasher)
        container.deliver(crasher, object())
        container.deliver(crasher, object())
        assert container.failed
        assert container.dropped == 2

    def test_monitoring_pipeline_survives_container_crash(self, testbed):
        crasher = CrashingAuditor()
        testbed.monitor([crasher])
        testbed.kernel.spawn_process(busy_program, "busy", uid=1000)
        testbed.run_s(1.0)
        # The EM keeps multiplexing (the guest keeps running) even
        # though the container died.
        before = testbed.multiplexer.submitted
        testbed.run_s(1.0)
        assert testbed.multiplexer.submitted > before


class TestRhc:
    def test_alarm_on_silence(self):
        engine = Engine()
        rhc = RemoteHealthChecker(engine, timeout_ns=2 * SECOND)
        rhc.start()
        engine.run_for(5 * SECOND)
        assert rhc.alarmed

    def test_no_alarm_with_heartbeats(self):
        engine = Engine()
        rhc = RemoteHealthChecker(engine, timeout_ns=2 * SECOND)
        rhc.start()

        def beat():
            rhc.heartbeat(engine.clock.now)
            engine.schedule(1 * SECOND, beat)

        engine.schedule(0, beat)
        engine.run_for(10 * SECOND)
        assert not rhc.alarmed

    def test_alarm_fires_once_per_outage(self):
        engine = Engine()
        rhc = RemoteHealthChecker(engine, timeout_ns=1 * SECOND)
        rhc.start()
        engine.run_for(10 * SECOND)
        assert len(rhc.alerts) == 1
        rhc.heartbeat(engine.clock.now)  # recovery
        engine.run_for(10 * SECOND)
        assert len(rhc.alerts) == 2

    def test_live_monitoring_feeds_rhc(self):
        tb = Testbed(TestbedConfig(with_rhc=True, rhc_timeout_s=3))
        tb.boot()
        tb.monitor([CountingAuditor()])
        tb.kernel.spawn_process(busy_program, "busy", uid=1000)
        tb.run_s(5.0)
        assert tb.rhc.heartbeats > 0
        assert not tb.rhc.alarmed

    def test_rhc_detects_dead_monitoring(self):
        """Detach the forwarder mid-run: the RHC notices the silence."""
        tb = Testbed(TestbedConfig(with_rhc=True, rhc_timeout_s=3))
        tb.boot()
        tb.monitor([CountingAuditor()])
        tb.kernel.spawn_process(busy_program, "busy", uid=1000)
        tb.run_s(3.0)
        assert not tb.rhc.alarmed
        tb.kvm.detach_forwarder()  # the monitoring pipeline "dies"
        tb.run_s(6.0)
        assert tb.rhc.alarmed
