"""Ablation — invariant-based GOSHD vs learned out-of-band detection.

§VII-D points at Vigilant-style ML failure detectors [21] as natural
HyperTap consumers.  This ablation runs both detector families on the
same guests:

* injected hang failures — GOSHD's home turf: deterministic detection
  at the threshold; the learned detector also notices (the per-vCPU
  switch-rate feature collapses) but only after its window/confirmation
  delay, and it needs a training phase;
* a behavioural anomaly that is *not* a hang (a syscall storm) —
  invisible to GOSHD by design, flagged by the learned envelope.

The complementarity (not rivalry) of the two is the point: both ride
the same unified logging channel.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.auditors.goshd import GuestOSHangDetector
from repro.auditors.vigilant import VigilantDetector
from repro.faults.injector import FaultInjector, InjectionMode
from repro.faults.sites import FaultClass, build_site_catalog
from repro.harness import Testbed, TestbedConfig
from repro.sim.clock import SECOND
from repro.workloads.common import start_workload

HANG_FUNCTIONS = ("tty_write", "ext3_get_block", "hrtimer_start")


def _hang_trial(function: str):
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=29))
    testbed.boot()
    goshd = GuestOSHangDetector()
    vigilant = VigilantDetector(
        window_ns=1 * SECOND, training_windows=6, alarm_after=2
    )
    testbed.monitor([goshd, vigilant])
    start_workload(testbed.kernel, "make-j2")
    testbed.run_s(7.0)  # training
    assert vigilant.trained

    site = next(
        s
        for s in build_site_catalog()
        if s.function == function
        and s.fault_class is FaultClass.MISSING_RELEASE
        and s.activation_pass == 1
    )
    injector = FaultInjector(site, InjectionMode.PERSISTENT)
    injector.attach(testbed.kernel)
    injector.arm()
    testbed.run_s(20.0)

    def latency(alert_time):
        if alert_time is None or injector.first_activation_ns is None:
            return None
        return (alert_time - injector.first_activation_ns) / SECOND

    vigilant_time = (
        vigilant.anomalies[0]["time_ns"] if vigilant.anomalies else None
    )
    return {
        "function": function,
        "goshd_latency": latency(goshd.first_hang_time_ns),
        "vigilant_latency": latency(vigilant_time),
    }


def _storm_trial():
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=29))
    testbed.boot()
    goshd = GuestOSHangDetector()
    vigilant = VigilantDetector(
        window_ns=1 * SECOND, training_windows=6, alarm_after=2
    )
    testbed.monitor([goshd, vigilant])
    testbed.run_s(7.0)
    assert vigilant.trained

    def storm(ctx):
        while True:
            yield ctx.sys_getpid()

    testbed.kernel.spawn_process(storm, "storm", uid=1000)
    testbed.run_s(6.0)
    return {
        "goshd_detected": goshd.hang_detected,
        "vigilant_detected": bool(vigilant.anomalies),
    }


def _run_all():
    return {
        "hangs": [_hang_trial(fn) for fn in HANG_FUNCTIONS],
        "storm": _storm_trial(),
    }


def test_ablation_goshd_vs_learned_detector(benchmark, report):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = []
    for trial in results["hangs"]:
        rows.append(
            [
                f"hang via {trial['function']}",
                f"{trial['goshd_latency']:.1f}s"
                if trial["goshd_latency"] is not None
                else "missed",
                f"{trial['vigilant_latency']:.1f}s"
                if trial["vigilant_latency"] is not None
                else "missed",
            ]
        )
    storm = results["storm"]
    rows.append(
        [
            "syscall storm (not a hang)",
            "no alert (correct)" if not storm["goshd_detected"] else "ALERT",
            "DETECTED" if storm["vigilant_detected"] else "missed",
        ]
    )
    report(
        format_table(
            ["failure", "GOSHD", "Vigilant-style (learned)"],
            rows,
            title="Ablation — invariant-based vs learned detection "
            "(shared logging channel)",
        )
        + "\n\n(the learned detector needs training and confirmation "
        "windows; the invariant detector is deterministic but only "
        "covers its failure model)"
    )

    for trial in results["hangs"]:
        assert trial["goshd_latency"] is not None
        assert trial["vigilant_latency"] is not None
    assert not storm["goshd_detected"]
    assert storm["vigilant_detected"]