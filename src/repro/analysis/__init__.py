"""Analysis tooling: experiment statistics and the static-analysis pass.

Two halves share this package:

* presentation helpers for experiment output (``stats`` / ``tables`` /
  ``figures``), used by ``repro.experiments``;
* the invariant-aware static-analysis pass (``python -m repro.analysis``)
  that enforces HyperTap's trust boundary, event-coverage completeness,
  determinism, and auditor purity at commit time — see ``runner`` and
  the ``rules`` subpackage.
"""

from repro.analysis.findings import Finding
from repro.analysis.runner import Report, run_analysis
from repro.analysis.stats import cdf, mean, percentile, stdev
from repro.analysis.tables import format_table
from repro.analysis.figures import ascii_bar_chart, ascii_cdf

__all__ = [
    "mean",
    "stdev",
    "percentile",
    "cdf",
    "format_table",
    "ascii_bar_chart",
    "ascii_cdf",
    "Finding",
    "Report",
    "run_analysis",
]
