"""The deterministic parallel executor (repro.parallel).

Two layers of guarantees under test:

* executor mechanics — order-preserving merge, contiguous chunking,
  retry-once-then-:class:`InfrastructureFailure`, worker-death
  recovery, the ``REPRO_JOBS`` knob;
* consumer equivalence — fault campaigns, fuzzing campaigns, and
  golden-trace replays produce *identical* results at 1, 2, and 8
  workers, which is the whole point of the subsystem.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pathlib

import pytest

from repro.parallel import (
    InfrastructureFailure,
    derive_seed,
    job_count,
    parallel_map,
    warm_pool,
)
from repro.parallel import shared
from repro.parallel import executor as _executor
from repro.parallel.executor import _chunked

GOLDEN_TRACE = str(
    pathlib.Path(__file__).parent / "data" / "golden_exploit.jsonl"
)

JOB_COUNTS = (1, 2, 8)


# ----------------------------------------------------------------------
# Module-level task functions (workers import them by reference).
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _raise_always(x):
    raise ValueError(f"task {x} is broken")


def _fail_in_worker(x):
    """In-band task failure on the worker attempt; parent retry wins."""
    if multiprocessing.parent_process() is not None:
        raise ValueError("worker-side failure")
    return x * 2


def _die_in_worker(x):
    """Kill the worker process outright; the parent re-runs the chunk."""
    if multiprocessing.parent_process() is not None:
        os._exit(13)
    return x * 3


_FLAKY_SEEN = set()


def _flaky_once(x):
    """Fails on first call per item *in this process* (serial-path retry)."""
    if x not in _FLAKY_SEEN:
        _FLAKY_SEEN.add(x)
        raise ValueError("first attempt")
    return x + 1


def _replay_golden(path):
    from repro.auditors.ht_ninja import HTNinja
    from repro.replay.source import ReplaySource
    from repro.replay.trace_io import load_trace

    trace = load_trace(path)
    report = ReplaySource(trace, [HTNinja()]).run()
    return (report.verdicts, report.events_replayed, report.events_rejected)


# ======================================================================
# Executor mechanics
# ======================================================================
class TestParallelMap:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_matches_serial_comprehension(self, jobs):
        items = list(range(23))
        assert parallel_map(_square, items, jobs=jobs) == [
            _square(x) for x in items
        ]

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_empty_and_singleton(self, jobs):
        assert parallel_map(_square, [], jobs=jobs) == []
        assert parallel_map(_square, [7], jobs=jobs) == [49]

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_unrecoverable_task_raises_typed_failure(self, jobs):
        with pytest.raises(InfrastructureFailure) as excinfo:
            parallel_map(_raise_always, [1, 2, 3], jobs=jobs)
        assert "broken" in str(excinfo.value)

    def test_worker_task_failure_retried_in_parent(self):
        # The task fails on every worker attempt but succeeds in the
        # parent: one retry must heal it without dropping any result.
        assert parallel_map(_fail_in_worker, [1, 2, 3, 4], jobs=2) == [
            2,
            4,
            6,
            8,
        ]

    def test_worker_death_retried_in_parent(self):
        # os._exit in the worker kills the process mid-chunk
        # (BrokenExecutor); every affected chunk re-runs in the parent.
        assert parallel_map(_die_in_worker, [1, 2, 3, 4, 5], jobs=2) == [
            3,
            6,
            9,
            12,
            15,
        ]

    def test_serial_retry_discipline(self):
        _FLAKY_SEEN.clear()
        assert parallel_map(_flaky_once, [10, 20], jobs=1) == [11, 21]

    def test_progress_reports_every_task(self):
        seen = []
        parallel_map(_square, list(range(9)), jobs=2, progress=seen.append)
        assert len(seen) == 9
        assert seen[-1] == 9


class TestChunking:
    def test_chunks_are_contiguous_and_complete(self):
        items = list(range(37))
        chunks = _chunked(items, jobs=4, chunk_size=None)
        flat = [pair for chunk in chunks for pair in chunk]
        assert flat == list(enumerate(items))  # order + coverage
        for chunk in chunks:
            indices = [i for i, _ in chunk]
            assert indices == list(range(indices[0], indices[0] + len(chunk)))

    def test_explicit_chunk_size(self):
        chunks = _chunked(list(range(10)), jobs=2, chunk_size=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_chunk_size_respected_by_map(self):
        items = list(range(11))
        assert parallel_map(_square, items, jobs=2, chunk_size=3) == [
            x * x for x in items
        ]


class TestKnobs:
    def test_job_count_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert job_count() == 5

    def test_job_count_default_and_garbage(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert job_count() == 1
        assert job_count(default=3) == 3
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert job_count() == 1
        monkeypatch.setenv("REPRO_JOBS", "-4")
        assert job_count() == 1

    def test_derive_seed_is_stable_sha256(self):
        expected = int.from_bytes(
            hashlib.sha256(b"7:site:3").digest()[:8], "big"
        )
        assert derive_seed(7, "site", 3) == expected
        assert derive_seed(7, "site", 3) == derive_seed(7, "site", 3)
        assert derive_seed(7, "site", 3) != derive_seed(7, "site", 4)
        assert derive_seed(7, "site", 3) != derive_seed(8, "site", 3)


def _read_shared(key):
    return shared.get(key, "missing")


class TestPoolAndStats:
    def test_stats_filled_on_serial_path(self):
        stats = {}
        parallel_map(_square, [1, 2, 3], jobs=1, stats=stats)
        assert stats == {"jobs": 1, "chunks": 0, "chunk_cpu_s": []}

    def test_stats_report_every_chunk(self):
        stats = {}
        items = list(range(12))
        parallel_map(_square, items, jobs=2, chunk_size=3, stats=stats)
        assert stats["jobs"] == 2
        assert stats["chunks"] == 4
        assert len(stats["chunk_cpu_s"]) == 4
        assert all(
            isinstance(c, float) and c >= 0.0 for c in stats["chunk_cpu_s"]
        )

    def test_warm_pool_is_reused_by_parallel_map(self):
        warm_pool(2)
        pool = _executor._POOL
        assert pool is not None
        parallel_map(_square, list(range(8)), jobs=2)
        assert _executor._POOL is pool

    def test_pool_recycled_when_job_count_changes(self):
        warm_pool(2)
        first = _executor._POOL
        parallel_map(_square, list(range(6)), jobs=3)
        assert _executor._POOL is not first

    def test_warm_pool_serial_is_a_no_op(self):
        _executor._discard_pool()
        warm_pool(1)
        assert _executor._POOL is None


class TestSharedState:
    def test_prime_get_forget_round_trip(self):
        before = shared.generation()
        shared.prime("t-key", [1, 2, 3])
        try:
            assert shared.get("t-key") == [1, 2, 3]
            assert "t-key" in shared.keys()
            assert shared.generation() == before + 1
        finally:
            shared.forget("t-key")
        assert shared.get("t-key", "gone") == "gone"
        assert shared.generation() == before + 2

    def test_unprimed_get_returns_default(self):
        assert shared.get("never-primed", 42) == 42

    def test_prime_invalidates_pooled_workers(self):
        # A stale worker must never serve newer shared state: the
        # executor rebuilds its persistent pool once the generation
        # moves.
        parallel_map(_square, list(range(4)), jobs=2)
        stale = _executor._POOL
        shared.prime("t-recycle", object())
        try:
            parallel_map(_square, list(range(4)), jobs=2)
            assert _executor._POOL is not stale
        finally:
            shared.forget("t-recycle")

    def test_workers_inherit_primed_state_through_fork(self):
        shared.prime("t-inherit", "from-parent")
        try:
            seen = parallel_map(_read_shared, ["t-inherit"] * 4, jobs=2)
        finally:
            shared.forget("t-inherit")
        assert seen == ["from-parent"] * 4


# ======================================================================
# Consumer equivalence: byte-identical at any job count
# ======================================================================
def _tiny_campaign(jobs):
    from repro.faults.campaign import TrialConfig, run_campaign
    from repro.faults.injector import InjectionMode
    from repro.faults.sites import build_site_catalog
    from repro.sim.clock import SECOND

    sites = [s for s in build_site_catalog() if s.activation_pass == 1][:2]
    return run_campaign(
        sites,
        workloads=("hanoi",),
        modes=(InjectionMode.TRANSIENT,),
        preempt_options=(False, True),
        seeds=(0,),
        base_config=TrialConfig(
            warmup_ns=1 * SECOND,
            detect_window_ns=6 * SECOND,
            classify_window_ns=8 * SECOND,
        ),
        jobs=jobs,
    )


class TestCampaignEquivalence:
    def test_identical_at_any_job_count(self):
        serial = _tiny_campaign(jobs=1)
        for jobs in JOB_COUNTS[1:]:
            fanned = _tiny_campaign(jobs=jobs)
            assert fanned.results == serial.results, f"jobs={jobs}"
            assert fanned.outcome_counts() == serial.outcome_counts()
            assert (
                fanned.detection_latencies_s()
                == serial.detection_latencies_s()
            )


class TestFuzzEquivalence:
    def test_identical_at_any_job_count(self):
        from repro.testing.fuzzer import FuzzConfig, fuzz, fuzz_many

        configs = [
            FuzzConfig(scenario="exploit", seed=seed, budget=4)
            for seed in (0, 1, 2)
        ]
        serial = [fuzz(c) for c in configs]
        for jobs in JOB_COUNTS[1:]:
            fanned = fuzz_many(configs, jobs=jobs)
            assert [r.unique_keys for r in fanned] == [
                r.unique_keys for r in serial
            ], f"jobs={jobs}"
            assert [r.iterations for r in fanned] == [
                r.iterations for r in serial
            ]
            assert [sorted(r.coverage.features) for r in fanned] == [
                sorted(r.coverage.features) for r in serial
            ]


class TestReplayEquivalence:
    def test_golden_verdicts_at_any_job_count(self):
        expected = _replay_golden(GOLDEN_TRACE)
        assert expected[0], "golden trace must produce a verdict"
        for jobs in JOB_COUNTS:
            outcomes = parallel_map(
                _replay_golden, [GOLDEN_TRACE] * 6, jobs=jobs
            )
            assert outcomes == [expected] * 6, f"jobs={jobs}"
