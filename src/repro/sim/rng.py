"""Named, seeded random streams.

Each consumer (scheduler jitter, fault activation, attack timing, device
latency) draws from its own stream derived from a campaign seed.  Using
independent streams means adding a new consumer never perturbs the
random sequence seen by existing ones — campaigns stay comparable across
code versions.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def jitter_ns(self, name: str, base_ns: int, fraction: float) -> int:
        """Return ``base_ns`` perturbed by up to ``+/- fraction``.

        Useful for modelling scheduling and device-latency noise without
        letting any duration go negative.
        """
        if base_ns <= 0 or fraction <= 0:
            return max(0, int(base_ns))
        rng = self.stream(name)
        factor = 1.0 + rng.uniform(-fraction, fraction)
        return max(1, int(base_ns * factor))
