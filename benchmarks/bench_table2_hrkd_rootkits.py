"""Table II — HRKD vs real-world rootkits.

Paper's result: all ten rootkits detected, regardless of hiding
technique (DKOM, syscall hijacking, kmem patching), on every tested
OS, because the detection rests on architectural invariants only.

The benchmark installs each Table II rootkit against the simulated
guest, confirms the victim disappears from the in-guest view, and
records HRKD's verdict.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.attacks.rootkits import ROOTKIT_ZOO, build_rootkit
from repro.auditors.hrkd import HiddenRootkitDetector
from repro.harness import Testbed, TestbedConfig
from repro.vmi.introspection import KernelSymbolMap, OsInvariantView


def _malware(ctx):
    while True:
        yield ctx.compute(300_000)
        yield ctx.sys_write(1, 16)


def _run_zoo():
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=17))
    testbed.boot()
    hrkd = HiddenRootkitDetector()
    testbed.monitor([hrkd])
    hrkd.set_vmi_view(
        OsInvariantView(
            testbed.machine, KernelSymbolMap.from_kernel(testbed.kernel)
        )
    )
    victim = testbed.kernel.spawn_process(
        _malware, "malware", uid=0, exe="/tmp/.hidden"
    )
    testbed.run_s(1.5)

    rows = []
    for spec in ROOTKIT_ZOO:
        rootkit = build_rootkit(spec.name, testbed.kernel)
        rootkit.hide_process(victim.pid)
        testbed.run_s(0.8)
        guest_view = testbed.kernel.guest_view_pids()
        hidden = victim.pid not in guest_view
        detection = hrkd.scan_against(guest_view, "guest-ps")
        vmi_detection = hrkd.scan_vmi()
        rows.append(
            {
                "name": spec.name,
                "os": spec.target_os,
                "techniques": " + ".join(t.value for t in spec.techniques),
                "hidden": hidden,
                "detected": detection.rootkit_detected
                and victim.pid in detection.hidden_pids,
                "fools_vmi": victim.pid in vmi_detection.hidden_pids,
            }
        )
        rootkit.unhide_all()
        testbed.run_s(0.3)
    return rows


def test_table2_hrkd_detects_all_rootkits(benchmark, report):
    rows = benchmark.pedantic(_run_zoo, rounds=1, iterations=1)

    table = format_table(
        ["rootkit", "target OS", "hiding technique(s)", "hidden from guest",
         "HRKD", "fools VMI"],
        [
            [
                r["name"],
                r["os"],
                r["techniques"],
                "yes" if r["hidden"] else "NO",
                "DETECTED" if r["detected"] else "MISSED",
                "yes" if r["fools_vmi"] else "no",
            ]
            for r in rows
        ],
        title="Table II — real-world rootkits evaluated with HRKD",
    )
    detected = sum(1 for r in rows if r["detected"])
    report(
        table
        + f"\n\ndetected {detected}/{len(rows)}   (paper: all detected)"
    )

    assert all(r["hidden"] for r in rows), "every rootkit must hide its victim"
    assert all(r["detected"] for r in rows), "HRKD must detect every rootkit"
    # DKOM/kmem rootkits also fool the OS-invariant (VMI) view; pure
    # syscall hijackers do not — the technique split of §VII-B.
    assert any(r["fools_vmi"] for r in rows)
    assert any(not r["fools_vmi"] for r in rows)
