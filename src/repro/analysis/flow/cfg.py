"""Per-function control-flow graphs.

Small, honest CFGs: basic blocks of statements with successor edges,
one dedicated **normal exit** (fall-through and ``return`` paths) and
one **raise exit** reached only by *explicit* ``raise`` statements.
Implicit exceptions (any call may throw) are deliberately not modelled
— the span-pairing rule's contract is "closed on every non-exception
path, and on every path the author explicitly aborts".

``try/finally`` is handled by duplicating the ``finally`` body per
abrupt-exit kind, so a ``span_end`` in a ``finally`` is correctly seen
on return/raise paths without conflating them with fall-through.
``try/except`` handlers are entered conservatively from every block the
``try`` body created.

Branch tests and ``for`` targets appear in blocks as lightweight
markers (:class:`BranchTest`, :class:`LoopIter`) so dataflow transfer
functions can see the test expression without re-walking bodies.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional


class BranchTest:
    """Marker: the test expression of an ``if``/``while`` sits here."""

    __slots__ = ("test", "node")

    def __init__(self, test: ast.expr, node: ast.stmt) -> None:
        self.test = test
        self.node = node  #: The owning If/While (bodies reachable from it).


class LoopIter:
    """Marker: a ``for`` header binding ``target`` from ``iter``."""

    __slots__ = ("target", "iter", "node")

    def __init__(self, node: ast.For) -> None:
        self.target = node.target
        self.iter = node.iter
        self.node = node


class Block:
    __slots__ = ("id", "stmts", "succs")

    def __init__(self, block_id: int) -> None:
        self.id = block_id
        self.stmts: List[object] = []  #: ast.stmt | BranchTest | LoopIter
        self.succs: List[int] = []


class CFG:
    """Blocks, entry, and the two exits."""

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.entry = self._new().id
        self.exit = self._new().id
        self.raise_exit = self._new().id

    def _new(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks[block.id] = block
        return block

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.succs:
                preds[succ].append(block.id)
        return preds


class _Builder:
    def __init__(self, func: ast.AST) -> None:
        self.cfg = CFG()
        #: (head_id, after_id) per enclosing loop, innermost last.
        self.loops: List[tuple] = []
        #: finally bodies of enclosing ``try`` statements, innermost
        #: last; abrupt exits replay the applicable suffix.
        self.finallies: List[List[ast.stmt]] = []
        body = getattr(func, "body", [])
        end = self._seq(body, self.cfg.blocks[self.cfg.entry])
        if end is not None:
            end.succs.append(self.cfg.exit)

    # ------------------------------------------------------------------
    def _edge(self, src: Block, dst_id: int) -> None:
        if dst_id not in src.succs:
            src.succs.append(dst_id)

    def _run_finallies(self, frm: Block, upto: int = 0) -> Block:
        """Lower the pending ``finally`` suffix (innermost first) into a
        fresh chain starting after ``frm``; returns the open end."""
        current = frm
        for final_body in reversed(self.finallies[upto:]):
            saved = self.finallies
            self.finallies = []  # already accounted for in this replay
            nxt = self._seq(final_body, current)
            self.finallies = saved
            if nxt is None:  # the finally itself terminates the path
                return None  # type: ignore[return-value]
            current = nxt
        return current

    # ------------------------------------------------------------------
    def _seq(self, stmts: List[ast.stmt], current: Optional[Block]
             ) -> Optional[Block]:
        for stmt in stmts:
            if current is None:
                # Unreachable tail: still materialize the statements so
                # lexical sweeps see them, but leave the block orphaned.
                current = self.cfg._new()
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            current.stmts.append(BranchTest(stmt.test, stmt))
            after = self.cfg._new()
            then_entry = self.cfg._new()
            self._edge(current, then_entry.id)
            then_end = self._seq(stmt.body, then_entry)
            if then_end is not None:
                self._edge(then_end, after.id)
            if stmt.orelse:
                else_entry = self.cfg._new()
                self._edge(current, else_entry.id)
                else_end = self._seq(stmt.orelse, else_entry)
                if else_end is not None:
                    self._edge(else_end, after.id)
            else:
                self._edge(current, after.id)
            return after

        if isinstance(stmt, ast.While):
            head = self.cfg._new()
            self._edge(current, head.id)
            head.stmts.append(BranchTest(stmt.test, stmt))
            after = self.cfg._new()
            body_entry = self.cfg._new()
            self._edge(head, body_entry.id)
            self._edge(head, after.id)
            self.loops.append((head.id, after.id, len(self.finallies)))
            body_end = self._seq(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                self._edge(body_end, head.id)
            if stmt.orelse:
                else_end = self._seq(stmt.orelse, after)
                return else_end
            return after

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = self.cfg._new()
            self._edge(current, head.id)
            head.stmts.append(LoopIter(stmt))  # type: ignore[arg-type]
            after = self.cfg._new()
            body_entry = self.cfg._new()
            self._edge(head, body_entry.id)
            self._edge(head, after.id)
            self.loops.append((head.id, after.id, len(self.finallies)))
            body_end = self._seq(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                self._edge(body_end, head.id)
            if stmt.orelse:
                return self._seq(stmt.orelse, after)
            return after

        if isinstance(stmt, ast.Try):
            has_finally = bool(stmt.finalbody)
            if has_finally:
                self.finallies.append(stmt.finalbody)
            watermark = len(self.cfg.blocks)
            body_entry = self.cfg._new()
            self._edge(current, body_entry.id)
            body_end = self._seq(stmt.body, body_entry)
            body_blocks = [
                bid for bid in range(watermark, len(self.cfg.blocks))
            ]
            if body_end is not None and stmt.orelse:
                body_end = self._seq(stmt.orelse, body_end)
            handler_ends: List[Block] = []
            for handler in stmt.handlers:
                handler_entry = self.cfg._new()
                # Any statement of the try body may transfer here.
                for bid in body_blocks:
                    self._edge(self.cfg.blocks[bid], handler_entry.id)
                self._edge(current, handler_entry.id)
                handler_end = self._seq(handler.body, handler_entry)
                if handler_end is not None:
                    handler_ends.append(handler_end)
            if has_finally:
                self.finallies.pop()
            joins = ([body_end] if body_end is not None else []) + handler_ends
            if not joins:
                return None
            if has_finally:
                final_entry = self.cfg._new()
                for block in joins:
                    self._edge(block, final_entry.id)
                saved = self.finallies
                self.finallies = []
                final_end = self._seq(stmt.finalbody, final_entry)
                self.finallies = saved
                return final_end
            after = self.cfg._new()
            for block in joins:
                self._edge(block, after.id)
            return after

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, (ast.Name, ast.Tuple)
                ):
                    current.stmts.append(
                        ast.Assign(
                            targets=[item.optional_vars],
                            value=item.context_expr,
                            lineno=stmt.lineno,
                            col_offset=stmt.col_offset,
                        )
                    )
                else:
                    current.stmts.append(
                        ast.Expr(
                            value=item.context_expr,
                            lineno=stmt.lineno,
                            col_offset=stmt.col_offset,
                        )
                    )
            return self._seq(stmt.body, current)

        if isinstance(stmt, ast.Return):
            current.stmts.append(stmt)
            end = self._run_finallies(current)
            if end is not None:
                self._edge(end, self.cfg.exit)
            return None

        if isinstance(stmt, ast.Raise):
            current.stmts.append(stmt)
            end = self._run_finallies(current)
            if end is not None:
                self._edge(end, self.cfg.raise_exit)
            return None

        if isinstance(stmt, (ast.Break, ast.Continue)):
            if self.loops:
                head_id, after_id, finally_depth = self.loops[-1]
                end = self._run_finallies(current, upto=finally_depth)
                if end is not None:
                    self._edge(
                        end,
                        after_id if isinstance(stmt, ast.Break) else head_id,
                    )
            return None

        # Plain statement (including nested def/class, which dataflow
        # treats as opaque bindings).
        current.stmts.append(stmt)
        return current


def build_cfg(func: ast.AST) -> CFG:
    """CFG for one ``FunctionDef``/``AsyncFunctionDef``."""
    return _Builder(func).cfg
