"""Tests for the workload programs and the micro-benchmark runner."""

import pytest

from repro.workloads.common import SshProbe, start_workload, WORKLOAD_NAMES
from repro.workloads.hanoi import hanoi_moves
from repro.workloads.unixbench import MICROBENCHES, run_microbench


class TestHanoi:
    def test_move_count(self):
        for n in (1, 3, 5, 10):
            assert sum(1 for _ in hanoi_moves(n)) == 2**n - 1

    def test_moves_are_legal(self):
        """Replay the move sequence against real pegs."""
        n = 7
        pegs = {0: list(range(n, 0, -1)), 1: [], 2: []}
        for src, dst in hanoi_moves(n):
            disk = pegs[src].pop()
            assert not pegs[dst] or pegs[dst][-1] > disk
            pegs[dst].append(disk)
        assert pegs[2] == list(range(n, 0, -1))

    def test_hanoi_runs_in_guest(self, testbed):
        handle = start_workload(testbed.kernel, "hanoi")
        testbed.run_s(1.0)
        ref = testbed.kernel.task_ref(handle.tasks[0])
        assert ref.read("utime") > 0


class TestMake:
    def test_make_spawns_compilers(self, testbed):
        start_workload(testbed.kernel, "make-j1")
        testbed.run_s(2.0)
        assert testbed.kernel.syscall_count > 10
        assert testbed.machine.disk.blocks_read > 0

    def test_make_j2_uses_both_cpus(self, testbed):
        start_workload(testbed.kernel, "make-j2")
        testbed.run_s(3.0)
        # both CPUs saw context switches from compile jobs
        for cpu in testbed.kernel.cpus:
            assert cpu.context_switches > 2


class TestHttp:
    def test_server_answers_requests(self, testbed):
        handle = start_workload(testbed.kernel, "http")
        testbed.run_s(3.0)
        assert handle.driver.requests_sent > 100
        assert handle.driver.responses > 50

    def test_unknown_workload_rejected(self, testbed):
        with pytest.raises(ValueError):
            start_workload(testbed.kernel, "seti-at-home")

    def test_all_names_start(self, testbed):
        for name in WORKLOAD_NAMES:
            start_workload(testbed.kernel, name)
        testbed.run_s(0.5)  # nothing crashes


class TestSshProbe:
    def test_probe_healthy_guest(self, testbed):
        probe = SshProbe(testbed.kernel)
        probe.start()
        testbed.run_s(5.0)
        assert probe.stats["responses"] >= 3
        assert not probe.reports_dead

    def test_probe_detects_dead_network(self, testbed):
        probe = SshProbe(testbed.kernel)
        probe.start()
        testbed.run_s(3.0)
        testbed.kernel.force_exit(probe.task)  # sshd dies
        testbed.run_s(5.0)
        assert probe.reports_dead


class TestMicrobenches:
    def test_catalog_nonempty(self):
        assert len(MICROBENCHES) >= 10
        for name, (factory, kwargs, category) in MICROBENCHES.items():
            assert callable(factory)
            assert category

    def test_syscall_bench_completes(self, testbed):
        elapsed = run_microbench(
            testbed, "syscall", overrides={"iterations": 200}
        )
        assert elapsed > 0

    def test_ctx_switch_bench_switches(self, testbed):
        before = testbed.kernel.cpus[0].context_switches
        run_microbench(
            testbed, "context-switch", overrides={"iterations": 100}
        )
        assert testbed.kernel.cpus[0].context_switches - before > 100

    def test_disk_bench_hits_disk(self, testbed):
        run_microbench(testbed, "disk-io", overrides={"iterations": 10})
        assert testbed.machine.disk.blocks_read >= 5

    def test_process_creation_bench(self, testbed):
        pids_before = testbed.kernel._next_pid
        run_microbench(
            testbed, "process-creation", overrides={"iterations": 10}
        )
        assert testbed.kernel._next_pid >= pids_before + 10

    def test_monitoring_adds_overhead(self, testbed):
        """The qualitative heart of Fig 7: monitored > baseline."""
        from repro.auditors.ht_ninja import HTNinja
        from repro.harness import Testbed, TestbedConfig

        baseline = run_microbench(
            testbed, "syscall", overrides={"iterations": 500}
        )
        monitored_tb = Testbed(TestbedConfig(num_vcpus=2, seed=42))
        monitored_tb.boot()
        monitored_tb.monitor([HTNinja()])
        monitored = run_microbench(
            monitored_tb, "syscall", overrides={"iterations": 500}
        )
        assert monitored > baseline
