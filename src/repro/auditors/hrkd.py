"""Hidden RootKit Detection (HRKD), Section VII-B.

Threat model: rootkits hide processes/threads from administrators and
scanners — DKOM list unlinking, /dev/kmem patching, syscall-table
hijacking.  All of those corrupt what the *guest OS reports*; none can
prevent a hidden task from eventually using a CPU, and every dispatch
writes CR3 (process) and TSS.RSP0 (thread) — events HyperTap traps.

HRKD therefore builds a *trusted execution view* from switch events,
deriving each scheduled task's identity from hardware state, and
cross-validates it against untrusted views:

* the guest's own view (``ps`` / /proc — what Task Manager shows),
* the traditional-VMI view (OS-invariant task-list walk).

A pid present in the trusted view but absent from an untrusted one is
hidden.  The detection is independent of the hiding technique, which is
the paper's Table II claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.core.auditor import Auditor
from repro.core.derive import PF_KTHREAD
from repro.core.events import (
    EventType,
    GuestEvent,
    ThreadSwitchEvent,
)
from repro.sim.clock import SECOND

# The VMI walk is one of the *untrusted views* HRKD cross-validates the
# trusted execution view against (§VII-B): its output is input data to
# the comparison, never a root of trust.
# hypertap: allow(trust-boundary) — HRKD's sanctioned cross-validation input: the untrusted VMI view being audited
from repro.vmi.introspection import OsInvariantView


@dataclass
class TrustedSighting:
    """One task observed executing, identified architecturally."""

    pid: int
    comm: str
    rsp0: int
    task_struct_gva: int
    is_kthread: bool
    last_seen_ns: int


@dataclass
class CrossViewReport:
    """Result of one HRKD scan."""

    time_ns: int
    trusted_pids: Set[int]
    untrusted_pids: Set[int]
    hidden_pids: Set[int]
    view_name: str
    #: Fig 3A process count vs processes the untrusted view reports.
    trusted_process_count: int
    untrusted_process_count: int

    @property
    def rootkit_detected(self) -> bool:
        return bool(self.hidden_pids) or (
            self.trusted_process_count > self.untrusted_process_count
        )


class HiddenRootkitDetector(Auditor):
    """Cross-view rootkit detector over switch events."""

    name = "hrkd"
    subscriptions = {EventType.PROCESS_SWITCH, EventType.THREAD_SWITCH}

    def __init__(self, sighting_window_ns: int = 10 * SECOND) -> None:
        super().__init__()
        self.sighting_window_ns = sighting_window_ns
        #: rsp0 -> sighting (thread granularity, Fig 3B identity).
        self.sightings: Dict[int, TrustedSighting] = {}
        self._vmi: Optional[OsInvariantView] = None

    def on_attach(self) -> None:
        # The untrusted VMI view needs kernel symbols the framework does
        # not carry; the harness injects one via set_vmi_view() when it
        # wants VMI cross-validation in addition to the guest view.
        self._vmi = None

    def set_vmi_view(self, vmi: OsInvariantView) -> None:
        self._vmi = vmi

    # ------------------------------------------------------------------
    # Event intake: build the trusted execution view
    # ------------------------------------------------------------------
    def audit(self, event: GuestEvent) -> None:
        if isinstance(event, ThreadSwitchEvent):
            info = self.hypertap.deriver.task_info_from_rsp0(event.rsp0)
            if info is None:
                return
            self.sightings[event.rsp0] = TrustedSighting(
                pid=info.pid,
                comm=info.comm,
                rsp0=event.rsp0,
                task_struct_gva=info.task_struct_gva,
                is_kthread=bool(info.flags & PF_KTHREAD),
                last_seen_ns=event.time_ns,
            )
        # ProcessSwitchEvents feed the PDBA set inside the interception
        # layer; nothing extra to do here.

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def _fresh_sightings(self, now_ns: int) -> List[TrustedSighting]:
        cutoff = now_ns - self.sighting_window_ns
        fresh = []
        for sighting in self.sightings.values():
            if sighting.last_seen_ns < cutoff:
                continue
            # Re-validate: the task may have exited since we saw it.
            info = self.hypertap.deriver.task_info_at(
                sighting.task_struct_gva
            )
            if info is None or info.pid != sighting.pid:
                continue
            fresh.append(sighting)
        return fresh

    def trusted_pids(self) -> Set[int]:
        """Pids of everything recently observed on a CPU."""
        now = self.hypertap.machine.clock.now
        return {s.pid for s in self._fresh_sightings(now) if s.pid != 0}

    def trusted_process_count(self) -> int:
        """Fig 3A count of live user address spaces."""
        return self.hypertap.count_user_processes()

    def scan_against(
        self, untrusted_pids: Iterable[int], view_name: str,
        untrusted_process_count: Optional[int] = None,
    ) -> CrossViewReport:
        """Cross-validate the trusted view against an untrusted one."""
        now = self.hypertap.machine.clock.now
        trusted = self.trusted_pids()
        untrusted = {int(p) for p in untrusted_pids}
        hidden = {p for p in trusted - untrusted if p != 0}
        report = CrossViewReport(
            time_ns=now,
            trusted_pids=trusted,
            untrusted_pids=untrusted,
            hidden_pids=hidden,
            view_name=view_name,
            trusted_process_count=self.trusted_process_count(),
            untrusted_process_count=(
                untrusted_process_count
                if untrusted_process_count is not None
                else len(untrusted)
            ),
        )
        if report.rootkit_detected:
            self.raise_alert(
                "hidden_tasks",
                view=view_name,
                hidden_pids=sorted(hidden),
                trusted_count=report.trusted_process_count,
                untrusted_count=report.untrusted_process_count,
            )
        return report

    def scan_vmi(self) -> Optional[CrossViewReport]:
        """Cross-validate against this auditor's own VMI walk."""
        if self._vmi is None:
            return None
        entries = self._vmi.list_processes()
        return self.scan_against(
            (e["pid"] for e in entries),
            view_name="vmi",
            untrusted_process_count=sum(
                1 for e in entries if not e["is_kthread"]
            ),
        )
