"""Orchestration: discover → rule sweep → suppress → baseline → render.

The output is deterministic by construction — files discovered in
sorted order, rules run in sorted-id order, findings sorted before
rendering, no timestamps — so two runs over the same tree are
byte-identical (a property the test suite asserts; diffable CI logs
and stable baselines depend on it).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import apply_baseline, load_baseline
from repro.analysis.findings import Finding
from repro.analysis.pragmas import PRAGMA_RULE
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import REGISTRY, all_rules, rule_ids
from repro.errors import ConfigurationError

#: Schema version of the ``--json`` output.
REPORT_VERSION = 1


@dataclass
class Report:
    """Outcome of one analysis run."""

    root: str
    rules: List[str]
    files_scanned: int
    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts


def expand_rule_patterns(patterns: Sequence[str]) -> List[str]:
    """Resolve ``--rules`` entries to concrete rule ids.

    An entry containing a glob metacharacter (``flow.*``) expands
    against the registry; plain entries must name a rule exactly.  A
    pattern matching nothing is a configuration error — a silently
    empty selection would report "clean" without checking anything.
    """
    known = rule_ids()
    selected: List[str] = []
    for pattern in patterns:
        if any(ch in pattern for ch in "*?["):
            matched = [r for r in known if fnmatchcase(r, pattern)]
            if not matched:
                raise ConfigurationError(
                    f"rule pattern {pattern!r} matches no rules "
                    f"(known: {', '.join(known)})"
                )
            selected.extend(matched)
        elif pattern not in known:
            raise ConfigurationError(
                f"unknown rule(s): {pattern} (known: {', '.join(known)})"
            )
        else:
            selected.append(pattern)
    return sorted(set(selected))


#: Per-process context cache for ``--jobs`` workers, keyed by root.
#: The parent primes its own entry before fanning out; forked workers
#: inherit the parsed tree zero-copy, spawn-started workers (or a tree
#: whose entry is missing for any reason) rebuild it on first use.
_WORKER_CTX: Dict[str, AnalysisContext] = {}


def _rule_task(task: Tuple[str, str]) -> List[Finding]:
    """Run one rule over the (cached) context — the ``parallel_map``
    unit of work.  Findings are frozen dataclasses, so the result
    pickles back to the parent unchanged."""
    root, rule_id = task
    ctx = _WORKER_CTX.get(root)
    if ctx is None:
        ctx = AnalysisContext(Path(root), known_rules=set(rule_ids()))
        _WORKER_CTX[root] = ctx
    rule = REGISTRY[rule_id]()
    return list(rule.check(ctx))


def run_analysis(
    root: Path,
    selected_rules: Optional[Sequence[str]] = None,
    baseline: Optional[Path] = None,
    jobs: int = 1,
) -> Report:
    """Run the pass over the tree rooted at ``root``.

    ``jobs > 1`` fans rules across worker processes via
    ``repro.parallel.parallel_map``; suppression, pragma audit and
    baseline application stay in the parent, so the report is
    byte-identical to a serial run.
    """
    known = set(rule_ids())
    if selected_rules is not None:
        selected_rules = expand_rule_patterns(selected_rules)
    ctx = AnalysisContext(root, known_rules=known)

    rules = [
        rule
        for rule in all_rules()
        if selected_rules is None or rule.id in selected_rules
    ]
    raw: List[Finding] = list(ctx.parse_errors)
    if jobs > 1 and len(rules) > 1:
        from repro.parallel import parallel_map

        key = str(root)
        _WORKER_CTX[key] = ctx
        try:
            batches = parallel_map(
                _rule_task, [(key, rule.id) for rule in rules], jobs=jobs
            )
        finally:
            _WORKER_CTX.pop(key, None)
        for batch in batches:
            raw.extend(batch)
    else:
        for rule in rules:
            raw.extend(rule.check(ctx))

    # Inline suppressions (marks pragmas used as a side effect).
    sheets = {source.rel: source.pragmas for source in ctx.files}
    active: List[Finding] = []
    suppressed = 0
    for finding in raw:
        sheet = sheets.get(finding.path)
        if sheet is not None and sheet.suppresses(finding):
            suppressed += 1
        else:
            active.append(finding)

    # Pragma hygiene is only meaningful on a full-rule run: a filtered
    # run would misreport pragmas for unselected rules as unused.
    if selected_rules is None:
        for source in ctx.files:
            active.extend(source.pragmas.audit(source.rel))

    baselined = 0
    if baseline is not None:
        active, baselined = apply_baseline(active, load_baseline(baseline))

    return Report(
        root=str(root),
        rules=[rule.id for rule in rules] + ([PRAGMA_RULE] if selected_rules is None else []),
        files_scanned=len(ctx.files),
        findings=sorted(
            active, key=lambda f: (f.path, f.line, f.col, f.rule, f.message)
        ),
        suppressed=suppressed,
        baselined=baselined,
    )


# ======================================================================
# Rendering
# ======================================================================
def render_text(report: Report) -> str:
    lines: List[str] = []
    for finding in report.findings:
        lines.append(f"{finding.location()}: [{finding.rule}] {finding.message}")
    summary = (
        f"{len(report.findings)} finding(s) in {report.files_scanned} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if report.baselined:
        extras.append(f"{report.baselined} baselined")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    if report.clean:
        lines.append("OK: hardware-invariant trust boundary holds")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "version": REPORT_VERSION,
        "rules": report.rules,
        "files_scanned": report.files_scanned,
        "findings": [f.to_json() for f in report.findings],
        "counts_by_rule": report.counts_by_rule(),
        "suppressed": report.suppressed,
        "baselined": report.baselined,
        "clean": report.clean,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: Description for the synthetic pragma-hygiene rule in SARIF output.
_PRAGMA_SUMMARY = "every hypertap pragma must be used and justified"


def render_sarif(report: Report) -> str:
    """SARIF 2.1.0 — the interchange format code-scanning UIs ingest.

    Deterministic like the other renderers: rules sorted by id,
    results in the report's canonical finding order, no timestamps.
    """
    summaries = {rule.id: rule.summary for rule in all_rules()}
    summaries[PRAGMA_RULE] = _PRAGMA_SUMMARY
    sarif_rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": summaries.get(rule_id, rule_id)
            },
        }
        for rule_id in sorted(report.rules)
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(1, finding.line),
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.analysis",
                        "version": str(REPORT_VERSION),
                        "informationUri": (
                            "https://example.invalid/repro/analysis"
                        ),
                        "rules": sarif_rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
