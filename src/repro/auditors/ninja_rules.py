"""Ninja's privilege-escalation policy (shared by all three Ninjas).

Ninja [5] flags a *root* process whose parent is not owned by an
authorized user (the "magic" group), unless the executable is on a
whitelist of legitimate setuid programs.  The rule itself is identical
in O-Ninja, H-Ninja and HT-Ninja — what differs is *where the input
comes from* and *when the check runs*, which is the whole point of the
three-way comparison in Section VIII-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional


@dataclass(frozen=True)
class ProcessFacts:
    """The facts the rule needs about one process and its parent."""

    pid: int
    uid: int
    euid: int
    exe: str
    comm: str
    is_kthread: bool
    parent_pid: int
    parent_uid: int
    parent_euid: int


@dataclass
class NinjaPolicy:
    """Configuration mirroring ninja.conf."""

    #: Users allowed to own parents of root processes ("magic group").
    magic_uids: FrozenSet[int] = frozenset({0})
    #: Executables exempt from checking (setuid binaries).
    whitelist: FrozenSet[str] = field(
        default_factory=lambda: frozenset(
            {"/bin/su", "/usr/bin/passwd", "/usr/bin/sudo", "/sbin/init"}
        )
    )

    def is_unauthorized_root(self, facts: ProcessFacts) -> bool:
        """The core checking rule."""
        if facts.is_kthread or facts.pid <= 1:
            return False
        if facts.euid != 0:
            return False
        if facts.exe in self.whitelist:
            return False
        if facts.parent_uid in self.magic_uids:
            return False
        return True


def facts_from_mappings(
    proc: dict, parent: Optional[dict]
) -> ProcessFacts:
    """Adapter from the dict shape /proc and VMI walks produce."""
    return ProcessFacts(
        pid=int(proc.get("pid", 0)),
        uid=int(proc.get("uid", 0)),
        euid=int(proc.get("euid", 0)),
        exe=str(proc.get("exe", "")),
        comm=str(proc.get("comm", "")),
        is_kthread=bool(proc.get("is_kthread", False))
        or bool(int(proc.get("flags", 0)) & 0x0020_0000),
        parent_pid=int(parent.get("pid", 0)) if parent else 0,
        parent_uid=int(parent.get("uid", 0)) if parent else 0,
        parent_euid=int(parent.get("euid", 0)) if parent else 0,
    )
