"""Virtual Machine Control Structure (per vCPU).

The VMCS holds the *execution controls* that decide which guest
operations trap (HyperTap's logging phase turns these on) and records
the most recent exit.  Field names follow Intel's VT-x nomenclature
loosely: ``cr3_load_exiting``, ``exception_bitmap`` and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.errors import SimulationError
from repro.hw.exits import VMExit

#: Interrupt/exception vectors used by the simulated platform.
VECTOR_SOFTWARE_INT_LINUX = 0x80
VECTOR_SOFTWARE_INT_WINDOWS = 0x2E
VECTOR_TIMER = 0xEF
VECTOR_DISK = 0x2C
VECTOR_NET = 0x2D
VECTOR_IPI_RESCHED = 0xFD


@dataclass
class ExecutionControls:
    """Which guest operations cause VM Exits.

    Defaults mirror a stock KVM configuration with EPT: CR3 loads do
    *not* exit (EPT makes shadow paging unnecessary), external
    interrupts and IO do, and no software interrupts are in the
    exception bitmap.  HyperTap selectively enables the rest.
    """

    cr3_load_exiting: bool = False
    exception_bitmap: Set[int] = field(default_factory=set)
    msr_write_exiting: bool = True
    io_exiting: bool = True
    external_interrupt_exiting: bool = True
    hlt_exiting: bool = True
    apic_access_exiting: bool = True


#: Bit positions of the boolean execution controls in the encoded
#: control word (a stand-in for the VT-x pin/proc-based control fields;
#: the exception bitmap occupies bits ``_EXCEPTION_SHIFT + vector``).
CONTROL_BITS: Tuple[Tuple[str, int], ...] = (
    ("cr3_load_exiting", 0),
    ("msr_write_exiting", 1),
    ("io_exiting", 2),
    ("external_interrupt_exiting", 3),
    ("hlt_exiting", 4),
    ("apic_access_exiting", 5),
)
_EXCEPTION_SHIFT = 8
_MAX_VECTOR = 0xFF


def encode_controls(controls: ExecutionControls) -> int:
    """Pack execution controls into one integer control word.

    The word round-trips through :func:`decode_controls`; it is what
    the hut digest and the VMCS property tests compare, so two control
    states are equal iff their words are.
    """
    word = 0
    for name, bit in CONTROL_BITS:
        if getattr(controls, name):
            word |= 1 << bit
    for vector in controls.exception_bitmap:
        if not 0 <= int(vector) <= _MAX_VECTOR:
            raise SimulationError(f"exception vector {vector!r} out of range")
        word |= 1 << (_EXCEPTION_SHIFT + int(vector))
    return word


def decode_controls(word: int) -> ExecutionControls:
    """Inverse of :func:`encode_controls`."""
    if word < 0 or word >> (_EXCEPTION_SHIFT + _MAX_VECTOR + 1):
        raise SimulationError(f"control word {word:#x} out of range")
    controls = ExecutionControls(
        **{name: bool(word & (1 << bit)) for name, bit in CONTROL_BITS}
    )
    controls.exception_bitmap = {
        vector
        for vector in range(_MAX_VECTOR + 1)
        if word & (1 << (_EXCEPTION_SHIFT + vector))
    }
    return controls


@dataclass
class Vmcs:
    """Control structure for one vCPU."""

    controls: ExecutionControls = field(default_factory=ExecutionControls)
    last_exit: Optional[VMExit] = None
    exit_count: int = 0

    def record_exit(self, exit_event: VMExit) -> None:
        self.last_exit = exit_event
        self.exit_count += 1
