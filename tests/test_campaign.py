"""Tests for the fault-injection campaign runner (slower; integration)."""

import pytest

from repro.faults.campaign import (
    CampaignSummary,
    Outcome,
    TrialConfig,
    TrialResult,
    run_campaign,
    run_trial,
)
from repro.faults.injector import InjectionMode
from repro.faults.sites import FaultClass, build_site_catalog
from repro.sim.clock import SECOND


def site_for(function, fault_class, activation_pass=1):
    return next(
        s
        for s in build_site_catalog()
        if s.function == function
        and s.fault_class is fault_class
        and s.activation_pass == activation_pass
    )


FAST = TrialConfig(
    warmup_ns=1 * SECOND,
    detect_window_ns=10 * SECOND,
    classify_window_ns=8 * SECOND,
)


def fast_config(**overrides):
    base = dict(
        warmup_ns=FAST.warmup_ns,
        detect_window_ns=FAST.detect_window_ns,
        classify_window_ns=FAST.classify_window_ns,
    )
    base.update(overrides)
    return TrialConfig(**base)


class TestSingleTrials:
    def test_hot_lock_leak_detected(self):
        site = site_for("tty_write", FaultClass.MISSING_RELEASE)
        result = run_trial(site, fast_config(workload="hanoi"))
        assert result.activated
        assert result.outcome in (Outcome.PARTIAL_HANG, Outcome.FULL_HANG)
        assert result.detection_latency_ns >= 4 * SECOND

    def test_unreachable_site_not_activated(self):
        # hanoi (and the background kthreads) never start a journal
        # transaction: only the disk_write syscall path does.
        site = site_for("ext3_journal_start", FaultClass.MISSING_RELEASE)
        result = run_trial(site, fast_config(workload="hanoi"))
        assert result.outcome is Outcome.NOT_ACTIVATED

    def test_net_drop_is_not_detected_category(self):
        """The probe dies, the scheduler doesn't: GOSHD's only honest
        answer is silence, which the campaign books as NOT_DETECTED."""
        site = site_for("net_rx_action", FaultClass.MISSING_PAIR)
        result = run_trial(
            site,
            fast_config(
                workload="hanoi", mode=InjectionMode.PERSISTENT
            ),
        )
        assert result.outcome is Outcome.NOT_DETECTED
        assert result.probe_dead

    def test_http_workload_activates_net_sites(self):
        site = site_for("dev_queue_xmit", FaultClass.MISSING_RELEASE)
        result = run_trial(
            site, fast_config(workload="http", mode=InjectionMode.PERSISTENT)
        )
        assert result.activated

    def test_latency_properties(self):
        site = site_for("ext3_get_block", FaultClass.MISSING_RELEASE)
        result = run_trial(
            site,
            fast_config(workload="make-j2", mode=InjectionMode.PERSISTENT),
        )
        if result.outcome in (Outcome.PARTIAL_HANG, Outcome.FULL_HANG):
            assert result.first_alert_ns > result.activation_ns
        if result.outcome is Outcome.FULL_HANG:
            assert result.full_hang_latency_ns >= result.detection_latency_ns


class TestSummary:
    def _summary(self):
        summary = CampaignSummary()
        sites = build_site_catalog(limit=4)
        for i, (site, outcome) in enumerate(
            zip(
                sites,
                [
                    Outcome.PARTIAL_HANG,
                    Outcome.FULL_HANG,
                    Outcome.NOT_MANIFESTED,
                    Outcome.NOT_DETECTED,
                ],
            )
        ):
            summary.add(
                TrialResult(
                    site=site,
                    config=TrialConfig(workload="hanoi"),
                    outcome=outcome,
                    activated=True,
                    activation_ns=1 * SECOND,
                    first_alert_ns=(6 + i) * SECOND
                    if outcome
                    in (Outcome.PARTIAL_HANG, Outcome.FULL_HANG)
                    else None,
                    hung_vcpus=(0,),
                    full_hang_ns=(10 + i) * SECOND
                    if outcome is Outcome.FULL_HANG
                    else None,
                    probe_dead=outcome is Outcome.NOT_DETECTED,
                )
            )
        return summary

    def test_coverage(self):
        summary = self._summary()
        # 2 detected, 1 missed -> 2/3
        assert summary.coverage() == pytest.approx(2 / 3)

    def test_manifestation_rate(self):
        summary = self._summary()
        # 3 of 4 activated faults manifested
        assert summary.manifestation_rate() == pytest.approx(3 / 4)

    def test_partial_fraction(self):
        summary = self._summary()
        assert summary.partial_hang_fraction() == pytest.approx(1 / 2)

    def test_outcome_counts_filtering(self):
        summary = self._summary()
        counts = summary.outcome_counts(workload="hanoi")
        assert counts[Outcome.PARTIAL_HANG] == 1
        assert sum(counts.values()) == 4
        assert sum(summary.outcome_counts(workload="http").values()) == 0

    def test_latency_lists(self):
        summary = self._summary()
        latencies = summary.detection_latencies_s()
        assert len(latencies) == 2
        assert latencies == sorted(latencies)
        assert len(summary.full_hang_latencies_s()) == 1

    def test_empty_summary_coverage_is_one(self):
        assert CampaignSummary().coverage() == 1.0


class TestRunCampaign:
    def test_grid_size_and_progress(self):
        sites = [site_for("tty_write", FaultClass.MISSING_RELEASE)]
        ticks = []
        summary = run_campaign(
            sites,
            workloads=("hanoi",),
            modes=(InjectionMode.TRANSIENT,),
            preempt_options=(False, True),
            seeds=(0,),
            base_config=FAST,
            progress=ticks.append,
        )
        assert len(summary.results) == 2
        assert ticks == [1, 2]
