"""Tests for the experiments CLI (quick experiments only)."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.__main__ import main


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(EXPERIMENTS) >= {
            "fig4", "fig5", "table2", "table3", "ninjas", "fig7",
            "ablation", "rhc",
        }

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestRunners:
    def test_table2_report(self):
        report = run_experiment("table2")
        assert "SucKIT" in report
        assert "DETECTED" in report
        assert "MISSED" not in report

    def test_rhc_report(self):
        report = run_experiment("rhc")
        assert "alarm latency" in report
        assert "YES" not in report  # no false alarms

    def test_ablation_report(self):
        report = run_experiment("ablation")
        assert "unified" in report
        assert "separate" in report


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out

    def test_unknown_name_exit_code(self, capsys):
        assert main(["not-an-experiment"]) == 2

    def test_run_single(self, capsys):
        assert main(["rhc"]) == 0
        out = capsys.readouterr().out
        assert "RHC liveness" in out
