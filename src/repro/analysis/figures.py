"""ASCII renderings of the paper's figures (bar charts and CDFs)."""

from __future__ import annotations

from typing import List, Sequence, Tuple


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """Horizontal bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    top = max(max(values), 1e-12)
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * value / top)))
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def ascii_cdf(
    series: Sequence[Tuple[str, Sequence[float]]],
    points: Sequence[float],
    unit: str = "s",
    title: str = "",
) -> str:
    """Tabulated CDF: one column per series, one row per threshold."""
    from repro.analysis.stats import fraction_at_or_below

    lines: List[str] = []
    if title:
        lines.append(title)
    names = [name for name, _values in series]
    header = "  <= ".rjust(10) + "".join(n.rjust(22) for n in names)
    lines.append(header)
    for point in points:
        row = f"{point:>8.1f}{unit}"
        for _name, values in series:
            frac = fraction_at_or_below(values, point)
            row += f"{frac * 100:>20.1f}%"
        lines.append(row)
    return "\n".join(lines)
