"""Edge cases for the seeded trace mutator (repro.replay.mutate).

Mutation operators must degrade gracefully at the boundaries replay
actually hits: traces with no events at all, traces where the chosen
victim is the *final* record, and silence gaps opened at the very end
of the trace (where there is no tail left to shift except the victim
itself).  Everything must stay deterministic under a fixed seed.
"""

from __future__ import annotations

import copy

from repro.core.events import ProcessSwitchEvent, SyscallEvent
from repro.hw.exits import GuestStateSnapshot
from repro.replay.format import KIND_EVENT, Trace, TraceHeader, event_to_record
from repro.replay.mutate import MUTATION_OPERATORS, TraceMutator
from repro.sim.clock import SECOND


def snapshot() -> GuestStateSnapshot:
    return GuestStateSnapshot(
        cr3=0x1000,
        tr_base=0x2000,
        rsp=0x3000,
        rip=0x4000,
        rax=0,
        rbx=1,
        rcx=2,
        rdx=3,
        rsi=4,
        rdi=5,
        cpl=0,
    )


def switch_record(t: int) -> dict:
    event = ProcessSwitchEvent(
        time_ns=t,
        vcpu_index=0,
        vm_id="vm0",
        hw_state=snapshot(),
        new_pdba=0x5000,
        old_pdba=0x6000,
    )
    return event_to_record(event)


def syscall_record(t: int) -> dict:
    event = SyscallEvent(
        time_ns=t,
        vcpu_index=0,
        vm_id="vm0",
        hw_state=snapshot(),
        number=1,
        args=(7,),
    )
    return event_to_record(event)


def make_trace(records: list, end_ns: int = 10 * SECOND) -> Trace:
    header = TraceHeader(end_ns=end_ns)
    return Trace(header=header, records=list(records))


# ======================================================================
# Empty trace: every operator is a visible no-op, never a crash
# ======================================================================
class TestEmptyTrace:
    def test_every_operator_is_a_noop(self):
        mutator = TraceMutator(seed=1)
        for op in MUTATION_OPERATORS:
            records: list = []
            description = getattr(mutator, op)(records)
            assert "no-op" in description, (op, description)
            assert records == []

    def test_mutate_on_empty_trace_returns_noop_log(self):
        trace = make_trace([])
        mutated, log = TraceMutator(seed=2).mutate(trace, n_mutations=5)
        assert mutated.records == []
        assert len(log) == 5
        assert all("no-op" in entry for entry in log)
        # The horizon is untouched when no timestamps exist to shift.
        assert mutated.header.end_ns == trace.header.end_ns

    def test_non_event_records_do_not_count_as_targets(self):
        # A header-ish record without kind=event must not be mutated.
        mutator = TraceMutator(seed=3)
        records = [{"kind": "scan", "t": 100}]
        for op in MUTATION_OPERATORS:
            before = copy.deepcopy(records)
            assert "no-op" in getattr(mutator, op)(records)
            assert records == before


# ======================================================================
# Mutation at the final record
# ======================================================================
class TestFinalRecord:
    def test_drop_removes_the_only_event(self):
        records = [switch_record(1 * SECOND)]
        description = TraceMutator(seed=4).drop(records)
        assert description.startswith("drop: record 0")
        assert records == []

    def test_duplicate_of_the_final_record(self):
        records = [syscall_record(1 * SECOND), switch_record(2 * SECOND)]
        # Force the final record: seed chosen so rng picks index 1.
        mutator = TraceMutator(seed=0)
        for seed in range(50):
            mutator = TraceMutator(seed=seed)
            probe = copy.deepcopy(records)
            if mutator.duplicate(probe) == "duplicate: record 1 (process_switch)":
                assert len(probe) == 3
                assert probe[1] == probe[2]
                break
        else:  # pragma: no cover - would mean rng never picks index 1
            raise AssertionError("no seed picked the final record")

    def test_corrupt_the_only_record_touches_exactly_one_field(self):
        records = [switch_record(1 * SECOND)]
        pristine = copy.deepcopy(records[0])
        description = TraceMutator(seed=5).corrupt(records)
        assert description.startswith("corrupt: record 0")
        changed = [k for k in pristine if records[0].get(k) != pristine.get(k)]
        assert len(changed) == 1

    def test_reorder_needs_two_events(self):
        records = [switch_record(1 * SECOND)]
        assert "no-op" in TraceMutator(seed=6).reorder(records)
        assert records == [switch_record(1 * SECOND)]


# ======================================================================
# Silence gap at end-of-trace
# ======================================================================
class TestSilenceGapAtEnd:
    def test_gap_at_final_event_shifts_only_that_event(self):
        records = [switch_record(1 * SECOND), syscall_record(2 * SECOND)]
        # With a single candidate split (force it by leaving one event),
        # the gap lands at end-of-trace and shifts exactly the tail.
        tail_only = [records[1]]
        description = TraceMutator(seed=7).silence_gap(
            tail_only, gap_ns=5 * SECOND
        )
        assert "silence_gap: +" in description
        assert "(1 shifted)" in description
        assert tail_only[0]["t"] == 7 * SECOND

    def test_mutate_extends_the_horizon_past_the_shifted_tail(self):
        records = [switch_record(1 * SECOND)]
        trace = make_trace(records, end_ns=2 * SECOND)
        # Find a seed whose first operator draw is silence_gap, so the
        # gap provably lands on the final (only) record.
        for seed in range(200):
            mutator = TraceMutator(seed=seed)
            mutated, log = mutator.mutate(trace, n_mutations=1)
            if log[0].startswith("silence_gap: +"):
                shifted_t = mutated.records[0]["t"]
                assert shifted_t > 1 * SECOND
                # end_ns must cover the displaced tail or replay's RHC
                # would stop before the gap it is supposed to flag.
                assert mutated.header.end_ns >= shifted_t
                return
        raise AssertionError("no seed drew silence_gap first")

    def test_explicit_gap_is_applied_verbatim(self):
        records = [switch_record(1 * SECOND), switch_record(2 * SECOND)]
        mutator = TraceMutator(seed=8)
        description = mutator.silence_gap(records, gap_ns=3 * SECOND)
        assert "+3000000000ns" in description
        # Whatever the split, the final record always shifts.
        assert records[1]["t"] == 5 * SECOND

    def test_original_trace_is_never_mutated(self):
        records = [switch_record(1 * SECOND), syscall_record(2 * SECOND)]
        trace = make_trace(records)
        before = copy.deepcopy(trace.records)
        TraceMutator(seed=9).mutate(trace, n_mutations=10)
        assert trace.records == before


# ======================================================================
# Determinism
# ======================================================================
class TestDeterminism:
    def test_same_seed_same_mutations(self):
        records = [
            switch_record(1 * SECOND),
            syscall_record(2 * SECOND),
            switch_record(3 * SECOND),
            syscall_record(4 * SECOND),
        ]
        trace = make_trace(records)
        first, first_log = TraceMutator(seed=1234).mutate(trace, n_mutations=8)
        second, second_log = TraceMutator(seed=1234).mutate(trace, n_mutations=8)
        assert first_log == second_log
        assert first.records == second.records
        assert first.header.end_ns == second.header.end_ns

    def test_different_seeds_diverge(self):
        records = [
            switch_record(1 * SECOND),
            syscall_record(2 * SECOND),
            switch_record(3 * SECOND),
        ]
        trace = make_trace(records)
        logs = {
            tuple(TraceMutator(seed=s).mutate(trace, n_mutations=6)[1])
            for s in range(8)
        }
        assert len(logs) > 1

    def test_mutated_records_stay_event_records(self):
        # corrupt may damage any field, including 'kind': everything
        # else must leave kind=event intact so replay still sees them.
        records = [switch_record(1 * SECOND), syscall_record(2 * SECOND)]
        trace = make_trace(records)
        mutated, log = TraceMutator(seed=10).mutate(trace, n_mutations=4)
        corrupted_kind = any("field 'kind'" in entry for entry in log)
        if not corrupted_kind:
            assert all(r.get("kind") == KIND_EVENT for r in mutated.records)
