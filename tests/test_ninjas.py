"""Tests for the three Ninjas (§VII-C, §VIII-C)."""


from repro.attacks.exploits import CVE_2010_3847, ExploitPlan
from repro.attacks.strategies import (
    RootkitCombinedAttack,
    SpammingAttack,
    TransientAttack,
)
from repro.auditors.h_ninja import HNinja
from repro.auditors.ht_ninja import HTNinja
from repro.auditors.ninja_rules import NinjaPolicy, ProcessFacts
from repro.auditors.o_ninja import ONinja
from repro.sim.clock import MILLISECOND, SECOND
from repro.vmi.introspection import KernelSymbolMap


def make_facts(**overrides):
    base = dict(
        pid=50,
        uid=1000,
        euid=0,
        exe="/home/user/exploit",
        comm="exploit",
        is_kthread=False,
        parent_pid=40,
        parent_uid=1000,
        parent_euid=1000,
    )
    base.update(overrides)
    return ProcessFacts(**base)


class TestNinjaPolicy:
    def test_flags_unauthorized_root(self):
        assert NinjaPolicy().is_unauthorized_root(make_facts())

    def test_magic_parent_authorized(self):
        assert not NinjaPolicy().is_unauthorized_root(
            make_facts(parent_uid=0)
        )

    def test_non_root_process_ignored(self):
        assert not NinjaPolicy().is_unauthorized_root(make_facts(euid=1000))

    def test_whitelisted_exe_exempt(self):
        assert not NinjaPolicy().is_unauthorized_root(
            make_facts(exe="/bin/su")
        )

    def test_kthreads_exempt(self):
        assert not NinjaPolicy().is_unauthorized_root(
            make_facts(is_kthread=True)
        )

    def test_custom_magic_group(self):
        policy = NinjaPolicy(magic_uids=frozenset({0, 1000}))
        assert not policy.is_unauthorized_root(make_facts(parent_uid=1000))


class TestONinja:
    def test_detects_persistent_escalation(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=200 * MILLISECOND)
        oninja.install()
        testbed.run_s(0.5)
        attack = TransientAttack(
            testbed.kernel, ExploitPlan(exit_after=False)
        )
        attack.launch()
        testbed.run_s(2.0)
        assert oninja.detected
        assert oninja.detections[0]["pid"] == attack.result.attacker_pid

    def test_misses_transient_attack(self, testbed):
        """The escalated process lives ~1 ms; a 1 s poll misses it."""
        oninja = ONinja(testbed.kernel, interval_ns=1 * SECOND)
        oninja.install()
        testbed.run_s(1.2)  # land between scans
        attack = TransientAttack(testbed.kernel)
        attack.launch()
        testbed.run_s(3.0)
        assert attack.result.escalated
        assert not oninja.detected

    def test_kill_on_detect(self, testbed):
        from repro.guest.task import TaskState

        oninja = ONinja(
            testbed.kernel, interval_ns=100 * MILLISECOND, kill_on_detect=True
        )
        oninja.install()
        testbed.run_s(0.3)
        attack = TransientAttack(testbed.kernel, ExploitPlan(exit_after=False))
        attack.launch()
        testbed.run_s(2.0)
        assert oninja.detected
        victim = testbed.kernel.find_task(attack.result.attacker_pid)
        assert victim is None or victim.state is TaskState.ZOMBIE

    def test_defeated_by_rootkit(self, testbed):
        oninja = ONinja(testbed.kernel, interval_ns=100 * MILLISECOND)
        oninja.install()
        testbed.run_s(0.3)
        # A competent attacker's insmod is quick; 200us here so the
        # visibility window cannot straddle a scan deterministically.
        attack = RootkitCombinedAttack(
            testbed.kernel, install_delay_ns=200_000
        )
        attack.launch()
        testbed.run_s(2.0)
        assert attack.result.rootkit_installed_ns is not None
        assert not oninja.detected

    def test_scan_time_grows_with_spam(self, testbed):
        """The mechanism behind the spamming attack: more processes ->
        longer scans."""
        oninja = ONinja(testbed.kernel, interval_ns=50 * MILLISECOND)
        oninja.install()
        testbed.run_s(1.0)
        lean_scans = oninja.scans_completed
        spam = SpammingAttack(testbed.kernel, idle_processes=150)
        spam.spam()
        testbed.run_s(1.0)
        fat_scans = oninja.scans_completed - lean_scans
        assert fat_scans < lean_scans  # same wall time, fewer scans


class TestHNinja:
    def _start(self, testbed, interval_ns, blocking=False):
        ninja = HNinja(
            testbed.machine,
            KernelSymbolMap.from_kernel(testbed.kernel),
            interval_ns=interval_ns,
            blocking=blocking,
        )
        ninja.start()
        return ninja

    def test_detects_persistent_escalation(self, testbed):
        ninja = self._start(testbed, 100 * MILLISECOND)
        testbed.run_s(0.3)
        TransientAttack(testbed.kernel, ExploitPlan(exit_after=False)).launch()
        testbed.run_s(1.0)
        assert ninja.detected

    def test_fast_interval_catches_short_attack(self, testbed):
        ninja = self._start(testbed, 4 * MILLISECOND)
        testbed.run_s(0.2)
        TransientAttack(
            testbed.kernel,
            ExploitPlan(post_escalation_ns=5_000_000, io_actions=3),
        ).launch()
        testbed.run_s(0.5)
        assert ninja.detected

    def test_slow_interval_misses_short_attack(self, testbed):
        ninja = self._start(testbed, 500 * MILLISECOND)
        testbed.run_s(0.6)
        TransientAttack(testbed.kernel).launch()
        testbed.run_s(2.0)
        assert not ninja.detected

    def test_defeated_by_dkom_rootkit(self, testbed):
        """H-Ninja walks the task list: DKOM removes the attacker."""
        ninja = self._start(testbed, 50 * MILLISECOND)
        testbed.run_s(0.2)
        attack = RootkitCombinedAttack(
            testbed.kernel, rootkit_name="SucKIT"
        )
        attack.launch()
        testbed.run_s(2.0)
        assert not ninja.detected

    def test_no_proc_side_channel(self, testbed):
        """H-Ninja has no pid inside the guest to observe."""
        ninja = self._start(testbed, 1 * SECOND)
        guest_comms = {
            e["comm"] for e in testbed.kernel.walk_task_list_guest()
        }
        assert "ninja" not in guest_comms

    def test_stop(self, testbed):
        ninja = self._start(testbed, 100 * MILLISECOND)
        testbed.run_s(0.5)
        ninja.stop()
        scans = ninja.scans_completed
        testbed.run_s(1.0)
        assert ninja.scans_completed == scans


class TestHTNinja:
    def test_detects_transient_attack(self, testbed):
        """Active monitoring: the IO-syscall check fires *during* the
        attack, however short it is."""
        ninja = HTNinja()
        testbed.monitor([ninja])
        testbed.run_s(0.3)
        attack = TransientAttack(testbed.kernel)
        attack.launch()
        testbed.run_s(0.5)
        assert ninja.detected
        assert ninja.detections[0]["pid"] == attack.result.attacker_pid

    def test_detects_rootkit_combined_attack(self, testbed):
        ninja = HTNinja()
        testbed.monitor([ninja])
        testbed.run_s(0.3)
        RootkitCombinedAttack(testbed.kernel).launch()
        testbed.run_s(0.5)
        assert ninja.detected

    def test_detects_under_spamming(self, testbed):
        ninja = HTNinja()
        testbed.monitor([ninja])
        testbed.run_s(0.3)
        spam = SpammingAttack(testbed.kernel, idle_processes=100)
        spam.spam()
        testbed.run_s(0.3)
        spam.launch()
        testbed.run_s(1.0)
        assert ninja.detected

    def test_detects_glibc_exploit(self, testbed):
        ninja = HTNinja()
        testbed.monitor([ninja])
        testbed.run_s(0.3)
        TransientAttack(
            testbed.kernel, ExploitPlan(cve=CVE_2010_3847)
        ).launch()
        testbed.run_s(0.5)
        assert ninja.detected

    def test_no_false_positives_on_legit_root(self, testbed):
        """Root daemons parented by init are authorized."""
        ninja = HTNinja()
        testbed.monitor([ninja])

        def root_daemon(ctx):
            while True:
                yield ctx.sys_disk_read(1)
                yield ctx.compute(1_000_000)

        testbed.kernel.spawn_process(
            root_daemon, "cron", uid=0, exe="/usr/sbin/cron"
        )
        testbed.run_s(2.0)
        assert not ninja.detected

    def test_whitelist_limitation(self, testbed):
        """§VIII-C2's caveat: attacks inside whitelisted processes are
        not detected — faithfully reproduced."""
        ninja = HTNinja()
        testbed.monitor([ninja])
        testbed.run_s(0.3)

        def compromised_su(ctx):  # buffer overflow inside /bin/su
            yield ctx.syscall("vuln_sock_diag")
            yield ctx.sys_disk_read(2)
            yield ctx.exit(0)

        testbed.kernel.spawn_process(
            compromised_su, "su", uid=1000, exe="/bin/su"
        )
        testbed.run_s(0.5)
        assert not ninja.detected

    def test_pause_on_detect(self, testbed):
        ninja = HTNinja(pause_on_detect=True)
        testbed.monitor([ninja])
        testbed.run_s(0.3)
        TransientAttack(testbed.kernel, ExploitPlan(exit_after=False)).launch()
        testbed.run_s(0.5)
        assert ninja.detected
        assert testbed.machine.vm_paused
