"""Fault-site catalog.

The paper profiled its guest kernel under the evaluation workloads and
identified 374 injection locations in core kernel functions and the
ext3/char/block modules.  We do the same against our guest kernel: the
instrumentable locations are the named :class:`FaultPoint` sites in
kernel code paths, and the catalog enumerates (function, fault class,
activation pass) combinations — the activation pass plays the role of
the instruction offset within the function, making each site a
distinct point on the execution path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


class FaultClass(enum.Enum):
    """The four hang-fault classes of [34]."""

    MISSING_RELEASE = "missing_release"
    WRONG_ORDER = "wrong_order"
    MISSING_PAIR = "missing_pair"
    MISSING_IRQ_RESTORE = "missing_irq_restore"


@dataclass(frozen=True)
class FaultSite:
    """One injectable location."""

    site_id: int
    function: str
    module: str
    lock: str
    #: Partner lock for the wrong-ordering class (the lock the normal
    #: path acquires *after* ``lock``).
    lock2: Optional[str]
    fault_class: FaultClass
    #: The fault patches the Nth dynamic execution of the function.
    activation_pass: int
    #: True when the function runs in interrupt context (the fault
    #: then corrupts softirq state rather than spinning a task).
    irq_context: bool = False


#: Instrumented kernel functions: (function, module, lock, lock2, irq_ctx).
KERNEL_FUNCTIONS: Sequence[Tuple[str, str, str, Optional[str], bool]] = (
    ("tty_write", "char", "tty_lock", None, False),
    ("con_flush", "char", "console_lock", None, False),
    ("tty_read", "char", "tty_lock", None, False),
    ("path_lookup", "core", "dcache_lock", None, False),
    ("ext3_get_block", "ext3", "inode_lock", "queue_lock", False),
    ("ext3_journal_start", "ext3", "journal_lock", "buffer_lock", False),
    ("submit_bio", "block", "queue_lock", None, False),
    ("hrtimer_start", "core", "timer_lock", None, False),
    ("copy_process", "core", "tasklist_lock", None, False),
    ("signal_deliver", "core", "tasklist_lock", None, False),
    ("proc_readdir", "core", "tasklist_lock", None, False),
    ("dev_queue_xmit", "net", "sock_lock", None, False),
    ("netif_receive_skb", "net", "rx_lock", None, False),
    ("net_rx_action", "net", "rx_lock", None, True),
    ("run_timer_softirq", "core", "timer_lock", None, False),
    ("rebalance_domains", "core", "runqueue_lock", None, False),
    ("writeback_inodes", "ext3", "journal_lock", "buffer_lock", False),
)

#: Activation passes used to spread sites along the execution path.
#: (53 sites per pass; the eighth pass is truncated by the catalog
#: limit so the total matches the paper's 374 locations.)
ACTIVATION_PASSES: Sequence[int] = (1, 2, 3, 5, 8, 13, 21, 34)

#: The paper's catalog size.
PAPER_SITE_COUNT = 374


def build_site_catalog(limit: int = PAPER_SITE_COUNT) -> List[FaultSite]:
    """Enumerate the catalog deterministically (stable site ids)."""
    sites: List[FaultSite] = []
    site_id = 0
    for activation in ACTIVATION_PASSES:
        for function, module, lock, lock2, irq_ctx in KERNEL_FUNCTIONS:
            for fault_class in FaultClass:
                if fault_class is FaultClass.WRONG_ORDER and lock2 is None:
                    continue
                if irq_ctx and fault_class not in (
                    FaultClass.MISSING_PAIR,
                    FaultClass.MISSING_IRQ_RESTORE,
                ):
                    # IRQ-context code cannot leak task-held spinlocks
                    # in our model; only the softirq-state faults apply.
                    continue
                sites.append(
                    FaultSite(
                        site_id=site_id,
                        function=function,
                        module=module,
                        lock=lock,
                        lock2=lock2,
                        fault_class=fault_class,
                        activation_pass=activation,
                        irq_context=irq_ctx,
                    )
                )
                site_id += 1
                if len(sites) >= limit:
                    return sites
    return sites


def sites_by_module(sites: Sequence[FaultSite]) -> dict:
    out: dict = {}
    for site in sites:
        out.setdefault(site.module, []).append(site)
    return out
