"""Hypervisor layer: KVM-like exit handling plus HyperTap's plumbing.

Mirrors Fig 2 of the paper:

* :class:`KvmHypervisor` — the exit dispatch loop (trap-and-emulate),
* :class:`EventForwarder` — the <100-line in-KVM patch that forwards VM
  Exit events and guest hardware state,
* :class:`EventMultiplexer` — a host kernel module that buffers events
  and fans them out to per-VM auditors and the Remote Health Checker,
* :class:`AuditingContainer` — LXC-like isolation for auditors,
* :class:`RemoteHealthChecker` — an external machine watching the
  liveness of the monitoring pipeline itself.
"""

from repro.hypervisor.kvm import KvmHypervisor
from repro.hypervisor.event_forwarder import EventForwarder
from repro.hypervisor.event_multiplexer import EventMultiplexer
from repro.hypervisor.containers import AuditingContainer
from repro.hypervisor.rhc import RemoteHealthChecker

__all__ = [
    "KvmHypervisor",
    "EventForwarder",
    "EventMultiplexer",
    "AuditingContainer",
    "RemoteHealthChecker",
]
