"""Versioned JSONL wire protocol between producers and the service.

One frame per line, ``sort_keys``-encoded JSON objects, over a local
stream socket.  The catalogue:

Producer -> service
    ``hello{version}``                      — handshake, first frame
    ``stream-open{stream, header, config?, arrival_clock?}``
    ``rec{stream, body, arrival_ns?}``      — one trace record
    ``stream-close{stream, sent, end_ns?}`` — end of stream
    ``export{scope?}``                      — request the merged export
    ``shutdown{}``                          — stop the service

Service -> producer
    ``welcome{version, jobs}``
    ``stream-ack{stream, credit}``          — credit = send window
    ``credit{stream, n}``                   — window replenishment
    ``slowdown{stream, wait_ns}``           — backpressure rising edge
    ``verdict{...}``                        — per-stream result payload
    ``export-result{scope, lines}``
    ``error{message}``                      — then the connection closes
    ``bye{}``

Flow control is credit-based: ``stream-ack`` grants an initial window,
each ``credit`` frame restores ``n`` sends.  That bounds service-side
buffering in *bytes* (transport concern, wall-clock-paced, counted
under host-scope ``transport.*``).  The deterministic drop/SLO
accounting lives one layer down, in the admission model, driven only
by the virtual ``arrival_ns`` stamps inside the frames.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.errors import TraceFormatError

PROTOCOL_VERSION = 1

#: Initial per-stream credit window (frames in flight).
DEFAULT_CREDIT = 512

#: Replenish after this many consumed credits.
CREDIT_BATCH = DEFAULT_CREDIT // 2

#: Longest accepted wire line; a trace record is well under this.
MAX_FRAME_BYTES = 1 << 20


class ProtocolError(TraceFormatError):
    """Malformed or out-of-contract frame."""


_encode = json.JSONEncoder(sort_keys=True).encode


def encode_frame(frame: Dict[str, Any]) -> bytes:
    return (_encode(frame) + "\n").encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    try:
        frame = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"bad frame (not JSON): {exc}") from exc
    if not isinstance(frame, dict) or not isinstance(frame.get("kind"), str):
        raise ProtocolError(f"bad frame (no kind): {frame!r}")
    return frame


def expect(frame: Dict[str, Any], kind: str) -> Dict[str, Any]:
    """Assert a frame's kind; ``error`` frames surface their message."""
    if frame.get("kind") == "error":
        raise ProtocolError(f"peer error: {frame.get('message')}")
    if frame.get("kind") != kind:
        raise ProtocolError(
            f"expected {kind!r} frame, got {frame.get('kind')!r}"
        )
    return frame
