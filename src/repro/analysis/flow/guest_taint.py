"""``flow.guest-taint`` — guest data must not steer hypervisor control.

HyperTap's trust argument (paper §III, Fig 3) is that the monitor never
*believes* the guest: everything it acts on is derived from hardware
architectural invariants (``TR.base -> TSS.RSP0 -> task_struct``), not
from values the guest wrote.  The event payload a VM exit carries —
qualification words, guest registers, MSR write values — is exactly the
state a compromised guest controls, so a payload value that reaches an
EPT permission write, an interrupt injection, or a VM pause/resume
decision is a trust-boundary crossing.

This rule taints every parameter annotated as a ``GuestEvent`` subclass
or ``VMExit`` (harvested from ``repro.core.events``) and drives the
dataflow engine over the function's CFG, following calls through the
repo-wide call graph via summaries.  Taint is laundered only by a
**declared sanitizer** (``repro.core.derive.TAINT_SANITIZERS``) — a
function whose return value is re-rooted in EPT-protected architectural
state — or by an audited ``# hypertap: allow(flow.guest-taint)``
pragma at the crossing, which is how the handful of paper-sanctioned
crossings (e.g. Fig 3E: execute-protecting the page the guest's own
``SYSENTER_EIP`` write names) are recorded.

``repro.auditors.*`` is excluded: auditors *exist* to turn event
contents into pause/resume verdicts, and the purity rule already pins
them to that sanctioned, isolated API surface.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import FlowIndex
from repro.analysis.flow.callgraph import FunctionScope, iter_function_scopes
from repro.analysis.flow.taint import TaintEngine, annotation_names
from repro.analysis.repo import AnalysisContext
from repro.analysis.rules import Rule, register

#: Modules whose functions are *expected* to act on event contents:
#: the auditor verdict path is the sanctioned crossing, policed by the
#: purity rule instead.
_EXCLUDED_PREFIXES = ("repro.auditors",)


def _event_params(scope: FunctionScope, event_types) -> Dict[str, str]:
    """param name -> source description for event-typed parameters."""
    args = getattr(scope.node, "args", None)
    if args is None or not hasattr(args, "args"):
        return {}
    sources: Dict[str, str] = {}
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.arg == "self":
            continue
        named = annotation_names(arg.annotation) & event_types
        if named:
            kind = sorted(named)[0]
            sources[arg.arg] = f"{arg.arg}: {kind}"
    return sources


@register
class GuestTaintRule(Rule):
    id = "flow.guest-taint"
    summary = (
        "guest event payloads must not reach EPT/interrupt/VM-control "
        "sinks without a declared repro.core.derive sanitizer"
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        index = FlowIndex.for_context(ctx)
        engine = TaintEngine(index)
        for source in ctx.files:
            if source.module.startswith(_EXCLUDED_PREFIXES):
                continue
            for scope in iter_function_scopes(source):
                sources = _event_params(scope, index.event_types)
                if not sources:
                    continue
                collected: List[Tuple[int, str]] = []

                def report(line: int, message: str) -> None:
                    collected.append((line, message))

                tainted = {
                    name: frozenset({desc})
                    for name, desc in sources.items()
                }
                engine.analyze(scope, tainted, report)
                for line, message in sorted(collected):
                    yield self.finding(source.rel, line, message)
