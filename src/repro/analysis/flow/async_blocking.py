"""``flow.async-blocking`` — no blocking work on the event loop.

The serve layer's SLO argument assumes the asyncio loop thread only
ever parks on awaitables: one ``time.sleep`` or synchronous ``open()``
inside a coroutine stalls *every* connection, which the runtime will
not tell you until a latency ledger column regresses.  This rule walks
each ``async def`` and, via the call graph, the synchronous helpers it
invokes on the loop thread, flagging:

* direct blocking primitives — ``time.sleep``, builtin ``open``,
  ``os`` file operations, ``subprocess`` entry points, ``os.system``,
  and ``parallel_map`` (a process-pool fan-out is the *definition* of
  blocking);
* the same primitives reached transitively through resolvable sync
  callees (reported at the coroutine's call site, naming the chain);
* un-awaited coroutine calls — a call resolving to an ``async def``
  that is neither awaited nor handed to a sanctioned scheduler
  (``asyncio.gather``/``create_task``/``ensure_future``/…).

Work explicitly moved off-loop via ``asyncio.to_thread`` or
``loop.run_in_executor`` is exempt, including everything in the wrapped
callable's body — that is the sanctioned escape hatch the fixes in
``repro.serve`` use.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.flow import FlowIndex
from repro.analysis.flow.callgraph import (
    CallGraph,
    FunctionInfo,
    FunctionScope,
    iter_function_scopes,
)
from repro.analysis.repo import AnalysisContext, dotted_name
from repro.analysis.rules import Rule, register

#: Dotted call targets that block the calling thread.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep() blocks the event loop",
    "os.system": "os.system() blocks the event loop",
    "os.unlink": "os.unlink() is blocking filesystem IO",
    "os.remove": "os.remove() is blocking filesystem IO",
    "os.rename": "os.rename() is blocking filesystem IO",
    "os.replace": "os.replace() is blocking filesystem IO",
    "os.makedirs": "os.makedirs() is blocking filesystem IO",
    "os.rmdir": "os.rmdir() is blocking filesystem IO",
    "subprocess.run": "subprocess.run() blocks the event loop",
    "subprocess.call": "subprocess.call() blocks the event loop",
    "subprocess.check_call": "subprocess.check_call() blocks the event loop",
    "subprocess.check_output": "subprocess.check_output() blocks the event loop",
    "subprocess.Popen": "subprocess.Popen() forks under the event loop",
    "io.open": "open() is blocking file IO",
}

#: Builtins that block when called as bare names.
_BLOCKING_NAMES = {
    "open": "open() is blocking file IO",
}

#: ``asyncio`` consumers that legitimately take a coroutine object.
_SCHEDULERS = {
    "gather",
    "create_task",
    "ensure_future",
    "wait",
    "wait_for",
    "shield",
    "run",
    "run_coroutine_threadsafe",
    "as_completed",
}

#: Call targets that move their callable argument off the loop thread.
_OFFLOADERS = {"to_thread", "run_in_executor"}

#: Transitive traversal depth through sync helpers.
_MAX_DEPTH = 5


def _call_attr(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _is_offloader(call: ast.Call) -> bool:
    return _call_attr(call) in _OFFLOADERS


def _blocking_reason(call: ast.Call, graph: CallGraph, scope: FunctionScope
                     ) -> Optional[str]:
    """Why this call blocks, if it is a direct blocking primitive."""
    func = call.func
    if isinstance(func, ast.Name):
        reason = _BLOCKING_NAMES.get(func.id)
        if reason is not None:
            return reason
    dotted = dotted_name(func)
    if dotted is not None:
        reason = _BLOCKING_DOTTED.get(dotted)
        if reason is not None:
            return reason
    resolved = graph.resolve_call(
        call, scope.source, scope.class_name, scope.local_defs(graph),
        scope.local_types(graph), scope.local_aliases(),
    )
    if resolved is not None and resolved.name == "parallel_map" and (
        resolved.module.startswith("repro.parallel")
    ):
        return "parallel_map() fans out a process pool synchronously"
    return None


class _OffloadedCalls:
    """Call nodes whose evaluation happens off the loop thread."""

    def __init__(self, scope: FunctionScope) -> None:
        self.exempt: Set[int] = set()
        for node in scope.walk_own():
            if isinstance(node, ast.Call) and _is_offloader(node):
                self.exempt.add(id(node))
                for sub in ast.walk(node):
                    self.exempt.add(id(sub))

    def covers(self, node: ast.AST) -> bool:
        return id(node) in self.exempt


def _sync_callee_blocks(
    info: FunctionInfo,
    graph: CallGraph,
    ctx: AnalysisContext,
    visited: Set[Tuple[str, str]],
    depth: int,
) -> Optional[str]:
    """A chain description if this sync function (transitively) blocks."""
    key = (info.module, info.qualname)
    if key in visited or depth > _MAX_DEPTH or info.is_async:
        return None
    visited.add(key)
    source = ctx.module(info.module)
    if source is None:
        return None
    scope = FunctionScope(source, info.node, info.qualname, info.class_name)
    for node in scope.walk_own():
        if not isinstance(node, ast.Call):
            continue
        reason = _blocking_reason(node, graph, scope)
        if reason is not None:
            return f"{info.name}(): {reason}"
        resolved = graph.resolve_call(
            node, source, scope.class_name, scope.local_defs(graph),
            scope.local_types(graph), scope.local_aliases(),
        )
        if resolved is not None and not resolved.is_async:
            chain = _sync_callee_blocks(
                resolved, graph, ctx, visited, depth + 1
            )
            if chain is not None:
                return f"{info.name}() -> {chain}"
    return None


@register
class AsyncBlockingRule(Rule):
    id = "flow.async-blocking"
    summary = (
        "coroutines must not block the event loop: no time.sleep/file "
        "IO/parallel_map on the loop thread, no un-awaited coroutines"
    )

    def check(self, ctx: AnalysisContext) -> Iterator[Finding]:
        index = FlowIndex.for_context(ctx)
        graph = index.callgraph
        for source in ctx.files:
            for scope in iter_function_scopes(source):
                if not scope.is_async:
                    continue
                yield from self._check_coroutine(ctx, graph, scope)

    # ------------------------------------------------------------------
    def _check_coroutine(
        self, ctx: AnalysisContext, graph: CallGraph, scope: FunctionScope
    ) -> Iterator[Finding]:
        offloaded = _OffloadedCalls(scope)
        parents = _parent_map(scope)
        for node in scope.walk_own():
            if not isinstance(node, ast.Call) or offloaded.covers(node):
                continue
            reason = _blocking_reason(node, graph, scope)
            if reason is not None:
                yield self.finding(
                    scope.source.rel,
                    node.lineno,
                    f"coroutine {scope.qualname}() blocks the event loop: "
                    f"{reason}; wrap it in asyncio.to_thread or move it "
                    f"out of the coroutine",
                )
                continue
            resolved = graph.resolve_call(
                node, scope.source, scope.class_name,
                scope.local_defs(graph), scope.local_types(graph),
                scope.local_aliases(),
            )
            if resolved is None:
                continue
            if resolved.is_async:
                if not _consumed(node, parents):
                    yield self.finding(
                        scope.source.rel,
                        node.lineno,
                        f"coroutine {scope.qualname}() calls async "
                        f"{resolved.name}() without awaiting or "
                        f"scheduling it (the call builds a coroutine "
                        f"object and discards it)",
                    )
                continue
            chain = _sync_callee_blocks(resolved, graph, ctx, set(), 1)
            if chain is not None:
                yield self.finding(
                    scope.source.rel,
                    node.lineno,
                    f"coroutine {scope.qualname}() blocks the event loop "
                    f"via {chain}; wrap the call in asyncio.to_thread",
                )


def _parent_map(scope: FunctionScope) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    stack: List[ast.AST] = [scope.node]
    while stack:
        node = stack.pop()
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
            if not isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                stack.append(child)
    return parents


def _consumed(call: ast.Call, parents: Dict[int, ast.AST]) -> bool:
    """True when the coroutine object this call builds is awaited,
    scheduled, stored, or returned (storage is conservatively fine —
    ``coro = f(); await coro`` is legal)."""
    node: ast.AST = call
    while True:
        parent = parents.get(id(node))
        if parent is None:
            return False
        if isinstance(parent, ast.Await):
            return True
        if isinstance(parent, (ast.Return, ast.Assign, ast.AnnAssign,
                               ast.NamedExpr, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, ast.Call) and parent is not call:
            attr = _call_attr(parent)
            if attr in _SCHEDULERS or attr in _OFFLOADERS:
                return True
            return False
        if isinstance(parent, ast.Expr):
            return False
        node = parent
