"""The deterministic admission model (repro.serve.admission).

A single-server FIFO queue evaluated purely in the virtual arrival
clock: same arrival sequence in, same drop decisions and waits out —
regardless of how the transport paced the frames.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import (
    DEFAULT_MAX_WAIT_NS,
    DEFAULT_QUEUE_LIMIT,
    AdmissionDecision,
    AdmissionModel,
)


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            AdmissionModel(policy="yolo")

    @pytest.mark.parametrize("kwargs", [{"queue_limit": 0}, {"service_ns": 0}])
    def test_degenerate_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionModel(**kwargs)


class TestQueueModel:
    def test_idle_arrival_admitted_with_zero_wait(self):
        model = AdmissionModel(service_ns=1_000)
        decision = model.arrive(10_000)
        assert decision == AdmissionDecision(
            admitted=True,
            reason=None,
            wait_ns=0,
            latency_ns=1_000,
            depth=1,
            slowdown=False,
        )

    def test_back_to_back_arrivals_accumulate_wait(self):
        # Three arrivals at t=0 against a 1µs service cost: the queue
        # serialises them, so waits are 0, 1µs, 2µs.
        model = AdmissionModel(service_ns=1_000)
        waits = [model.arrive(0).wait_ns for _ in range(3)]
        assert waits == [0, 1_000, 2_000]
        assert model.admitted == 3

    def test_queue_drains_in_virtual_time(self):
        model = AdmissionModel(service_ns=1_000)
        for _ in range(3):
            model.arrive(0)
        assert model.depth_at(0) == 3
        assert model.depth_at(1_000) == 2
        assert model.depth_at(10_000) == 0
        # A later arrival starts fresh: no residual wait.
        assert model.arrive(10_000).wait_ns == 0

    def test_overflow_drop_at_queue_limit(self):
        model = AdmissionModel(
            queue_limit=2, service_ns=1_000, max_wait_ns=10**9
        )
        assert model.arrive(0).admitted
        assert model.arrive(0).admitted
        decision = model.arrive(0)
        assert not decision.admitted
        assert decision.reason == "overflow"
        assert decision.slowdown
        assert decision.latency_ns == 0
        assert model.dropped_overflow == 1
        # The bounded buffer is enforced under *both* policies.
        drop_model = AdmissionModel(
            queue_limit=2, service_ns=1_000, policy="drop"
        )
        drop_model.arrive(0), drop_model.arrive(0)
        assert drop_model.arrive(0).reason == "overflow"

    def test_backpressure_drop_past_max_wait_under_pace(self):
        model = AdmissionModel(
            queue_limit=1_000, service_ns=1_000, max_wait_ns=1_500
        )
        for _ in range(2):
            assert model.arrive(0).admitted
        decision = model.arrive(0)  # would wait 2µs > 1.5µs
        assert decision.reason == "backpressure"
        assert decision.wait_ns == 2_000
        assert model.dropped_backpressure == 1
        assert model.dropped == 1

    def test_drop_policy_never_sheds_on_wait(self):
        model = AdmissionModel(
            queue_limit=1_000, service_ns=1_000, max_wait_ns=0, policy="drop"
        )
        decisions = [model.arrive(0) for _ in range(10)]
        assert all(d.admitted for d in decisions)
        assert model.dropped == 0

    def test_slowdown_signal_rises_at_quarter_depth(self):
        model = AdmissionModel(
            queue_limit=8, service_ns=1_000, max_wait_ns=10**9
        )
        assert model.slowdown_depth == 2
        first = model.arrive(0)
        second = model.arrive(0)
        assert not first.slowdown
        assert second.slowdown  # depth reached queue_limit // 4

    def test_defaults_are_sane(self):
        model = AdmissionModel()
        assert model.queue_limit == DEFAULT_QUEUE_LIMIT
        assert model.max_wait_ns == DEFAULT_MAX_WAIT_NS
        assert model.arrive(0).admitted


class TestDeterminism:
    def test_same_arrival_sequence_same_decisions(self):
        # The wall clock is not an input: replaying the identical
        # arrival sequence reproduces every decision field.
        arrivals = [i * 700 for i in range(200)]

        def run():
            model = AdmissionModel(
                queue_limit=16, service_ns=1_000, max_wait_ns=3_000
            )
            return [model.arrive(t) for t in arrivals]

        assert run() == run()

    def test_accounting_identity_in_both_shedding_regimes(self):
        # Under pace the wait deadline sheds first and keeps the queue
        # shallow (overflow is unreachable); under drop only the depth
        # bound sheds.  Either way every arrival is accounted.
        offered = 500
        pace = AdmissionModel(
            queue_limit=1_000, service_ns=10_000, max_wait_ns=15_000
        )
        for i in range(offered):
            pace.arrive(i * 1_000)
        assert pace.admitted + pace.dropped == offered
        assert pace.dropped_backpressure > 0
        assert pace.dropped_overflow == 0

        drop = AdmissionModel(
            queue_limit=4, service_ns=10_000, max_wait_ns=15_000, policy="drop"
        )
        for i in range(offered):
            drop.arrive(i * 1_000)
        assert drop.admitted + drop.dropped == offered
        assert drop.dropped_overflow > 0
        assert drop.dropped_backpressure == 0
