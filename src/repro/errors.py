"""Exception hierarchy shared by every repro subsystem.

The simulation deliberately separates three kinds of failure:

* ``SimulationError`` — a bug or misuse of the simulator itself
  (programming errors in the harness, impossible configurations).
* ``GuestFault`` — faults raised *by the simulated hardware* toward the
  simulated guest (page faults, protection violations).  These are part
  of normal machine behaviour and are caught by the hypervisor layer.
* ``MonitorError`` — failures inside monitoring components (auditors,
  the event multiplexer).  The auditing-container layer catches these so
  that one broken auditor cannot take down the monitoring pipeline,
  mirroring the isolation argument of the paper (Section V-C).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The simulation was misused or reached an impossible state."""


class ConfigurationError(SimulationError):
    """A component was configured with invalid parameters."""


class GuestFault(ReproError):
    """A hardware-level fault delivered to the simulated guest."""


class GuestPageFault(GuestFault):
    """Guest virtual address could not be translated (no PTE)."""

    def __init__(self, gva: int, access: str) -> None:
        super().__init__(f"guest page fault at GVA {gva:#x} ({access})")
        self.gva = gva
        self.access = access


class TripleFault(GuestFault):
    """The guest reached an unrecoverable state (e.g. bad CR3 load)."""


class MonitorError(ReproError):
    """An auditor or monitoring component failed at runtime."""


class AuditorCrash(MonitorError):
    """An auditor raised an unhandled exception while auditing."""


class TraceFormatError(MonitorError):
    """A recorded trace (or one of its records) could not be decoded.

    Raised by the event codecs and the ``repro.replay`` readers on
    malformed input; replay tooling treats it as a *graceful* rejection
    (the record is counted and skipped), never a crash.

    ``records_read`` carries how many records were successfully decoded
    before the failure, when the raiser knows (stream readers do; the
    per-record codecs leave it ``None``).  Salvage tooling uses it to
    account what a truncated stream still yielded.
    """

    def __init__(self, message: str, records_read=None) -> None:
        super().__init__(message)
        self.records_read = records_read


class VmxError(SimulationError):
    """Invalid use of the virtual VMX facilities (VMCS misconfiguration)."""
