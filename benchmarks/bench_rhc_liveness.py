"""§V-C / Fig 2 — Remote Health Checker liveness detection.

The EM samples events to an external RHC; silence beyond the timeout
means the monitoring pipeline itself died.  This benchmark measures
the RHC's alarm latency after the Event Forwarder is killed, across
sampling rates, and verifies there are no false alarms on a healthy
pipeline.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.auditors.goshd import GuestOSHangDetector
from repro.harness import Testbed, TestbedConfig
from repro.sim.clock import SECOND
from repro.workloads.common import start_workload


def _run_scenario(sample_every: int, timeout_s: int = 3):
    testbed = Testbed(
        TestbedConfig(num_vcpus=2, seed=5, with_rhc=True,
                      rhc_timeout_s=timeout_s)
    )
    testbed.boot()
    testbed.multiplexer.rhc_sample_every = sample_every
    testbed.monitor([GuestOSHangDetector()])
    start_workload(testbed.kernel, "make-j2")

    testbed.run_s(5.0)
    false_alarm = testbed.rhc.alarmed
    heartbeats_while_healthy = testbed.rhc.heartbeats

    kill_time = testbed.engine.clock.now
    testbed.kvm.detach_forwarder()  # the monitoring pipeline dies
    while not testbed.rhc.alarmed and testbed.now_s < 60:
        testbed.run_ms(100)
    alarm_latency_s = (
        (testbed.rhc.alerts[0] - kill_time) / SECOND
        if testbed.rhc.alarmed
        else float("inf")
    )
    return {
        "false_alarm": false_alarm,
        "heartbeats": heartbeats_while_healthy,
        "alarm_latency_s": alarm_latency_s,
    }


def _run_all():
    return {
        sample_every: _run_scenario(sample_every)
        for sample_every in (16, 64, 256)
    }


def test_rhc_detects_monitoring_death(benchmark, report):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = [
        [
            f"1/{sample_every}",
            r["heartbeats"],
            "no" if not r["false_alarm"] else "YES",
            f"{r['alarm_latency_s']:.1f}s",
        ]
        for sample_every, r in results.items()
    ]
    report(
        format_table(
            ["EM sampling rate", "heartbeats (5s healthy)",
             "false alarm", "alarm latency after EF death"],
            rows,
            title="RHC liveness detection (monitoring timeout 3s)",
        )
    )

    for r in results.values():
        assert not r["false_alarm"]
        assert r["heartbeats"] > 0
        # Alarm within timeout + ~2 check periods of the pipeline dying.
        assert r["alarm_latency_s"] <= 6.0
