"""UnixBench-style micro-benchmarks (the Fig 7 workload set).

Each factory returns a guest program performing a fixed amount of work
and exiting; :func:`run_microbench` measures the simulated wall time of
that program under whatever monitoring configuration the testbed has.
The set mirrors the categories on Fig 7's y-axis: system-call overhead,
context switching (pipe-based ping-pong), CPU (Dhrystone/Whetstone
stand-ins), file copy at several buffer sizes, pipe throughput, process
creation, shell scripts, and execl.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.guest.kernel import GuestKernel
from repro.guest.programs import GuestContext
from repro.guest.task import TaskState
from repro.sim.clock import MILLISECOND, SECOND


# ----------------------------------------------------------------------
# Program factories
# ----------------------------------------------------------------------
def make_syscall_bench(iterations: int = 2000):
    """getpid in a tight loop (UnixBench "System Call Overhead")."""

    def _program(ctx: GuestContext):
        for _ in range(iterations):
            yield ctx.sys_getpid()
        yield ctx.exit(0)

    return _program


def make_ctx_switch_bench(iterations: int = 1000):
    """Voluntary-yield ping-pong; pair two of these on one vCPU."""

    def _program(ctx: GuestContext):
        for _ in range(iterations):
            yield ctx.sys_yield()
        yield ctx.exit(0)

    return _program


def make_cpu_bench(chunks: int = 400, chunk_ns: int = 1 * MILLISECOND):
    """Dhrystone-like: pure computation, almost no kernel entry."""

    def _program(ctx: GuestContext):
        for i in range(chunks):
            yield ctx.compute(chunk_ns)
            if i % 100 == 99:
                yield ctx.sys_write(1, 16)  # progress line
        yield ctx.exit(0)

    return _program


def make_disk_bench(iterations: int = 60):
    """Raw block IO back-to-back (the Disk IO intensive bucket)."""

    def _program(ctx: GuestContext):
        for i in range(iterations):
            if i % 2 == 0:
                yield ctx.sys_disk_read(1)
            else:
                yield ctx.sys_disk_write(1)
        yield ctx.exit(0)

    return _program


def make_file_copy_bench(buffer_bytes: int = 1024, iterations: int = 300):
    """UnixBench File Copy (bufsize X): read+write per buffer, with a
    block transfer every 4 buffers."""

    def _program(ctx: GuestContext):
        fd = yield ctx.sys_open("/tmp/src")
        for i in range(iterations):
            yield ctx.sys_read(fd, buffer_bytes)
            yield ctx.sys_write(fd, buffer_bytes)
            if i % 4 == 3:
                yield ctx.sys_disk_write(1)
        yield ctx.sys_close(fd)
        yield ctx.exit(0)

    return _program


def make_pipe_bench(iterations: int = 1500):
    """Pipe throughput: small write+read pairs, no blocking."""

    def _program(ctx: GuestContext):
        fd = yield ctx.sys_open("/tmp/pipe")
        for _ in range(iterations):
            yield ctx.sys_write(fd, 512)
            yield ctx.sys_read(fd, 512)
        yield ctx.sys_close(fd)
        yield ctx.exit(0)

    return _program


def _trivial_child(ctx: GuestContext):
    yield ctx.compute(50_000)
    yield ctx.exit(0)


def make_process_creation_bench(iterations: int = 120):
    """spawn + waitpid in a loop (UnixBench Process Creation)."""

    def _program(ctx: GuestContext):
        for _ in range(iterations):
            pid = yield ctx.sys_spawn(_trivial_child, "child", exe="/bin/true")
            yield ctx.sys_waitpid(pid)
        yield ctx.exit(0)

    return _program


def _shell_script(ctx: GuestContext):
    fd = yield ctx.sys_open("/tmp/out")
    for _ in range(6):
        yield ctx.compute(120_000)
        yield ctx.sys_write(fd, 128)
    yield ctx.sys_close(fd)
    yield ctx.exit(0)


def make_shell_bench(concurrent: int = 8, rounds: int = 12):
    """Shell Scripts (N concurrent): spawn N script children, wait."""

    def _program(ctx: GuestContext):
        for _ in range(rounds):
            pids = []
            for _i in range(concurrent):
                pid = yield ctx.sys_spawn(_shell_script, "sh", exe="/bin/sh")
                pids.append(pid)
            for pid in pids:
                yield ctx.sys_waitpid(pid)
        yield ctx.exit(0)

    return _program


def make_execl_bench(iterations: int = 100):
    """Execl throughput: replace-the-image loops == spawn+exit here."""

    def _program(ctx: GuestContext):
        for _ in range(iterations):
            pid = yield ctx.sys_spawn(_trivial_child, "execl", exe="/bin/execl")
            yield ctx.sys_waitpid(pid)
            yield ctx.compute(30_000)
        yield ctx.exit(0)

    return _program


#: name -> (factory, factory kwargs, Fig 7 category)
MICROBENCHES: Dict[str, Tuple[Callable, dict, str]] = {
    "syscall": (make_syscall_bench, {}, "System call"),
    "context-switch": (make_ctx_switch_bench, {}, "Context switching"),
    "pipe-throughput": (make_pipe_bench, {}, "Context switching"),
    "dhrystone": (make_cpu_bench, {}, "CPU intensive"),
    "whetstone": (make_cpu_bench, {"chunks": 300, "chunk_ns": 1_200_000},
                  "CPU intensive"),
    "file-copy-256": (make_file_copy_bench, {"buffer_bytes": 256}, "Disk IO"),
    "file-copy-1024": (make_file_copy_bench, {"buffer_bytes": 1024}, "Disk IO"),
    "file-copy-4096": (make_file_copy_bench, {"buffer_bytes": 4096}, "Disk IO"),
    "disk-io": (make_disk_bench, {}, "Disk IO"),
    "process-creation": (make_process_creation_bench, {}, "Process"),
    "shell-scripts-8": (make_shell_bench, {}, "Process"),
    "execl": (make_execl_bench, {}, "Process"),
}


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
def run_microbench(
    testbed,
    name: str,
    timeout_s: float = 120.0,
    overrides: Optional[dict] = None,
) -> int:
    """Run one micro-benchmark to completion; returns elapsed sim ns.

    For the context-switch bench a partner process is pinned to the
    same vCPU so every ``sched_yield`` is a real switch.
    """
    factory, kwargs, _category = MICROBENCHES[name]
    if overrides:
        kwargs = {**kwargs, **overrides}
    kernel: GuestKernel = testbed.kernel
    start_ns = testbed.engine.clock.now
    main_task = kernel.spawn_process(
        factory(**kwargs), f"ub-{name}"[:15], uid=1000,
        exe=f"/opt/unixbench/{name}", pin_cpu=0,
    )
    partner = None
    if name == "context-switch":
        partner = kernel.spawn_process(
            make_ctx_switch_bench(10**7), "ub-partner", uid=1000,
            exe="/opt/unixbench/partner", pin_cpu=0,
        )
    deadline = start_ns + int(timeout_s * SECOND)
    # Single-step the engine so the elapsed time is the exact exit
    # event timestamp, not a polling-granularity round-up.
    while (
        main_task.state is not TaskState.ZOMBIE
        and testbed.engine.clock.now < deadline
    ):
        if not testbed.engine.step():
            break
    elapsed = testbed.engine.clock.now - start_ns
    if partner is not None and partner.state is not TaskState.ZOMBIE:
        kernel.force_exit(partner)
    return elapsed
