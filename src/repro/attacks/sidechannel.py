"""/proc side channel: measuring Ninja's monitoring interval (Table III).

An unprivileged in-guest process polls ``/proc/<ninja_pid>/stat``.  The
state field flips S (sleeping between checks) -> R (scanning); the
durations of the S phases *are* Ninja's interval.  With the interval
and phase known, a transient attack can be timed to start right after
a check and finish before the next one.

This channel does not exist against H-Ninja (the scanner has no /proc
entry in the target VM) — the paper's Table III text makes the same
point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.guest.kernel import GuestKernel
from repro.guest.programs import GuestContext
from repro.guest.task import Task
from repro.sim.clock import MICROSECOND, SECOND


@dataclass
class IntervalEstimate:
    """Statistics over the measured sleep intervals (one Table III row)."""

    samples: List[float]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stdev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        var = sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1)
        return math.sqrt(var)


class ProcSideChannel:
    """In-guest observer of another process's scheduling state."""

    def __init__(
        self,
        kernel: GuestKernel,
        target_pid: int,
        poll_period_ns: int = 200 * MICROSECOND,
    ) -> None:
        self.kernel = kernel
        self.target_pid = target_pid
        self.poll_period_ns = poll_period_ns
        #: (time_ns, state_char) observations.
        self.observations: List[Tuple[int, str]] = []
        self.task: Optional[Task] = None

    # ------------------------------------------------------------------
    def launch(self, uid: int = 1000) -> Task:
        self.task = self.kernel.spawn_process(
            self._program, "sidechan", uid=uid, exe="/home/user/watch"
        )
        return self.task

    def _program(self, ctx: GuestContext):
        while True:
            stat = yield ctx.sys_proc_stat(self.target_pid)
            if stat is not None:
                self.observations.append(
                    (self.kernel.machine.clock.now, stat["state"])
                )
            yield ctx.sys_nanosleep(self.poll_period_ns)

    def stop(self) -> None:
        if self.task is not None:
            self.kernel.force_exit(self.task)
            self.task = None

    # ------------------------------------------------------------------
    def sleep_intervals_s(self) -> List[float]:
        """Durations of observed S-phases, in seconds.

        Each S-phase (between two scans) is bounded by the last R
        observation before it and the first R observation after it;
        we measure between S-phase starts and ends as the attacker
        would: transition timestamps at poll resolution.
        """
        intervals: List[float] = []
        phase_start: Optional[int] = None
        prev_state: Optional[str] = None
        for t, state in self.observations:
            if state == "S" and prev_state is not None and prev_state != "S":
                # Only count phases whose *start* we witnessed; a phase
                # already in progress at the first poll would be
                # truncated and bias the estimate low.
                phase_start = t
            elif state != "S" and prev_state == "S" and phase_start is not None:
                intervals.append((t - phase_start) / SECOND)
                phase_start = None
            prev_state = state
        return intervals

    def estimate(self, max_samples: int = 30) -> Optional[IntervalEstimate]:
        """Estimate over the observed sleep phases.

        If the scan (R phase) is shorter than the polling period, two
        sleep phases occasionally merge into one observation that is a
        multiple of the true interval; an attacker discards those
        obvious outliers, and so do we: samples beyond 1.5x the
        minimum are dropped.
        """
        intervals = self.sleep_intervals_s()
        if not intervals:
            return None
        floor = min(intervals)
        cleaned = [v for v in intervals if v <= 1.5 * floor]
        return IntervalEstimate(samples=cleaned[:max_samples])

    def predict_next_scan_ns(self) -> Optional[int]:
        """When will the next check run?  Last S-phase start + interval."""
        estimate = self.estimate()
        if estimate is None:
            return None
        last_sleep_start: Optional[int] = None
        prev_state: Optional[str] = None
        for t, state in self.observations:
            if state == "S" and prev_state != "S":
                last_sleep_start = t
            prev_state = state
        if last_sleep_start is None:
            return None
        return last_sleep_start + int(estimate.mean * SECOND)
