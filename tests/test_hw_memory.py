"""Tests for physical memory and page helpers."""

import pytest

from repro.errors import SimulationError
from repro.hw.memory import (
    PAGE_SIZE,
    PhysicalMemory,
    page_base,
    page_number,
    page_offset,
)


class TestPageHelpers:
    def test_page_number(self):
        assert page_number(0) == 0
        assert page_number(PAGE_SIZE) == 1
        assert page_number(PAGE_SIZE - 1) == 0

    def test_page_offset(self):
        assert page_offset(PAGE_SIZE + 7) == 7

    def test_page_base(self):
        assert page_base(PAGE_SIZE + 7) == PAGE_SIZE


class TestPhysicalMemory:
    def test_sparse_allocation(self):
        mem = PhysicalMemory(1024 * 1024)
        assert mem.resident_frames == 0
        mem.write_u64(0, 5)
        assert mem.resident_frames == 1

    def test_u64_roundtrip(self):
        mem = PhysicalMemory(1024 * 1024)
        mem.write_u64(128, 0xDEADBEEFCAFEBABE)
        assert mem.read_u64(128) == 0xDEADBEEFCAFEBABE

    def test_u64_little_endian(self):
        mem = PhysicalMemory(1024 * 1024)
        mem.write_u64(0, 0x0102030405060708)
        assert mem.read_bytes(0, 1) == b"\x08"

    def test_u32_roundtrip(self):
        mem = PhysicalMemory(1024 * 1024)
        mem.write_u32(4, 0x12345678)
        assert mem.read_u32(4) == 0x12345678

    def test_cross_page_write(self):
        mem = PhysicalMemory(1024 * 1024)
        addr = PAGE_SIZE - 4
        mem.write_u64(addr, 0xAABBCCDDEEFF0011)
        assert mem.read_u64(addr) == 0xAABBCCDDEEFF0011
        assert mem.resident_frames == 2

    def test_cstring_roundtrip(self):
        mem = PhysicalMemory(1024 * 1024)
        mem.write_cstring(64, "hello", 16)
        assert mem.read_cstring(64) == "hello"

    def test_cstring_truncation(self):
        mem = PhysicalMemory(1024 * 1024)
        mem.write_cstring(0, "a" * 100, 8)
        assert mem.read_cstring(0) == "a" * 7

    def test_out_of_range_frame(self):
        mem = PhysicalMemory(PAGE_SIZE * 4)
        with pytest.raises(SimulationError):
            mem.read_u64(PAGE_SIZE * 4)

    def test_bad_size_rejected(self):
        with pytest.raises(SimulationError):
            PhysicalMemory(100)
        with pytest.raises(SimulationError):
            PhysicalMemory(0)

    def test_fresh_memory_is_zero(self):
        mem = PhysicalMemory(1024 * 1024)
        assert mem.read_u64(512) == 0
