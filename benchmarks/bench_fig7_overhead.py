"""Fig 7 — performance overhead of the HyperTap sample monitors.

Paper's result (UnixBench on a 2-vCPU SUSE guest):

* Disk-IO-intensive workloads: < 5% with all three auditors,
* CPU-intensive: < 2%,
* context-switching micro: ~10% or less,
* system-call micro: ~19% (HT-Ninja's syscall logging dominates),
* combined overhead of all three auditors ~= the slowest individual
  auditor, far below the sum — the unified-logging payoff.

This benchmark reruns the UnixBench-like suite under each monitor
configuration and prints the Fig 7 grid of overhead percentages.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.auditors.goshd import GuestOSHangDetector
from repro.auditors.hrkd import HiddenRootkitDetector
from repro.auditors.ht_ninja import HTNinja
from repro.harness import Testbed, TestbedConfig
from repro.workloads.unixbench import MICROBENCHES, run_microbench

#: Fig 7's workload rows (name -> category shown on the figure).
WORKLOADS = [
    "file-copy-256",
    "file-copy-1024",
    "file-copy-4096",
    "disk-io",
    "dhrystone",
    "whetstone",
    "context-switch",
    "pipe-throughput",
    "syscall",
    "process-creation",
    "shell-scripts-8",
    "execl",
]

CONFIGS = [
    ("baseline", []),
    ("GOSHD", [GuestOSHangDetector]),
    ("HRKD", [HiddenRootkitDetector]),
    ("HT-Ninja", [HTNinja]),
    ("all three", [GuestOSHangDetector, HiddenRootkitDetector, HTNinja]),
]


def _measure(auditor_classes, name):
    testbed = Testbed(TestbedConfig(num_vcpus=2, seed=42))
    testbed.boot()
    if auditor_classes:
        testbed.monitor([cls() for cls in auditor_classes])
    return run_microbench(testbed, name)


def _run_grid():
    grid = {}
    for config_name, classes in CONFIGS:
        for workload in WORKLOADS:
            grid[(config_name, workload)] = _measure(classes, workload)
    return grid


def test_fig7_monitoring_overhead(benchmark, report):
    grid = benchmark.pedantic(_run_grid, rounds=1, iterations=1)

    def overhead(config, workload):
        base = grid[("baseline", workload)]
        return (grid[(config, workload)] - base) / base * 100

    rows = []
    for workload in WORKLOADS:
        category = MICROBENCHES[workload][2]
        rows.append(
            [
                workload,
                category,
                f"{grid[('baseline', workload)] / 1e6:9.2f}",
                f"{overhead('GOSHD', workload):6.1f}%",
                f"{overhead('HRKD', workload):6.1f}%",
                f"{overhead('HT-Ninja', workload):6.1f}%",
                f"{overhead('all three', workload):6.1f}%",
            ]
        )
    report(
        format_table(
            ["workload", "category", "baseline(ms)", "GOSHD", "HRKD",
             "HT-Ninja", "ALL"],
            rows,
            title="Fig 7 — measured performance overhead of HyperTap "
            "monitors",
        )
        + "\n\n(paper: disk <5%, CPU <2%, ctx ~10%, syscall ~19%; "
        "combined ~= slowest individual, not the sum)"
        "\n(small negative values are scheduling-phase noise, like the "
        "error bars in the paper's Fig 7)"
    )

    # --- Shape assertions -------------------------------------------------
    # CPU-intensive: under 2%.
    for workload in ("dhrystone", "whetstone"):
        assert overhead("all three", workload) < 2.0
    # Disk-IO-intensive: under 5%.
    for workload in ("file-copy-256", "file-copy-1024", "file-copy-4096",
                     "disk-io"):
        assert overhead("all three", workload) < 5.0
    # Syscall micro: the heaviest, in the 12-25% band, led by HT-Ninja.
    syscall_all = overhead("all three", "syscall")
    assert 10.0 < syscall_all < 25.0
    assert overhead("HT-Ninja", "syscall") > overhead("HRKD", "syscall")
    # Context-switch micro: noticeable but below the syscall micro.
    ctx_all = overhead("all three", "context-switch")
    assert 3.0 < ctx_all < 16.0
    assert ctx_all < syscall_all
    # Unified logging: combined ~= max(individual), well below the sum.
    for workload in ("syscall", "context-switch", "file-copy-1024"):
        individuals = [
            overhead(name, workload) for name in ("GOSHD", "HRKD", "HT-Ninja")
        ]
        combined = overhead("all three", workload)
        assert combined <= max(individuals) + 2.0, (
            f"{workload}: combined {combined:.1f}% should track the "
            f"slowest individual {max(individuals):.1f}%"
        )
        assert combined < sum(individuals) + 2.0
