"""The unified logging channel.

One channel per VM owns the interception algorithms and the auditor
subscription list.  It registers with the Event Multiplexer for the
union of exit reasons its interceptors need — so an exit is trapped,
forwarded and processed once no matter how many auditors consume the
derived events.  That sharing is the paper's core performance claim
(Fig 7: combined overhead ~= slowest individual, not the sum).
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.auditor import Auditor
from repro.core.events import EventType, GuestEvent
from repro.obs.metrics import STAGE_COUNTER_LABELS, MetricsRegistry
from repro.core.interception import (
    FastSyscallInterceptor,
    FineGrainedTracer,
    Int80SyscallInterceptor,
    Interceptor,
    IOInterceptor,
    ProcessSwitchInterceptor,
    RawExitInterceptor,
    ThreadSwitchInterceptor,
    TssIntegrityChecker,
)
from repro.hw.cpu import VCPU
from repro.hw.exits import VMExit
from repro.hw.machine import Machine
from repro.hypervisor.containers import AuditingContainer


class EventFanout:
    """Subscription registry + derived-event delivery.

    The fan-out half of the unified channel, factored out so any event
    producer — the live interception pipeline here, or a trace replay
    (``repro.replay.source``) — can deliver derived events to unmodified
    auditors through their containers.

    With a registry attached, every published event is counted under
    its stage counter (:data:`~repro.obs.metrics.STAGE_COUNTER_LABELS`,
    per ``(vm, type)``) and opens a flow span that the container and
    auditor hops append to — the same accounting live and replayed.
    """

    def __init__(
        self,
        vm_id: str = "vm0",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        #: (auditor, container) pairs subscribed to derived events.
        self._subscribers: List[Tuple[Auditor, AuditingContainer]] = []
        #: Event type -> interested (auditor, container) pairs, so the
        #: per-event hot path never scans uninterested subscribers.
        self._by_type: Dict[EventType, List[Tuple[Auditor, AuditingContainer]]]
        self._by_type = {event_type: [] for event_type in EventType}
        self.events_published: Counter = Counter()
        self.vm_id = vm_id
        self.metrics = metrics
        self._stage_cells: Dict[EventType, Any] = {}

    def subscribe(self, auditor: Auditor, container: AuditingContainer) -> None:
        self._subscribers.append((auditor, container))
        for event_type in auditor.subscriptions:
            self._by_type[event_type].append((auditor, container))

    @property
    def subscribers(self) -> List[Tuple[Auditor, AuditingContainer]]:
        return list(self._subscribers)

    def publish(
        self,
        event: GuestEvent,
        blocking_charge: Optional[Callable[[Auditor, GuestEvent], None]] = None,
    ) -> None:
        """Deliver ``event`` to every subscriber.

        ``blocking_charge`` is invoked before delivery to a blocking
        auditor that wants this event synchronously — the live channel
        uses it to charge the exiting vCPU the audit time; replay, which
        has no vCPU, passes nothing.
        """
        event_type = event.type
        self.events_published[event_type] += 1
        metrics = self.metrics
        if metrics is None:
            self._deliver(event_type, event, blocking_charge)
            return
        cell = self._stage_cells.get(event_type)
        if cell is None:
            cell = metrics.counter(
                STAGE_COUNTER_LABELS[event_type],
                vm=self.vm_id,
                type=event_type.value,
            )
            self._stage_cells[event_type] = cell
        cell.value += 1
        metrics.span_begin(event, vm=self.vm_id)
        try:
            self._deliver(event_type, event, blocking_charge)
        finally:
            # Close the span even when an auditor raises: a leaked span
            # would silently swallow the next publish's hops.
            metrics.span_end()

    def _deliver(
        self,
        event_type: EventType,
        event: GuestEvent,
        blocking_charge: Optional[Callable[[Auditor, GuestEvent], None]],
    ) -> None:
        for auditor, container in self._by_type[event_type]:
            if (
                blocking_charge is not None
                and auditor.blocking
                and auditor.wants_blocking(event)
            ):
                blocking_charge(auditor, event)
            container.deliver(auditor, event)


class UnifiedChannel:
    """Shared logging channel for one VM."""

    def __init__(
        self,
        machine: Machine,
        vm_id: str,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.machine = machine
        self.vm_id = vm_id
        self.interceptors: List[Interceptor] = []
        self.fanout = EventFanout(vm_id=vm_id, metrics=metrics)
        # Named handles for interceptors auditors may query directly.
        self.process_switches: Optional[ProcessSwitchInterceptor] = None
        self.thread_switches: Optional[ThreadSwitchInterceptor] = None
        self.tss_integrity: Optional[TssIntegrityChecker] = None
        self.fast_syscalls: Optional[FastSyscallInterceptor] = None
        self.int80_syscalls: Optional[Int80SyscallInterceptor] = None
        self.io: Optional[IOInterceptor] = None
        self.tracer: Optional[FineGrainedTracer] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build_for_event_types(self, needed: set) -> None:
        """Instantiate interceptors for the requested event types."""
        if EventType.PROCESS_SWITCH in needed or EventType.THREAD_SWITCH in needed:
            self.process_switches = ProcessSwitchInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.process_switches)
        if EventType.THREAD_SWITCH in needed:
            self.thread_switches = ThreadSwitchInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.thread_switches)
        if EventType.SYSCALL in needed:
            self.fast_syscalls = FastSyscallInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.int80_syscalls = Int80SyscallInterceptor(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.fast_syscalls)
            self.interceptors.append(self.int80_syscalls)
        if EventType.IO in needed:
            self.io = IOInterceptor(self.machine, self.vm_id, self.publish)
            self.interceptors.append(self.io)
        if EventType.MEM_ACCESS in needed:
            self.tracer = FineGrainedTracer(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.tracer)
        if EventType.TSS_INTEGRITY in needed:
            self.tss_integrity = TssIntegrityChecker(
                self.machine, self.vm_id, self.publish
            )
            self.interceptors.append(self.tss_integrity)
        if EventType.RAW_EXIT in needed:
            self.interceptors.append(
                RawExitInterceptor(self.machine, self.vm_id, self.publish)
            )

    def enable_all(self) -> None:
        for interceptor in self.interceptors:
            interceptor.enable()

    def disable_all(self) -> None:
        for interceptor in self.interceptors:
            interceptor.disable()

    @property
    def exit_reasons(self) -> frozenset:
        """Union of exit reasons the interceptor set needs."""
        union = frozenset()
        for interceptor in self.interceptors:
            union |= interceptor.reasons
        return union

    # ------------------------------------------------------------------
    # Subscription and delivery
    # ------------------------------------------------------------------
    def subscribe(self, auditor: Auditor, container: AuditingContainer) -> None:
        self.fanout.subscribe(auditor, container)

    @property
    def events_published(self) -> Counter:
        return self.fanout.events_published

    def on_exit(self, vcpu: VCPU, exit_event: VMExit) -> None:
        """EM consumer entry point: raw exit -> interception -> events."""
        self._current_vcpu = vcpu
        for interceptor in self.interceptors:
            if exit_event.reason in interceptor.reasons:
                interceptor.on_exit(vcpu, exit_event)

    def _charge_blocking(self, auditor: Auditor, event: GuestEvent) -> None:
        vcpu = getattr(self, "_current_vcpu", None)
        if vcpu is not None:
            vcpu.charge(self.machine.costs.blocking_audit_ns)

    def publish(self, event: GuestEvent) -> None:
        """Deliver a derived event to every subscribed auditor."""
        self.fanout.publish(event, blocking_charge=self._charge_blocking)
