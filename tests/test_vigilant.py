"""Tests for the Vigilant-style learned failure detector (§VII-D)."""

from repro.auditors.vigilant import (
    Envelope,
    FEATURE_NAMES,
    FeatureWindow,
    VigilantDetector,
)
from repro.guest.programs import KCompute, LockAcquire
from repro.workloads.common import start_workload


def attach_vigilant(testbed, **kwargs):
    detector = VigilantDetector(
        window_ns=500_000_000, training_windows=6, **kwargs
    )
    testbed.monitor([detector])
    return detector


class TestFeatureModel:
    def test_feature_vector_shape(self):
        window = FeatureWindow(
            thread_switches=10,
            syscalls=5,
            io_events=2,
            per_vcpu_switches={0: 6, 1: 4},
        )
        vector = window.vector(num_vcpus=2)
        assert len(vector) == len(FEATURE_NAMES)
        assert vector[0] == 10.0
        assert vector[3] == 4.0  # min per-vCPU switches

    def test_missing_vcpu_counts_as_zero(self):
        window = FeatureWindow(per_vcpu_switches={0: 6})
        assert window.vector(num_vcpus=2)[3] == 0.0

    def test_envelope_violations(self):
        envelope = Envelope(lows=[0, 0, 0, 1], highs=[10, 10, 10, 10])
        assert envelope.violations([5, 5, 5, 5]) == []
        bad = envelope.violations([20, 5, 5, 0])
        assert len(bad) == 2
        assert any("switch_rate" in v for v in bad)
        assert any("min_vcpu_switches" in v for v in bad)


class TestVigilantDetection:
    def test_trains_on_healthy_run(self, testbed):
        detector = attach_vigilant(testbed)
        start_workload(testbed.kernel, "make-j2")
        testbed.run_s(5.0)
        assert detector.trained
        assert detector.anomalies == []

    def test_no_false_alarms_on_steady_load(self, testbed):
        detector = attach_vigilant(testbed)
        start_workload(testbed.kernel, "http")
        testbed.run_s(12.0)
        assert detector.trained
        assert detector.anomalies == []

    def test_detects_hang_as_anomaly(self, testbed):
        """A vCPU hang zeroes the min-per-vCPU-switch feature."""
        detector = attach_vigilant(testbed)
        start_workload(testbed.kernel, "make-j2")
        testbed.run_s(5.0)
        assert detector.trained
        testbed.kernel.locks.get("test_driver_lock").leak()

        def spinner(kernel, task):
            yield LockAcquire("test_driver_lock")
            yield KCompute(1)

        testbed.kernel.spawn_kthread(spinner, "wedge", cpu=0)
        testbed.run_s(5.0)
        assert detector.anomalies
        violations = detector.anomalies[0]["violations"]
        assert any("min_vcpu_switches" in v for v in violations)

    def test_detects_syscall_storm(self, testbed):
        detector = attach_vigilant(testbed)
        testbed.run_s(4.0)  # train on a quiet guest
        assert detector.trained

        def storm(ctx):
            while True:
                yield ctx.sys_getpid()

        testbed.kernel.spawn_process(storm, "storm", uid=1000)
        testbed.run_s(3.0)
        assert detector.anomalies
        assert any(
            "syscall_rate" in v
            for a in detector.anomalies
            for v in a["violations"]
        )

    def test_alarm_needs_consecutive_windows(self, testbed):
        detector = attach_vigilant(testbed, alarm_after=4)
        testbed.run_s(4.0)
        assert detector.trained
        # One anomalous window (a brief burst) must not alarm.
        def brief_burst(ctx):
            for _ in range(400):
                yield ctx.sys_getpid()
            yield ctx.exit(0)

        testbed.kernel.spawn_process(brief_burst, "burst", uid=1000)
        testbed.run_s(0.6)
        testbed.run_s(3.0)
        assert detector.anomalies == []

    def test_detach_stops_windows(self, testbed):
        detector = attach_vigilant(testbed)
        testbed.run_s(2.0)
        seen = detector.windows_seen
        testbed.hypertap.detach()
        testbed.run_s(2.0)
        assert detector.windows_seen == seen
