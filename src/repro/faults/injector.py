"""The fault injector: arms one site and applies its effect.

The injector installs itself as the guest kernel's ``fault_hook``; when
execution reaches the armed site's function for the configured pass,
the fault "patch" takes effect:

* **missing release** — the lock is left locked by a buggy exit path
  (modelled by poisoning the lock: no live holder, never released);
  every later acquirer spins forever with preemption disabled.
* **wrong ordering** — the faulty path acquires the function's nested
  lock pair in reverse order while normal paths use the correct order;
  under concurrency this deadlocks two vCPUs (ABBA).
* **missing unlock/lock pair** — the pair bracketing a blocking region
  is gone: the task sleeps *holding* the spinlock, wedging contenders.
* **missing IRQ restore** — ``spin_unlock_irqrestore`` became
  ``spin_unlock``: local interrupts stay off on that vCPU, so timer
  ticks (and with them preemption) stop.

In interrupt context (``net_rx_action``) the missing-pair fault drops
the queued work instead (a lost wakeup): the network path dies while
the scheduler stays healthy — the case that fools external probes but
not (correctly) GOSHD, reproducing the paper's "Not Detected" bucket.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.faults.sites import FaultClass, FaultSite
from repro.guest.kernel import GuestKernel
from repro.guest.programs import (
    BlockOn,
    FaultEffect,
    KCompute,
    LockAcquire,
    LockRelease,
)
from repro.guest.task import Task


class InjectionMode(enum.Enum):
    """Transient faults activate once; persistent ones on every pass."""

    TRANSIENT = "transient"
    PERSISTENT = "persistent"


class FaultInjector:
    """One armed fault against one guest kernel."""

    def __init__(
        self, site: FaultSite, mode: InjectionMode = InjectionMode.TRANSIENT
    ) -> None:
        self.site = site
        self.mode = mode
        self.kernel: Optional[GuestKernel] = None
        self.armed = False
        self.hits = 0
        self.activations = 0
        self.first_activation_ns: Optional[int] = None

    # ------------------------------------------------------------------
    def attach(self, kernel: GuestKernel) -> None:
        """Install as the kernel's fault hook (SWIFI module load)."""
        self.kernel = kernel
        kernel.fault_hook = self._hook

    def arm(self) -> None:
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    @property
    def activated(self) -> bool:
        return self.activations > 0

    # ------------------------------------------------------------------
    def _hook(
        self, task: Task, vcpu_index: int, function: str, module: str
    ) -> Optional[FaultEffect]:
        if not self.armed or function != self.site.function:
            return None
        self.hits += 1
        if self.hits < self.site.activation_pass:
            return None
        if (
            self.mode is InjectionMode.TRANSIENT
            and self.activations >= 1
        ):
            return None
        self.activations += 1
        if self.first_activation_ns is None and self.kernel is not None:
            self.first_activation_ns = self.kernel.machine.clock.now
        return self._effect()

    def _effect(self) -> FaultEffect:
        site = self.site
        if site.irq_context:
            if site.fault_class is FaultClass.MISSING_IRQ_RESTORE:
                return FaultEffect(disable_irqs=True)
            return FaultEffect(drop_work=True)
        if site.fault_class is FaultClass.MISSING_RELEASE:
            return FaultEffect(leak_lock=site.lock)
        if site.fault_class is FaultClass.WRONG_ORDER:
            second = site.lock2 or "runqueue_lock"
            # Reversed nesting vs the normal (lock, lock2) order.
            return FaultEffect(
                splice_ops=(
                    LockAcquire(second),
                    KCompute(150_000),
                    LockAcquire(site.lock),
                    KCompute(10_000),
                    LockRelease(site.lock),
                    LockRelease(second),
                )
            )
        if site.fault_class is FaultClass.MISSING_PAIR:
            return FaultEffect(
                splice_ops=(
                    LockAcquire(site.lock),
                    BlockOn("fault:never"),
                )
            )
        # MISSING_IRQ_RESTORE in task context.
        return FaultEffect(disable_irqs=True)
