"""Guest program model.

A guest program is a Python generator that yields *operations* — the
primitive things a user process can do: burn CPU, invoke a system call,
or exit.  The kernel's executor drives the generator; the value sent
back into the generator after a ``Syscall`` op is that syscall's return
value, so programs read naturally::

    def my_program(ctx):
        pid = yield ctx.sys_getpid()
        yield ctx.compute(ns=200_000)
        yield ctx.sys_write(1, 64)

System-call bodies run *in the kernel* (see ``repro.guest.syscalls``),
where fault-injection sites and spinlocks live; the program only sees
the architectural boundary (the trap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Tuple


# ----------------------------------------------------------------------
# User-level operations
# ----------------------------------------------------------------------
class Op:
    """Base class of everything a program can yield."""


@dataclass
class Compute(Op):
    """Burn CPU in user mode for ``ns`` nanoseconds."""

    ns: int


@dataclass
class Syscall(Op):
    """Invoke a system call by name with positional arguments."""

    name: str
    args: Tuple[Any, ...] = ()


@dataclass
class ExitProgram(Op):
    """Terminate the process with an exit code."""

    code: int = 0


@dataclass
class KMemWrite(Op):
    """Write a u64 into kernel memory (/dev/kmem-style, root only).

    The write is performed by the guest CPU, so EPT protections apply
    — this is the op fine-grained integrity watching can trap."""

    gva: int
    value: int


@dataclass
class KMemRead(Op):
    """Read a u64 from kernel memory; the result is sent back into the
    program generator."""

    gva: int


#: Type alias for program generator functions.
ProgramFn = Callable[["GuestContext"], Generator[Op, Any, None]]


class GuestContext:
    """Helper handed to every guest program.

    It only *constructs* operations; all effects happen when the kernel
    executor receives the yielded op.  A handful of convenience wrappers
    cover the syscalls the workloads and attacks use.
    """

    def __init__(self, argv: Tuple[Any, ...] = ()) -> None:
        self.argv = argv

    # -- CPU ------------------------------------------------------------
    def compute(self, ns: int) -> Compute:
        return Compute(ns=int(ns))

    # -- generic syscall -------------------------------------------------
    def syscall(self, name: str, *args: Any) -> Syscall:
        return Syscall(name=name, args=args)

    # -- specific syscalls -----------------------------------------------
    def sys_getpid(self) -> Syscall:
        return Syscall("getpid")

    def sys_write(self, fd: int, nbytes: int) -> Syscall:
        return Syscall("write", (fd, nbytes))

    def sys_read(self, fd: int, nbytes: int) -> Syscall:
        return Syscall("read", (fd, nbytes))

    def sys_open(self, path: str) -> Syscall:
        return Syscall("open", (path,))

    def sys_close(self, fd: int) -> Syscall:
        return Syscall("close", (fd,))

    def sys_lseek(self, fd: int, offset: int) -> Syscall:
        return Syscall("lseek", (fd, offset))

    def sys_disk_read(self, blocks: int = 1) -> Syscall:
        return Syscall("disk_read", (blocks,))

    def sys_disk_write(self, blocks: int = 1) -> Syscall:
        return Syscall("disk_write", (blocks,))

    def sys_nanosleep(self, ns: int) -> Syscall:
        return Syscall("nanosleep", (int(ns),))

    def sys_yield(self) -> Syscall:
        return Syscall("sched_yield")

    def sys_spawn(self, program: ProgramFn, name: str, **kwargs: Any) -> Syscall:
        """fork+exec of a new process running ``program``."""
        return Syscall("spawn", (program, name, kwargs))

    def sys_waitpid(self, pid: int) -> Syscall:
        return Syscall("waitpid", (pid,))

    def sys_kill(self, pid: int) -> Syscall:
        return Syscall("kill", (pid,))

    def sys_setuid(self, uid: int) -> Syscall:
        return Syscall("setuid", (uid,))

    def sys_geteuid(self) -> Syscall:
        return Syscall("geteuid")

    def sys_getuid(self) -> Syscall:
        return Syscall("getuid")

    def sys_proc_list(self) -> Syscall:
        """Read the pid list from /proc (task-list walk in the guest)."""
        return Syscall("proc_list")

    def sys_proc_status(self, pid: int) -> Syscall:
        """Read /proc/<pid>/status -> dict or None."""
        return Syscall("proc_status", (pid,))

    def sys_proc_stat(self, pid: int) -> Syscall:
        """Read /proc/<pid>/stat -> dict or None (side-channel input)."""
        return Syscall("proc_stat", (pid,))

    def sys_socket_send(self, nbytes: int) -> Syscall:
        return Syscall("socket_send", (nbytes,))

    def sys_socket_recv(self) -> Syscall:
        """Block until a packet arrives; returns its size."""
        return Syscall("socket_recv")

    def sys_uname(self) -> Syscall:
        return Syscall("uname")

    def sys_gettimeofday(self) -> Syscall:
        return Syscall("gettimeofday")

    def exit(self, code: int = 0) -> ExitProgram:
        return ExitProgram(code=code)

    def kmem_write(self, gva: int, value: int) -> KMemWrite:
        return KMemWrite(gva=gva, value=value)

    def kmem_read(self, gva: int) -> KMemRead:
        return KMemRead(gva=gva)


# ----------------------------------------------------------------------
# Kernel-level operations (yielded by syscall handler generators)
# ----------------------------------------------------------------------
class KernelOp:
    """Base class of operations kernel code can yield."""


@dataclass
class KCompute(KernelOp):
    """Kernel-mode CPU work."""

    ns: int


@dataclass
class LockAcquire(KernelOp):
    """spin_lock(); disables preemption while held."""

    lock_name: str
    #: spin_lock_irqsave variant: also disables local interrupts.
    irqsave: bool = False


@dataclass
class LockRelease(KernelOp):
    """spin_unlock(); re-enables preemption (and IRQs for irqrestore)."""

    lock_name: str
    irqrestore: bool = False


@dataclass
class DiskRequest(KernelOp):
    """Submit a block-IO request and sleep until its completion IRQ."""

    kind: str  # "read" | "write"
    blocks: int = 1


@dataclass
class BlockOn(KernelOp):
    """Sleep on a wait channel until woken (optionally with timeout)."""

    channel: str
    timeout_ns: int = 0  # 0 = no timeout


@dataclass
class PortIo(KernelOp):
    """Perform a port IO access (driver code)."""

    port: int
    direction: str
    value: int = 0


@dataclass
class FaultPoint(KernelOp):
    """A named location in kernel code where faults can be injected.

    With no injector armed this is free (zero cost, no effect): it is
    the analogue of an instruction address the SWIFI tool may patch.
    """

    function: str
    module: str


@dataclass
class FaultEffect:
    """What an armed fault does when its site is reached.

    Returned by the kernel's fault hook (see ``repro.faults``); the
    executor applies it at the fault point:

    * ``leak_lock`` — the named lock becomes permanently held, as if a
      buggy exit path returned without unlocking (missing release).
    * ``splice_ops`` — kernel ops executed at the site (used for the
      wrong-ordering and missing-pair classes).
    * ``disable_irqs`` — local interrupts stay off (missing
      ``spin_unlock_irqrestore``).
    * ``drop_work`` — interrupt-context work is silently dropped
      (corrupted softirq state); used by sites inside IRQ handlers.
    """

    leak_lock: str = ""
    splice_ops: Tuple[KernelOp, ...] = ()
    disable_irqs: bool = False
    drop_work: bool = False
