"""Tests for event-model details and exit snapshots."""

import dataclasses

import pytest

from repro.core.events import (
    EventType,
    REQUIRED_EXIT_REASONS,
    SyscallEvent,
)
from repro.hw.exits import ExitReason, GuestStateSnapshot


class TestSnapshots:
    def test_snapshot_immutable(self):
        snapshot = GuestStateSnapshot(
            cr3=1, tr_base=2, rsp=3, rip=4, rax=5, rbx=6, rcx=7, rdx=8,
            rsi=9, rdi=10, cpl=3,
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            snapshot.cr3 = 99

    def test_gpr_accessor(self):
        snapshot = GuestStateSnapshot(
            cr3=1, tr_base=2, rsp=3, rip=4, rax=5, rbx=6, rcx=7, rdx=8,
            rsi=9, rdi=10, cpl=3,
        )
        assert snapshot.gpr("rax") == 5
        assert snapshot.gpr("rdi") == 10

    def test_snapshot_is_a_copy(self, testbed):
        """Guest register changes after the exit must not retro-edit
        saved state (the hardware-save property monitors rely on)."""
        vcpu = testbed.machine.vcpus[0]
        vcpu.regs.write_gpr("rax", 111)
        snapshot = vcpu.regs.snapshot()
        vcpu.regs.write_gpr("rax", 222)
        assert snapshot.rax == 111


class TestEventModel:
    def test_every_event_type_has_exit_requirements(self):
        for event_type in EventType:
            assert event_type in REQUIRED_EXIT_REASONS
            assert REQUIRED_EXIT_REASONS[event_type]

    def test_syscall_requirements_cover_both_mechanisms(self):
        reasons = REQUIRED_EXIT_REASONS[EventType.SYSCALL]
        assert ExitReason.EXCEPTION in reasons  # int80
        assert ExitReason.WRMSR in reasons  # sysenter setup
        assert ExitReason.EPT_VIOLATION in reasons  # sysenter entry

    def test_event_type_property(self):
        event = SyscallEvent(
            time_ns=0, vcpu_index=0, vm_id="vm0", hw_state=None, number=1
        )
        assert event.type is EventType.SYSCALL


class TestExitRecords:
    def test_qualification_accessor(self, testbed):
        testbed.run_s(0.1)
        vcpu = testbed.machine.vcpus[0]
        exit_event = vcpu.vmcs.last_exit
        assert exit_event is not None
        assert exit_event.qual("not-there", "default") == "default"

    def test_exit_sequence_numbers_monotonic(self, testbed):
        testbed.run_s(0.5)
        ring_before = testbed.machine._exit_sequence
        testbed.run_s(0.5)
        assert testbed.machine._exit_sequence > ring_before

    def test_exit_counts_by_reason(self, testbed):
        testbed.run_s(1.0)
        counts = testbed.kvm.exit_counts
        assert counts[ExitReason.EXTERNAL_INTERRUPT] > 0
        assert counts[ExitReason.IO_INSTRUCTION] >= 0
