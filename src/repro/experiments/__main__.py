"""CLI entry point: ``python -m repro.experiments <name>``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runners import EXPERIMENTS, run_experiment


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Rerun the HyperTap paper's tables and figures.",
    )
    parser.add_argument(
        "name",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="multiply trial counts (default 1.0 = quick subset)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale grids (hours for fig4/ninjas)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override each experiment's built-in RNG seed",
    )
    args = parser.parse_args(argv)

    if args.name == "list":
        for name, (_runner, description) in EXPERIMENTS.items():
            print(f"{name:10s} {description}")
        return 0
    names = (
        [n for n in EXPERIMENTS if n != "fig5"]
        if args.name == "all"
        else [args.name]
    )
    for name in names:
        print(f"\n===== {name} =====")
        try:
            print(run_experiment(
                name, scale=args.scale, full=args.full, seed=args.seed
            ))
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
