"""Tests for the statistics and formatting helpers."""

import pytest

from repro.analysis.figures import ascii_bar_chart, ascii_cdf
from repro.analysis.stats import (
    cdf,
    fraction_at_or_below,
    mean,
    percentile,
    stdev,
)
from repro.analysis.tables import format_table


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_sample(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)

    def test_stdev_small_samples(self):
        assert stdev([5]) == 0.0
        assert stdev([]) == 0.0

    def test_percentile_interpolation(self):
        values = [1, 2, 3, 4]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 4
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_cdf_monotone(self):
        points = cdf([3, 1, 2])
        assert points == [(1, 1 / 3), (2, 2 / 3), (3, 1.0)]

    def test_fraction_at_or_below(self):
        values = [1, 2, 3, 4]
        assert fraction_at_or_below(values, 2) == 0.5
        assert fraction_at_or_below(values, 0) == 0.0
        assert fraction_at_or_below([], 10) == 0.0


class TestFormatting:
    def test_table_alignment(self):
        out = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:] if "-" not in line)

    def test_bar_chart(self):
        out = ascii_bar_chart(["a", "b"], [1.0, 2.0], unit="%")
        assert "a" in out and "b" in out
        assert out.count("#") > 0

    def test_bar_chart_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        assert "(no data)" in ascii_bar_chart([], [], title="x")

    def test_cdf_table(self):
        out = ascii_cdf(
            [("first", [1.0, 2.0, 3.0]), ("second", [2.0, 4.0])],
            points=[2.0, 4.0],
        )
        assert "first" in out and "second" in out
        assert "66.7%" in out  # 2 of 3 first-series values <= 2.0
