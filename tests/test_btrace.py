"""The binary trace codec (repro.replay.btrace).

The contracts under test are the ones the replay stack leans its whole
weight on:

* **lossless conversion** — JSONL -> btrace -> JSONL reproduces the
  original gzip payload byte for byte (header line carried verbatim,
  canonical record encoding preserved);
* **decode equivalence** — the zero-copy lazy views decode to exactly
  what the eager JSONL codec produces, record by record;
* **random access** — the mmap-backed index agrees with sequential
  iteration at *every* record offset, so shard slicing can never skew
  a campaign;
* **failure honesty** — truncated or corrupt containers raise
  :class:`TraceFormatError` with ``records_read`` context instead of
  returning silently short streams;
* **fan-out neutrality** — sharded btrace consumption composes to the
  sequential answer at any job count, and replay verdicts are
  identical whichever container format fed them.
"""

from __future__ import annotations

import gzip
import io
import json
import os

import pytest

from repro.errors import TraceFormatError
from repro.replay.btrace import (
    BTRACE_LAYOUTS,
    MAGIC,
    TYPE_CODES,
    BinaryTraceReader,
    BinaryTraceWriter,
    convert_trace,
    count_shard,
    is_btrace_bytes,
    is_btrace_path,
    load_any_trace,
    load_btrace,
    save_btrace,
    shard_ranges,
)
from repro.replay.recorder import SCENARIOS, record_scenario
from repro.replay.source import ReplaySource
from repro.replay.trace_io import load_trace, save_trace

_encode = json.JSONEncoder(sort_keys=True).encode


@pytest.fixture(scope="module")
def exploit_run():
    return record_scenario("exploit", seed=0)


@pytest.fixture(scope="module")
def rootkit_run():
    return record_scenario("rootkit", seed=0)


def _gzip_payload(path):
    with gzip.open(path, "rb") as fh:
        return fh.read()


class TestConversion:
    def test_jsonl_btrace_jsonl_is_byte_lossless(self, tmp_path, exploit_run):
        src = str(tmp_path / "src.jsonl.gz")
        save_trace(src, exploit_run.trace)
        btr = str(tmp_path / "mid.btr")
        back = str(tmp_path / "back.jsonl.gz")
        convert_trace(src, btr)
        convert_trace(btr, back)
        assert _gzip_payload(src) == _gzip_payload(back)

    def test_conversion_reports_format_and_counts(self, tmp_path, exploit_run):
        src = str(tmp_path / "src.jsonl.gz")
        save_trace(src, exploit_run.trace)
        summary = convert_trace(src, str(tmp_path / "out.btr"))
        assert summary["format"] == "btrace"
        assert summary["records"] == len(load_trace(src).records)

    def test_load_any_trace_is_format_blind(self, tmp_path, exploit_run):
        jsonl = str(tmp_path / "t.jsonl.gz")
        btr = str(tmp_path / "t.btr")
        save_trace(jsonl, exploit_run.trace)
        save_btrace(btr, exploit_run.trace)
        a = load_any_trace(jsonl)
        b = load_any_trace(btr)
        assert a.header.to_record() == b.header.to_record()
        assert a.records == b.records

    def test_sniffing_ignores_extension(self, tmp_path, exploit_run):
        # A btrace container under a misleading name still sniffs right.
        path = str(tmp_path / "lying.jsonl.gz")
        save_btrace(path, exploit_run.trace)
        assert is_btrace_path(path)
        assert load_any_trace(path).records == exploit_run.trace.records

    def test_is_btrace_bytes(self, tmp_path, exploit_run):
        path = str(tmp_path / "t.btr")
        save_btrace(path, exploit_run.trace)
        with open(path, "rb") as fh:
            head = fh.read(len(MAGIC))
        assert is_btrace_bytes(head)
        assert not is_btrace_bytes(b"\x1f\x8b\x08\x00")
        assert not is_btrace_bytes(b"")


class TestDecodeEquivalence:
    def test_views_match_eager_records(self, tmp_path, rootkit_run):
        from repro.core.events import GuestEvent

        path = str(tmp_path / "t.btr")
        save_btrace(path, rootkit_run.trace)
        reader = BinaryTraceReader(path)
        try:
            for raw, decoded in zip(rootkit_run.trace.records, reader):
                assert decoded == raw
            reader2 = BinaryTraceReader(path)
            try:
                for raw, (event, _task, _parent) in zip(
                    rootkit_run.trace.records, reader2.iter_decoded()
                ):
                    if event is None:
                        continue
                    eager = GuestEvent.from_record(raw)
                    assert type(event).__mro__[1] is type(eager) or isinstance(
                        event, type(eager)
                    )
                    assert event.to_record() == eager.to_record()
            finally:
                reader2.close()
        finally:
            reader.close()

    def test_events_iterator_counts_every_event(self, tmp_path, rootkit_run):
        path = str(tmp_path / "t.btr")
        save_btrace(path, rootkit_run.trace)
        reader = BinaryTraceReader(path)
        try:
            n = sum(1 for _ in reader.events())
        finally:
            reader.close()
        expected = sum(
            1
            for r in rootkit_run.trace.records
            if r.get("kind", "event") == "event"
        )
        assert n == expected

    def test_in_memory_data_reader(self, exploit_run):
        buf = io.BytesIO()
        writer = BinaryTraceWriter(None, exploit_run.trace.header, _fh=buf)
        for record in exploit_run.trace.records:
            writer.write_record(record)
        writer.close()
        trace = load_btrace(data=buf.getvalue())
        assert trace.records == exploit_run.trace.records


class TestRandomAccess:
    def test_seek_agrees_with_sequential_at_every_offset(
        self, tmp_path, exploit_run
    ):
        path = str(tmp_path / "t.btr")
        save_btrace(path, exploit_run.trace)
        reader = BinaryTraceReader(path)
        try:
            sequential = list(reader)
            assert len(sequential) == reader.record_count
            for start in range(reader.record_count):
                tail = list(reader.iter_range(start))
                assert tail == sequential[start:], f"seek to {start} diverged"
                assert reader.record_at(start) == sequential[start]
        finally:
            reader.close()

    def test_index_is_monotone_and_complete(self, tmp_path, exploit_run):
        path = str(tmp_path / "t.btr")
        save_btrace(path, exploit_run.trace)
        reader = BinaryTraceReader(path)
        try:
            index = reader.index
            assert len(index) == reader.record_count
            assert index == sorted(index)
            assert len(set(index)) == len(index)
        finally:
            reader.close()

    def test_out_of_range_seek_raises(self, tmp_path, exploit_run):
        path = str(tmp_path / "t.btr")
        save_btrace(path, exploit_run.trace)
        reader = BinaryTraceReader(path)
        try:
            with pytest.raises(TraceFormatError, match="out of range"):
                list(reader.iter_range(reader.record_count + 1))
        finally:
            reader.close()


class TestCorruption:
    def _btrace_bytes(self, run):
        buf = io.BytesIO()
        writer = BinaryTraceWriter(None, run.trace.header, _fh=buf)
        for record in run.trace.records:
            writer.write_record(record)
        writer.close()
        return bytearray(buf.getvalue())

    def test_truncated_container_raises_at_open(self, exploit_run):
        data = self._btrace_bytes(exploit_run)
        for cut in (len(data) // 2, len(data) - 7, 12, 3):
            with pytest.raises(TraceFormatError, match="trailer|short|magic"):
                BinaryTraceReader(data=bytes(data[:cut]))

    def test_wrong_magic_raises(self, exploit_run):
        data = self._btrace_bytes(exploit_run)
        data[:4] = b"NOPE"
        with pytest.raises(TraceFormatError, match="magic"):
            BinaryTraceReader(data=bytes(data))

    def test_mid_body_corruption_reports_records_read(self, exploit_run):
        data = self._btrace_bytes(exploit_run)
        reader = BinaryTraceReader(data=bytes(data))
        # Clobber the tag byte of a record deep in the body with an
        # undefined type code so decode fails mid-stream.
        target = reader.record_count // 2
        offset = reader.index[target]
        reader.close()
        data[offset] = 0xFF
        broken = BinaryTraceReader(data=bytes(data))
        try:
            with pytest.raises(TraceFormatError) as err:
                for _ in broken.events():
                    pass
            message = str(err.value)
            assert "record" in message
            assert str(target) in message or "after" in message
        finally:
            broken.close()

    def test_records_read_attribute_tracks_progress(self, exploit_run):
        data = self._btrace_bytes(exploit_run)
        reader = BinaryTraceReader(data=bytes(data))
        try:
            for i, _ in enumerate(reader.events()):
                if i >= 9:
                    break
        finally:
            reader.close()
        assert reader.records_read == 10


class TestSharding:
    def test_shard_ranges_partition_exactly(self):
        for count in (0, 1, 7, 100, 101):
            for shards in (1, 2, 8):
                ranges = shard_ranges(count, shards)
                covered = []
                for lo, hi in ranges:
                    assert 0 <= lo <= hi
                    covered.extend(range(lo, hi))
                assert covered == list(range(count))

    def test_sharded_counts_compose_to_header(self, tmp_path, rootkit_run):
        from repro.parallel import parallel_map

        path = str(tmp_path / "t.btr")
        save_btrace(path, rootkit_run.trace)
        reader = BinaryTraceReader(path)
        expected = dict(reader.header.event_counts)
        record_count = reader.record_count
        reader.close()

        for jobs in (1, 2, 8):
            tasks = [
                (path, lo, hi)
                for lo, hi in shard_ranges(record_count, max(jobs, 2) * 2)
            ]
            merged = {}
            for counts in parallel_map(count_shard, tasks, jobs=jobs):
                for key, n in counts.items():
                    merged[key] = merged.get(key, 0) + n
            assert merged == expected, f"jobs={jobs}"


class TestReplayEquivalence:
    def test_verdicts_identical_across_formats(self, tmp_path, rootkit_run):
        jsonl = str(tmp_path / "t.jsonl.gz")
        btr = str(tmp_path / "t.btr")
        save_trace(jsonl, rootkit_run.trace)
        save_btrace(btr, rootkit_run.trace)
        reports = []
        for path in (jsonl, btr):
            trace = load_any_trace(path)
            report = ReplaySource(
                trace, SCENARIOS["rootkit"].build_auditors()
            ).run()
            reports.append(report)
        a, b = reports
        assert a.verdicts == b.verdicts
        assert a.matches_live(rootkit_run.live_verdicts)
        assert b.matches_live(rootkit_run.live_verdicts)
        assert a.events_replayed == b.events_replayed
        # Deterministic exports must match byte for byte too.
        assert _encode(a.alerts) == _encode(b.alerts)


class TestLayoutRegistry:
    def test_layouts_cover_every_event_type(self):
        from repro.core.events import EventType

        values = {t.value for t in EventType}
        assert set(BTRACE_LAYOUTS) == values
        assert set(TYPE_CODES) == values

    def test_type_codes_are_unique_and_nonzero(self):
        codes = list(TYPE_CODES.values())
        assert len(set(codes)) == len(codes)
        assert 0 not in codes  # 0 is the JSON-escape tag

    def test_writer_escapes_non_canonical_records(self, exploit_run):
        header = exploit_run.trace.header
        buf = io.BytesIO()
        writer = BinaryTraceWriter(None, header, _fh=buf)
        weird = {
            "kind": "event",
            "type": "syscall",
            "t": 1,
            "vcpu": 0,
            "vm": header.vm_id,
            "hw": None,
            "nr": 1,
            "args": [],
            "mechanism": "sysenter",
            "surprise": "extra-key",
        }
        writer.write_record(weird)
        writer.close()
        assert writer.escapes == 1
        trace = load_btrace(data=buf.getvalue())
        assert trace.records == [weird]
