"""The asyncio serving layer: socket accept, demux, shard, report.

One :class:`StreamService` listens on a local (UNIX) stream socket and
speaks the :mod:`repro.serve.protocol` frame catalogue.  Each opened
stream becomes its own :class:`~repro.serve.pipeline.StreamPipeline`;
with ``jobs == 1`` records are fed inline as frames arrive, with
``jobs > 1`` streams are buffered and whole-stream tasks are sharded
through :func:`repro.parallel.parallel_map` — both paths drive the
same pipeline code, so verdicts and exports are identical at any job
count.

Wall-clock effects stop at the transport: credits, slowdown frames and
byte counts are accounted under host-scope ``transport.*`` rows, while
everything the merged export reports is a pure function of the framed
(record, arrival) sequences.  This module is the sanctioned home of
``asyncio``/``socket`` imports (see the determinism static rule).
"""

from __future__ import annotations

import asyncio
import os
from typing import Any, Dict, List, Optional

from repro.errors import TraceFormatError
from repro.obs.metrics import SCOPES, MetricsRegistry, merge_snapshots
from repro.obs.report import export_lines
from repro.parallel import parallel_map
from repro.replay.format import TraceHeader
from repro.serve.pipeline import (
    StreamConfig,
    StreamPipeline,
    merged_export_lines,
    run_stream_spec,
)
from repro.serve.protocol import (
    CREDIT_BATCH,
    DEFAULT_CREDIT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    expect,
)


class _ConnStream:
    """Per-connection state for one open stream."""

    __slots__ = (
        "stream_id",
        "pipeline",
        "header_record",
        "config_payload",
        "records",
        "arrivals",
        "received",
        "credit_used",
        "slowed",
    )

    def __init__(self, stream_id: str) -> None:
        self.stream_id = stream_id
        self.pipeline: Optional[StreamPipeline] = None
        self.header_record: Optional[Dict[str, Any]] = None
        self.config_payload: Optional[Dict[str, Any]] = None
        self.records: List[Any] = []
        self.arrivals: List[Optional[int]] = []
        self.received = 0
        self.credit_used = 0
        self.slowed = False


class StreamService:
    """Accepts producer connections and owns the per-stream results."""

    def __init__(
        self,
        socket_path: str,
        jobs: int = 1,
        config: Optional[StreamConfig] = None,
    ) -> None:
        self.socket_path = str(socket_path)
        self.jobs = max(1, int(jobs or 1))
        self.base_config = config if config is not None else StreamConfig()
        #: Per-stream registry snapshots, keyed by stream id; exports
        #: merge these in sorted-id order.
        self.snapshots: Dict[str, Dict[str, Any]] = {}
        #: Per-stream verdict payloads, keyed by stream id.
        self.payloads: Dict[str, Dict[str, Any]] = {}
        #: Host-scope, wall-side transport accounting (never exported
        #: in the reproducible pipeline scope).
        self.transport = MetricsRegistry()
        #: Stream ids open *right now*, across every connection.  Two
        #: live streams may not share an id; a closed id may be reused
        #: (re-running the same seeded load overwrites its results,
        #: keeping repeat runs byte-identical).
        self._open_streams: set = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_unix_server(
            self._handle_connection,
            path=self.socket_path,
            limit=MAX_FRAME_BYTES,
        )

    async def wait_shutdown(self) -> None:
        assert self._shutdown is not None, "start() first"
        await self._shutdown.wait()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            # Off-loop: unlink touches the filesystem and this runs on
            # the loop thread during shutdown.
            await asyncio.to_thread(os.unlink, self.socket_path)
        except OSError:
            pass

    def export(self, scope: str = "pipeline") -> List[str]:
        """Merged canonical export; transport rows only outside
        the pipeline scope."""
        if scope == "pipeline":
            return merged_export_lines(self.snapshots, scope=scope)
        ordered = [self.snapshots[s] for s in sorted(self.snapshots)]
        ordered.append(self.transport.snapshot())
        return export_lines(merge_snapshots(ordered).snapshot(), scope=scope)

    # ------------------------------------------------------------------
    def _open_stream(self, frame: Dict[str, Any]) -> _ConnStream:
        stream_id = frame.get("stream")
        if not isinstance(stream_id, str) or not stream_id:
            raise ProtocolError(f"bad stream id {stream_id!r}")
        if stream_id in self._open_streams:
            raise ProtocolError(f"stream id {stream_id!r} already open")
        header_record = frame.get("header")
        if not isinstance(header_record, dict):
            raise ProtocolError(f"stream-open without header: {stream_id!r}")
        merged = self.base_config.to_payload()
        overrides = frame.get("config")
        if overrides is not None:
            if not isinstance(overrides, dict):
                raise ProtocolError(f"bad stream config: {overrides!r}")
            merged.update(overrides)
        config = StreamConfig.from_payload(merged)
        state = _ConnStream(stream_id)
        if self.jobs == 1:
            header = TraceHeader.from_record(header_record)
            state.pipeline = StreamPipeline(stream_id, header, config=config)
        else:
            state.header_record = header_record
            state.config_payload = config.to_payload()
        self._open_streams.add(stream_id)
        return state

    def _record_result(self, stream_id: str, payload: Dict[str, Any],
                       snapshot: Dict[str, Any]) -> None:
        self.payloads[stream_id] = payload
        self.snapshots[stream_id] = snapshot

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        transport = self.transport
        transport.inc("transport.connections")
        frames_in = transport.counter("transport.frames", dir="in")
        frames_out = transport.counter("transport.frames", dir="out")
        bytes_in = transport.counter("transport.bytes", dir="in")
        streams: Dict[str, _ConnStream] = {}
        pending: List[Dict[str, Any]] = []

        async def send(frame: Dict[str, Any]) -> None:
            writer.write(encode_frame(frame))
            frames_out.inc()
            await writer.drain()

        async def flush_pending() -> None:
            """Dispatch buffered whole-stream specs (jobs > 1 path)."""
            if not pending:
                return
            specs = pending[:]
            pending.clear()
            results = await asyncio.to_thread(
                parallel_map, run_stream_spec, specs, jobs=self.jobs
            )
            for spec, result in zip(specs, results):
                self._record_result(
                    spec["stream"], result["payload"], result["snapshot"]
                )
                await send({"kind": "verdict", **result["payload"]})

        try:
            line = await reader.readline()
            if not line:
                return
            frames_in.inc()
            hello = expect(decode_frame(line), "hello")
            if hello.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol version {hello.get('version')!r} "
                    f"(this service speaks {PROTOCOL_VERSION})"
                )
            await send(
                {
                    "kind": "welcome",
                    "version": PROTOCOL_VERSION,
                    "jobs": self.jobs,
                }
            )
            while True:
                line = await reader.readline()
                if not line:
                    break
                frames_in.inc()
                bytes_in.inc(len(line))
                frame = decode_frame(line)
                kind = frame["kind"]
                if kind == "rec":
                    state = streams.get(frame.get("stream"))
                    if state is None:
                        raise ProtocolError(
                            f"rec for unopened stream {frame.get('stream')!r}"
                        )
                    arrival = frame.get("arrival_ns")
                    if arrival is not None and not isinstance(arrival, int):
                        raise ProtocolError(f"bad arrival_ns {arrival!r}")
                    body = frame.get("body")
                    state.received += 1
                    if state.pipeline is not None:
                        decision = state.pipeline.feed(body, arrival)
                        if decision is not None:
                            if decision.slowdown and not state.slowed:
                                state.slowed = True
                                transport.inc("transport.slowdowns_sent")
                                await send(
                                    {
                                        "kind": "slowdown",
                                        "stream": state.stream_id,
                                        "wait_ns": decision.wait_ns,
                                    }
                                )
                            elif not decision.slowdown and state.slowed:
                                state.slowed = False
                    else:
                        state.records.append(body)
                        state.arrivals.append(arrival)
                    state.credit_used += 1
                    if state.credit_used >= CREDIT_BATCH:
                        grant = state.credit_used
                        state.credit_used = 0
                        transport.inc("transport.credit_grants")
                        await send(
                            {
                                "kind": "credit",
                                "stream": state.stream_id,
                                "n": grant,
                            }
                        )
                elif kind == "stream-open":
                    state = self._open_stream(frame)
                    streams[state.stream_id] = state
                    await send(
                        {
                            "kind": "stream-ack",
                            "stream": state.stream_id,
                            "credit": DEFAULT_CREDIT,
                        }
                    )
                elif kind == "stream-close":
                    state = streams.pop(frame.get("stream"), None)
                    if state is None:
                        raise ProtocolError(
                            f"close for unopened stream {frame.get('stream')!r}"
                        )
                    self._open_streams.discard(state.stream_id)
                    end_ns = frame.get("end_ns")
                    if end_ns is not None and not isinstance(end_ns, int):
                        raise ProtocolError(f"bad end_ns {end_ns!r}")
                    if state.pipeline is not None:
                        result = state.pipeline.close(end_ns)
                        payload = result.verdict_payload()
                        self._record_result(
                            state.stream_id, payload, result.snapshot
                        )
                        await send({"kind": "verdict", **payload})
                    else:
                        pending.append(
                            {
                                "stream": state.stream_id,
                                "header": state.header_record,
                                "records": state.records,
                                "arrivals": state.arrivals,
                                "end_ns": end_ns,
                                "config": state.config_payload,
                            }
                        )
                        # Shard when a full batch is ready, or when the
                        # connection has no stream left open (nothing
                        # more can join the batch).
                        if not streams or len(pending) >= self.jobs * 2:
                            await flush_pending()
                elif kind == "export":
                    await flush_pending()
                    scope = frame.get("scope") or "pipeline"
                    if scope not in SCOPES:
                        raise ProtocolError(f"unknown scope {scope!r}")
                    await send(
                        {
                            "kind": "export-result",
                            "scope": scope,
                            "lines": self.export(scope),
                        }
                    )
                elif kind == "shutdown":
                    await flush_pending()
                    await send({"kind": "bye"})
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
                else:
                    raise ProtocolError(f"unexpected frame kind {kind!r}")
        except TraceFormatError as exc:
            # Covers ProtocolError and malformed headers/configs: the
            # producer hears one error frame, the service keeps running
            # for everyone else.
            transport.inc("transport.errors")
            try:
                await send({"kind": "error", "message": str(exc)})
            except OSError:
                pass
        except (ConnectionError, asyncio.IncompleteReadError):
            transport.inc("transport.disconnects")
        finally:
            # Streams the connection left open (error, disconnect) free
            # their ids; their partial state is discarded, never merged.
            for state in streams.values():
                self._open_streams.discard(state.stream_id)
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                pass
